"""Amazon-like product co-purchasing network (stand-in for SNAP Amazon).

The original dataset [1] has 548K products and 1.78M "customers who
bought x also bought y" edges; each product carries a title, a product
group and a sales rank.  This generator reproduces the features the
algorithms are sensitive to:

* node labels = product groups with a skewed distribution (Books
  dominate, as in the real data);
* attributes ``group``, ``salesrank`` (Zipf-ish) and ``rating``;
* co-purchase locality: most edges stay within a product group;
* popularity skew via preferential attachment inside each group.

Defaults are laptop-scale (~1/18 of the original); pass larger sizes to
approach the paper's setting.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.graph.digraph import DataGraph
from repro.views.storage import ViewSet

#: Product groups with sampling weights (Books dominate on Amazon).
GROUPS: Sequence[str] = ("Book", "Music", "DVD", "Video", "Toy", "Software")
_GROUP_WEIGHTS: Sequence[int] = (40, 20, 15, 10, 10, 5)


def amazon_graph(
    num_nodes: int = 30_000,
    num_edges: int = 90_000,
    seed: int = 0,
    same_group_bias: float = 0.8,
    reciprocity: float = 0.3,
) -> DataGraph:
    """Generate the Amazon-like co-purchasing network.

    ``same_group_bias`` is the probability that a co-purchase edge stays
    within the source's product group; ``reciprocity`` the probability
    that "bought x also bought y" is mirrored by "bought y also bought
    x", which co-purchasing data exhibits heavily (and which cyclic
    patterns need in order to match at all).
    """
    rng = random.Random(seed)
    graph = DataGraph()
    members: Dict[str, List[int]] = {g: [] for g in GROUPS}
    for node in range(num_nodes):
        group = rng.choices(GROUPS, weights=_GROUP_WEIGHTS, k=1)[0]
        graph.add_node(
            node,
            labels=group,
            attrs={
                "group": group,
                "salesrank": int(rng.paretovariate(1.2) * 100),
                # Review scores skew high on Amazon: mostly 4s and 5s.
                "rating": rng.choices((1, 2, 3, 4, 5), weights=(5, 10, 20, 35, 30))[0],
            },
        )
        members[group].append(node)

    popular: Dict[str, List[int]] = {g: [] for g in GROUPS}
    added = 0
    attempts = 0
    while added < num_edges and attempts < num_edges * 4:
        attempts += 1
        source = rng.randrange(num_nodes)
        group = next(iter(graph.labels(source)))
        if rng.random() < same_group_bias:
            pool = popular[group] if popular[group] and rng.random() < 0.5 else members[group]
        else:
            other = GROUPS[rng.randrange(len(GROUPS))]
            pool = members[other] or members[group]
        target = pool[rng.randrange(len(pool))]
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
        if rng.random() < reciprocity and not graph.has_edge(target, source):
            graph.add_edge(target, source)
            added += 1
        bucket = popular[next(iter(graph.labels(target)))]
        bucket.append(target)
        if len(bucket) > 5_000:
            del bucket[:2_500]
    return graph


def amazon_views(seed: int = 0, count: int = 12) -> ViewSet:
    """Twelve frequent-pattern views over product groups (Section VII).

    The paper mines frequent patterns following [27] whose extensions
    take ~14% of the dataset; label-only group views would match most
    of the graph, so -- like the mined patterns -- the suite narrows
    node conditions with rating/sales-rank predicates (well-rated or
    well-selling products), keeping the extensions a small fraction.
    Deterministic in ``seed`` (used only when ``count`` exceeds the base
    suite).
    """
    from repro.graph.conditions import P
    from repro.datasets.patterns import chain_view, cycle_view, star_view

    def grp(group, rating=None, rank=None):
        cond = None
        if rating is not None:
            cond = P("rating") >= rating
        if rank is not None:
            rank_cond = P("salesrank") <= rank
            cond = rank_cond if cond is None else cond & rank_cond
        if cond is None:
            from repro.graph.conditions import AttributeCondition

            return AttributeCondition((), label=group)
        return cond.with_label(group)

    rng = random.Random(seed)
    base = [
        chain_view("AV1", [grp("Book", rating=4), grp("Book", rating=4)]),
        chain_view("AV2", [grp("Book", rating=4), grp("Music", rating=4)]),
        chain_view("AV3", [grp("Music", rating=4), grp("Music", rating=4)]),
        chain_view("AV4", [grp("DVD", rating=4), grp("Video", rating=4)]),
        star_view("AV5", grp("Book", rating=4), [grp("Music", rating=4), grp("DVD", rating=4)]),
        star_view("AV6", grp("Book", rank=500), [grp("Book", rating=4), grp("Video", rating=4)]),
        star_view("AV7", grp("Music", rating=4), [grp("Music", rating=4), grp("DVD", rating=4)]),
        chain_view("AV8", [grp("Book", rating=4), grp("Music", rating=4), grp("DVD", rating=4)]),
        chain_view("AV9", [grp("Toy", rating=4), grp("Book", rating=4)]),
        # Mutual recommendation: co-purchasing is strongly reciprocal.
        cycle_view("AV10", [grp("Book", rating=4), grp("Book", rating=4)]),
        star_view("AV11", grp("DVD", rating=4), [grp("DVD", rating=4), grp("Music", rating=4)]),
        chain_view("AV12", [grp("Video", rating=4), grp("DVD", rating=4), grp("Music", rating=4)]),
    ]
    views = ViewSet(base[: min(count, len(base))])
    index = len(base)
    while len(views) < count:
        index += 1
        labels = [grp(rng.choice(GROUPS), rating=4), grp(rng.choice(GROUPS), rating=4)]
        views.add(chain_view(f"AV{index}", labels))
    return views
