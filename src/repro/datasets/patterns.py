"""Pattern and view generators (Section VII, "(3) Pattern and view
generator").

The paper's generator is controlled by ``(|Vp|, |Ep|)`` (plus an edge
bound ``k`` for bounded patterns).  Two families are provided:

* :func:`random_query` / :func:`random_bounded_pattern` -- arbitrary
  connected patterns with a DAG/cyclic switch, used by the containment
  benchmarks (Fig. 8(g)/(h)), where containment may or may not hold.
* :func:`query_from_views` -- queries built by *stitching renamed copies
  of view patterns* and merging condition-equal nodes across copies.
  Every edge of such a query is a copy of a view edge, and every copy
  keeps its out-edges, so the identity-on-copies relation witnesses the
  (bounded) simulation of each view over the query: the query is
  contained in the views **by construction**.  This is how the
  MatchJoin benchmarks (Fig. 8(a)-(f), (i)-(l)) obtain answerable
  workloads, mirroring the paper's setup where queries are built to be
  coverable by the cached views.

Small named view shapes (:func:`chain_view`, :func:`star_view`,
:func:`cycle_view`, :func:`diamond_view`) are shared by the dataset
modules.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.conditions import Condition
from repro.graph.pattern import ANY, Bound, BoundedPattern, Pattern
from repro.graph.scc import is_dag
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition


# ----------------------------------------------------------------------
# Named small shapes
# ----------------------------------------------------------------------
def chain_view(name: str, labels: Sequence, bounds: Optional[Sequence[Bound]] = None) -> ViewDefinition:
    """A chain ``l0 -> l1 -> ... -> lk`` (bounded when bounds given)."""
    if len(labels) < 2:
        raise ValueError("chain needs at least two labels")
    bounded = bounds is not None
    pattern: Pattern = BoundedPattern() if bounded else Pattern()
    for i, label in enumerate(labels):
        pattern.add_node(f"n{i}", label)
    for i in range(len(labels) - 1):
        if bounded:
            pattern.add_edge(f"n{i}", f"n{i+1}", bounds[i])  # type: ignore[call-arg]
        else:
            pattern.add_edge(f"n{i}", f"n{i+1}")
    return ViewDefinition(name, pattern)


def star_view(
    name: str, center, leaves: Sequence, bounds: Optional[Sequence[Bound]] = None
) -> ViewDefinition:
    """A star: the center points at each leaf."""
    bounded = bounds is not None
    pattern: Pattern = BoundedPattern() if bounded else Pattern()
    pattern.add_node("c", center)
    for i, leaf in enumerate(leaves):
        pattern.add_node(f"leaf{i}", leaf)
        if bounded:
            pattern.add_edge("c", f"leaf{i}", bounds[i])  # type: ignore[call-arg]
        else:
            pattern.add_edge("c", f"leaf{i}")
    return ViewDefinition(name, pattern)


def cycle_view(name: str, labels: Sequence, bounds: Optional[Sequence[Bound]] = None) -> ViewDefinition:
    """A directed cycle over the given labels."""
    if len(labels) < 2:
        raise ValueError("cycle needs at least two labels")
    bounded = bounds is not None
    pattern: Pattern = BoundedPattern() if bounded else Pattern()
    for i, label in enumerate(labels):
        pattern.add_node(f"n{i}", label)
    for i in range(len(labels)):
        j = (i + 1) % len(labels)
        if bounded:
            pattern.add_edge(f"n{i}", f"n{j}", bounds[i])  # type: ignore[call-arg]
        else:
            pattern.add_edge(f"n{i}", f"n{j}")
    return ViewDefinition(name, pattern)


def diamond_view(name: str, top, left, right, bottom) -> ViewDefinition:
    """top -> {left, right} -> bottom."""
    pattern = Pattern()
    pattern.add_node("t", top)
    pattern.add_node("l", left)
    pattern.add_node("r", right)
    pattern.add_node("b", bottom)
    pattern.add_edge("t", "l")
    pattern.add_edge("t", "r")
    pattern.add_edge("l", "b")
    pattern.add_edge("r", "b")
    return ViewDefinition(name, pattern)


# ----------------------------------------------------------------------
# Random patterns (containment benchmarks)
# ----------------------------------------------------------------------
def random_query(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str],
    seed: int = 0,
    cyclic: bool = False,
) -> Pattern:
    """A connected random pattern with ``|Vp| = num_nodes`` and
    ``|Ep| ~ num_edges``; a DAG unless ``cyclic``.

    DAG patterns orient every edge from a lower to a higher node index;
    cyclic ones additionally close at least one back edge, matching the
    paper's QDAG / QCyclic workloads of Fig. 8(g).
    """
    if num_edges < num_nodes - 1:
        raise ValueError("need at least num_nodes - 1 edges for connectivity")
    rng = random.Random(seed)
    q = Pattern()
    for i in range(num_nodes):
        q.add_node(i, labels[rng.randrange(len(labels))])
    # Connected backbone (forward edges keep the DAG property).
    for i in range(1, num_nodes):
        q.add_edge(rng.randrange(i), i)
    attempts = 0
    while q.num_edges < num_edges and attempts < num_edges * 10:
        attempts += 1
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b:
            continue
        if not cyclic and a > b:
            a, b = b, a
        if not q.has_edge(a, b):
            q.add_edge(a, b)
    if cyclic and is_dag(q):
        # Close one backward edge along the backbone.
        hi = num_nodes - 1
        lo = rng.randrange(hi)
        if not q.has_edge(hi, lo):
            q.add_edge(hi, lo)
    return q


def random_bounded_pattern(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str],
    max_bound: int = 3,
    seed: int = 0,
    cyclic: bool = False,
    star_probability: float = 0.0,
) -> BoundedPattern:
    """A random bounded pattern; bounds drawn uniformly from
    ``[1, max_bound]`` (with probability ``star_probability``, ``*``)."""
    rng = random.Random(seed)
    base = random_query(num_nodes, num_edges, labels, seed=seed, cyclic=cyclic)
    qb = BoundedPattern()
    for node in base.nodes():
        qb.add_node(node, base.condition(node))
    for source, target in base.edges():
        bound: Bound = (
            ANY if rng.random() < star_probability else rng.randint(1, max_bound)
        )
        qb.add_edge(source, target, bound)
    return qb


# ----------------------------------------------------------------------
# Random view suites
# ----------------------------------------------------------------------
def generate_views(
    labels: Sequence[str],
    count: int = 22,
    seed: int = 0,
    bounded: bool = False,
    max_bound: int = 3,
    name_prefix: str = "SV",
) -> ViewSet:
    """A suite of small random views over ``labels`` (the paper uses 22
    random views over |Σ| = 10 for the synthetic experiments)."""
    rng = random.Random(seed)
    views = ViewSet()
    for index in range(count):
        shape = rng.choice(("chain2", "chain3", "star2", "cycle2", "cycle3"))
        name = f"{name_prefix}{index}"
        picks = [labels[rng.randrange(len(labels))] for _ in range(3)]
        bnd = (lambda n: [rng.randint(1, max_bound) for _ in range(n)]) if bounded else (lambda n: None)
        if shape == "chain2":
            views.add(chain_view(name, picks[:2], bounds=bnd(1)))
        elif shape == "chain3":
            views.add(chain_view(name, picks, bounds=bnd(2)))
        elif shape == "star2":
            views.add(star_view(name, picks[0], picks[1:], bounds=bnd(2)))
        elif shape == "cycle2":
            views.add(cycle_view(name, picks[:2], bounds=bnd(2)))
        else:
            views.add(cycle_view(name, picks, bounds=bnd(3)))
    return views


# ----------------------------------------------------------------------
# Queries contained in a view set by construction
# ----------------------------------------------------------------------
def query_from_views(
    views: ViewSet,
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    require_dag: bool = False,
) -> Pattern:
    """Stitch renamed view copies into a query with ``Q ⊑ V`` guaranteed.

    Copies of randomly chosen view patterns are unioned until the edge
    target is met; then condition-equal nodes from *different* copies
    are merged until the node target is met (or no merge is possible).
    Merging never removes edges, so every copy keeps witnessing its view
    and containment is preserved; with ``require_dag`` a merge that
    would create a cycle is rolled back.

    Returns a :class:`BoundedPattern` when any chosen view is bounded,
    else a plain :class:`Pattern`.  Actual sizes can deviate slightly
    from the targets; callers that need exact ``(|Vp|, |Ep|)`` labels
    should report ``pattern.num_nodes`` / ``pattern.num_edges``.
    """
    rng = random.Random(seed)
    definitions = views.definitions()
    if not definitions:
        raise ValueError("view set is empty")
    any_bounded = any(d.is_bounded for d in definitions)

    # --- copy phase ---------------------------------------------------
    query: Pattern = BoundedPattern() if any_bounded else Pattern()
    copy_of: Dict = {}
    copy_index = 0
    guard = 0
    while query.num_edges < num_edges and guard < 100:
        guard += 1
        definition = definitions[rng.randrange(len(definitions))]
        pattern = definition.pattern
        prefix = f"c{copy_index}"
        copy_index += 1
        for node in pattern.nodes():
            name = (prefix, node)
            query.add_node(name, pattern.condition(node))
            copy_of[name] = copy_index
        for edge in pattern.edges():
            source, target = (prefix, edge[0]), (prefix, edge[1])
            if isinstance(query, BoundedPattern):
                bound = (
                    pattern.bound(edge)
                    if isinstance(pattern, BoundedPattern)
                    else 1
                )
                query.add_edge(source, target, bound)
            else:
                query.add_edge(source, target)

    # --- merge phase ----------------------------------------------------
    guard = 0
    while query.num_nodes > num_nodes and guard < num_nodes * 20 + 100:
        guard += 1
        pair = _pick_merge_pair(query, copy_of, rng)
        if pair is None:
            break
        keep, drop = pair
        merged = _merged_pattern(query, keep, drop)
        if require_dag and not is_dag(merged):
            # Mark the pair as same-copy so it is not retried forever.
            copy_of[drop] = copy_of[keep]
            continue
        query = merged
    return query


def _pick_merge_pair(query: Pattern, copy_of: Dict, rng) -> Optional[Tuple]:
    """Pick a condition-equal node pair from different copies, or None."""
    by_condition: Dict[Condition, List] = {}
    for node in query.nodes():
        by_condition.setdefault(query.condition(node), []).append(node)
    candidates = [
        nodes
        for nodes in by_condition.values()
        if len({copy_of[n] for n in nodes}) > 1
    ]
    if not candidates:
        return None
    group = candidates[rng.randrange(len(candidates))]
    rng.shuffle(group)
    for i, node in enumerate(group):
        for other in group[i + 1:]:
            if copy_of[node] == copy_of[other]:
                continue
            # Adjacent nodes would collapse into a self loop, which makes
            # the query unmatchable on most data; skip such pairs.
            if query.has_edge(node, other) or query.has_edge(other, node):
                continue
            return node, other
    return None


def _merged_pattern(query: Pattern, keep, drop) -> Pattern:
    """A fresh pattern with ``drop`` folded into ``keep``.

    Parallel edges that collapse onto each other keep the *tighter*
    bound: the collapsed edge is covered by both origin view edges, and
    ``min(b1, b2) <= b`` holds for each, so per-edge coverage survives.
    """
    bounded = isinstance(query, BoundedPattern)
    merged: Pattern = BoundedPattern() if bounded else Pattern()

    def image(node):
        return keep if node == drop else node

    for node in query.nodes():
        if node != drop:
            merged.add_node(node, query.condition(node))
    for edge in query.edges():
        source, target = image(edge[0]), image(edge[1])
        if bounded:
            bound = query.bound(edge)
            if merged.has_edge(source, target):
                current = merged.bound((source, target))
                if current is ANY or (bound is not ANY and bound < current):
                    merged._bound[(source, target)] = bound
            else:
                merged.add_edge(source, target, bound)
        else:
            merged.add_edge(source, target)
    return merged
