"""YouTube-like recommendation network (stand-in for the dataset of [5]).

The original crawl has 1.6M videos and 4.5M "related video" edges; each
video carries category, age, length, rating and view-count attributes --
exactly the attributes the paper's Fig. 7 views predicate on (``C``,
``A``, ``L``, ``R``, ``V``).  The generator reproduces:

* category labels with the crawl's skew (Music and Entertainment
  dominate);
* attributes ``category``/``age``/``length``/``rate``/``visits`` with
  heavy-tailed view counts;
* related-list locality: most related videos share the category, with
  popularity skew.

Every node carries both its category as a *label* (so plain label
patterns work) and the full attribute record (so Fig. 7's Boolean
search conditions work).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.graph.digraph import DataGraph

CATEGORIES: Sequence[str] = (
    "Music",
    "Ent.",
    "Comedy",
    "Sports",
    "News",
    "Film",
    "Games",
)
_CATEGORY_WEIGHTS: Sequence[int] = (25, 20, 15, 13, 10, 10, 7)


def youtube_graph(
    num_nodes: int = 30_000,
    num_edges: int = 85_000,
    seed: int = 0,
    same_category_bias: float = 0.7,
    reciprocity: float = 0.35,
) -> DataGraph:
    """Generate the YouTube-like recommendation network.

    ``reciprocity`` is the probability that a related-list edge is
    mutual, which the real crawl exhibits strongly.
    """
    rng = random.Random(seed)
    graph = DataGraph()
    members: Dict[str, List[int]] = {c: [] for c in CATEGORIES}
    for node in range(num_nodes):
        category = rng.choices(CATEGORIES, weights=_CATEGORY_WEIGHTS, k=1)[0]
        graph.add_node(
            node,
            labels=("video", category),
            attrs={
                "C": category,
                "A": rng.randint(1, 730),                # age in days
                "L": rng.randint(10, 3600),              # length in seconds
                # Ratings skew high, like the crawl's.
                "R": rng.choices((1, 2, 3, 4, 5), weights=(5, 10, 20, 30, 35))[0],
                # Heavy-tailed view counts; ~15% of videos clear 10K.
                "V": int(rng.paretovariate(1.1) * 1800),
            },
        )
        members[category].append(node)

    popular: Dict[str, List[int]] = {c: [] for c in CATEGORIES}
    added = 0
    attempts = 0
    while added < num_edges and attempts < num_edges * 4:
        attempts += 1
        source = rng.randrange(num_nodes)
        category = next(
            label for label in graph.labels(source) if label != "video"
        )
        if rng.random() < same_category_bias:
            pool = (
                popular[category]
                if popular[category] and rng.random() < 0.5
                else members[category]
            )
        else:
            other = CATEGORIES[rng.randrange(len(CATEGORIES))]
            pool = members[other] or members[category]
        target = pool[rng.randrange(len(pool))]
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
        if rng.random() < reciprocity and not graph.has_edge(target, source):
            graph.add_edge(target, source)
            added += 1
        target_category = next(
            label for label in graph.labels(target) if label != "video"
        )
        bucket = popular[target_category]
        bucket.append(target)
        if len(bucket) > 5_000:
            del bucket[:2_500]
    return graph
