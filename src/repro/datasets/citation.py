"""Citation network stand-in (ArnetMiner Citation, [2]).

The original has 1.4M papers and 3M citations; nodes carry title,
authors, year and venue.  The generator reproduces:

* venue-area labels (DB, AI, SYS, NET, THEORY, IR) with realistic skew;
* ``year`` attributes and *temporal direction*: papers only cite older
  papers, so the citation graph is a DAG -- an important structural
  property (cyclic patterns never match it, DAG patterns do);
* citation popularity skew (preferential attachment toward highly
  cited papers) and area locality (most citations stay in-area).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.graph.digraph import DataGraph
from repro.views.storage import ViewSet

AREAS: Sequence[str] = ("DB", "AI", "SYS", "NET", "THEORY", "IR")
_AREA_WEIGHTS: Sequence[int] = (25, 25, 15, 12, 13, 10)
_VENUES: Dict[str, Sequence[str]] = {
    "DB": ("SIGMOD", "VLDB", "ICDE"),
    "AI": ("AAAI", "IJCAI", "NIPS"),
    "SYS": ("OSDI", "SOSP", "EuroSys"),
    "NET": ("SIGCOMM", "NSDI", "INFOCOM"),
    "THEORY": ("STOC", "FOCS", "SODA"),
    "IR": ("SIGIR", "WWW", "CIKM"),
}


def citation_graph(
    num_nodes: int = 25_000,
    num_edges: int = 60_000,
    seed: int = 0,
    same_area_bias: float = 0.7,
    year_range: tuple = (1980, 2013),
) -> DataGraph:
    """Generate the citation network (a DAG by construction)."""
    rng = random.Random(seed)
    graph = DataGraph()
    members: Dict[str, List[int]] = {a: [] for a in AREAS}
    years: Dict[int, int] = {}
    for node in range(num_nodes):
        area = rng.choices(AREAS, weights=_AREA_WEIGHTS, k=1)[0]
        year = rng.randint(*year_range)
        graph.add_node(
            node,
            labels=area,
            attrs={
                "area": area,
                "venue": rng.choice(_VENUES[area]),
                "year": year,
            },
        )
        members[area].append(node)
        years[node] = year

    popular: Dict[str, List[int]] = {a: [] for a in AREAS}
    added = 0
    attempts = 0
    while added < num_edges and attempts < num_edges * 6:
        attempts += 1
        source = rng.randrange(num_nodes)
        area = next(iter(graph.labels(source)))
        if rng.random() < same_area_bias:
            pool = popular[area] if popular[area] and rng.random() < 0.6 else members[area]
        else:
            other = AREAS[rng.randrange(len(AREAS))]
            pool = members[other] or members[area]
        target = pool[rng.randrange(len(pool))]
        # Citations point strictly backward in time: DAG guarantee.
        if years[target] >= years[source] or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        bucket = popular[next(iter(graph.labels(target)))]
        bucket.append(target)
        if len(bucket) > 5_000:
            del bucket[:2_500]
        added += 1
    return graph


def citation_views(seed: int = 0, count: int = 12) -> ViewSet:
    """Twelve views "to search for papers and authors in computer
    science" (Section VII): cross-area and in-area citation chains and
    stars, narrowed with year predicates (recent papers citing older
    foundational work) so extensions stay a small fraction of the
    graph, as the paper reports (~12%).  All are DAG patterns, matching
    the data's acyclicity."""
    from repro.graph.conditions import P
    from repro.datasets.patterns import chain_view, star_view

    def area(name, since=None, until=None):
        cond = None
        if since is not None:
            cond = P("year") >= since
        if until is not None:
            until_cond = P("year") <= until
            cond = until_cond if cond is None else cond & until_cond
        if cond is None:
            from repro.graph.conditions import AttributeCondition

            return AttributeCondition((), label=name)
        return cond.with_label(name)

    rng = random.Random(seed)
    recent, classic = 2005, 2000
    base = [
        chain_view("CV1", [area("DB", since=recent), area("DB", until=classic)]),
        chain_view("CV2", [area("AI", since=recent), area("AI", until=classic)]),
        chain_view("CV3", [area("DB", since=recent), area("AI")]),
        chain_view("CV4", [area("AI", since=recent), area("THEORY")]),
        chain_view("CV5", [area("DB", since=recent), area("SYS")]),
        star_view("CV6", area("DB", since=recent), [area("DB"), area("IR")]),
        star_view("CV7", area("AI", since=recent), [area("AI"), area("DB")]),
        star_view("CV8", area("IR", since=recent), [area("DB"), area("AI")]),
        chain_view("CV9", [area("IR", since=recent), area("DB"), area("THEORY", until=classic)]),
        chain_view("CV10", [area("SYS", since=recent), area("NET")]),
        star_view("CV11", area("DB", since=recent), [area("AI"), area("IR"), area("THEORY")]),
        chain_view("CV12", [area("NET", since=recent), area("SYS"), area("THEORY")]),
    ]
    views = ViewSet(base[: min(count, len(base))])
    index = len(base)
    while len(views) < count:
        index += 1
        views.add(
            chain_view(
                f"CV{index}",
                [area(rng.choice(AREAS), since=recent), area(rng.choice(AREAS))],
            )
        )
    return views
