"""Dataset generators: synthetic graphs and real-dataset stand-ins.

The paper evaluates on three SNAP/ArnetMiner datasets (Amazon, Citation,
YouTube) and on random synthetic graphs.  The real downloads are not
redistributable nor available offline, so this package provides
*schema-faithful generators* (see DESIGN.md "Substitutions"): same node
attribute schemas, skewed label distributions, power-law-ish degrees and
within-category clustering, at laptop scale by default and any scale on
request.  Users with the original files can load them via
:func:`repro.graph.io.read_snap_edges` instead.

* :func:`~repro.datasets.synthetic.random_graph`,
  :func:`~repro.datasets.synthetic.community_graph` and
  :func:`~repro.datasets.synthetic.densification_graph` -- the paper's
  synthetic generator (``|V|``, ``|E| = 2|V|`` or ``|E| = |V|^alpha``).
* :func:`~repro.datasets.amazon.amazon_graph`,
  :func:`~repro.datasets.citation.citation_graph`,
  :func:`~repro.datasets.youtube.youtube_graph`.
* :mod:`~repro.datasets.patterns` -- random (bounded) pattern and view
  generators, plus ``query_from_views`` which builds queries *guaranteed*
  to be contained in a view set.
* :mod:`~repro.datasets.youtube_views` -- the twelve predicate views of
  Fig. 7.
"""

from repro.datasets.amazon import amazon_graph, amazon_views
from repro.datasets.citation import citation_graph, citation_views
from repro.datasets.patterns import (
    generate_views,
    query_from_views,
    random_bounded_pattern,
    random_query,
)
from repro.datasets.synthetic import (
    community_graph,
    densification_graph,
    random_graph,
)
from repro.datasets.youtube import youtube_graph
from repro.datasets.youtube_views import youtube_views

__all__ = [
    "amazon_graph",
    "amazon_views",
    "citation_graph",
    "citation_views",
    "community_graph",
    "densification_graph",
    "generate_views",
    "query_from_views",
    "random_bounded_pattern",
    "random_query",
    "random_graph",
    "youtube_graph",
    "youtube_views",
]
