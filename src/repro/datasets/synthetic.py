"""Synthetic random graphs (Section VII, "(2) Synthetic data").

The paper's generator produces random graphs "controlled by the number
|V| of nodes and the number |E| of edges, with node labels from an
alphabet Σ".  Scalability experiments use ``|E| = 2|V|``; the
optimization experiment (Exp-2 / Fig. 8(f)) follows the densification
law of [26]: ``|E| = |V|^α`` with α swept from 1 to 1.25.

Both generators here use a light preferential-attachment bias so that
simulation match sets are non-trivial (uniform random graphs at average
degree 2 are mostly tree-like and patterns rarely match), which mirrors
the paper's observation that its patterns do match the synthetic data.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.graph.digraph import DataGraph

#: The default alphabet Σ: 10 labels, as in Section VII.
DEFAULT_LABELS: Sequence[str] = tuple(f"l{i}" for i in range(10))


def _attach_edges(
    graph: DataGraph,
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    pa_bias: float,
    reciprocity: float,
) -> None:
    """Add ``num_edges`` random edges over nodes ``0..num_nodes-1``.

    With probability ``pa_bias`` the target is drawn from a pool of
    previously used endpoints (preferential attachment); otherwise
    uniformly.  With probability ``reciprocity`` the reverse edge is
    added too (so cyclic patterns have something to match).  Self loops
    are skipped, duplicates retried, keeping the function O(num_edges).
    """
    popular: List[int] = []
    added = 0
    attempts = 0
    max_attempts = num_edges * 4
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.randrange(num_nodes)
        if popular and rng.random() < pa_bias:
            target = popular[rng.randrange(len(popular))]
        else:
            target = rng.randrange(num_nodes)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
        if rng.random() < reciprocity and not graph.has_edge(target, source):
            graph.add_edge(target, source)
            added += 1
        popular.append(target)
        if len(popular) > 10_000:
            popular = popular[-5_000:]


def random_graph(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str] = DEFAULT_LABELS,
    seed: int = 0,
    pa_bias: float = 0.3,
    reciprocity: float = 0.25,
) -> DataGraph:
    """A random labeled digraph with ``|V| = num_nodes``, ``|E| ~ num_edges``.

    Labels are assigned uniformly from ``labels``.  Deterministic in
    ``seed``.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    graph = DataGraph()
    for node in range(num_nodes):
        graph.add_node(node, labels=labels[rng.randrange(len(labels))])
    _attach_edges(graph, rng, num_nodes, num_edges, pa_bias, reciprocity)
    return graph


def community_graph(
    num_blocks: int,
    block_nodes: int,
    intra_degree: int = 6,
    cross_fraction: float = 0.01,
    labels: Sequence[str] = DEFAULT_LABELS,
    seed: int = 0,
) -> DataGraph:
    """A labeled digraph with planted community structure.

    ``num_blocks`` dense blocks of ``block_nodes`` nodes each; every
    block gets ``block_nodes * intra_degree`` random internal edges,
    plus ``cross_fraction`` of that volume as uniform block-crossing
    edges.  This is the workload family where graph partitioning has
    something to find: a locality-aware partitioner recovers the blocks
    and the edge cut stays near ``cross_fraction``, which is what makes
    shard-local evaluation (``repro.shard``) pay off -- real social /
    product graphs behave like this, unlike uniform random graphs whose
    every partition cuts most edges.  Deterministic in ``seed``.
    """
    if num_blocks <= 0 or block_nodes <= 0:
        raise ValueError("num_blocks and block_nodes must be positive")
    rng = random.Random(seed)
    graph = DataGraph()
    num_nodes = num_blocks * block_nodes
    for node in range(num_nodes):
        graph.add_node(node, labels=labels[rng.randrange(len(labels))])
    intra_edges = block_nodes * intra_degree
    for block in range(num_blocks):
        base = block * block_nodes
        for _ in range(intra_edges):
            graph.add_edge(
                base + rng.randrange(block_nodes),
                base + rng.randrange(block_nodes),
            )
    for _ in range(int(num_blocks * intra_edges * cross_fraction)):
        graph.add_edge(rng.randrange(num_nodes), rng.randrange(num_nodes))
    return graph


def densification_graph(
    num_nodes: int,
    alpha: float,
    labels: Sequence[str] = DEFAULT_LABELS,
    seed: int = 0,
    pa_bias: float = 0.3,
    reciprocity: float = 0.25,
) -> DataGraph:
    """A graph following the densification law ``|E| = |V|^alpha`` [26].

    Fig. 8(f) sweeps ``alpha`` from 1 to 1.25 at fixed ``|V|``.
    """
    if not 0.5 <= alpha <= 2.0:
        raise ValueError(f"alpha {alpha} outside the sensible range [0.5, 2]")
    num_edges = int(round(num_nodes**alpha))
    return random_graph(
        num_nodes,
        num_edges,
        labels=labels,
        seed=seed,
        pa_bias=pa_bias,
        reciprocity=reciprocity,
    )
