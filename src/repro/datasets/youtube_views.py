"""The twelve YouTube views of Fig. 7.

Fig. 7 defines views ``P1..P12`` whose nodes carry Boolean search
conditions over video attributes: age ``A``, length ``L``, category
``C``, rate ``R`` and visits ``V`` (e.g. ``C="Music" && V>=10K``).  The
published figure fixes the conditions but its topologies are small
(2-4 node) chains, stars and cycles; this module reconstructs the suite
with the figure's conditions on those shapes.  The properties the
experiments rely on are preserved: 12 views, predicate-labeled nodes,
extensions that are a small fraction of the graph (the paper reports
about 4% of the YouTube graph in total).

Attribute thresholds follow the figure: ``V >= 10K``, ``R >= 4`` or
``R >= 5``, ``A <= 100`` / ``A >= 100`` / ``A >= 200``, ``L <= 200`` /
``L >= 200``, categories Music / Sports / Comedy / News / Ent.
"""

from __future__ import annotations

from repro.graph.conditions import AttributeCondition, P
from repro.graph.pattern import Pattern
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition

# Shared node conditions (named after the figure's annotations).
MUSIC = P("C") == "Music"
SPORTS = P("C") == "Sports"
COMEDY = P("C") == "Comedy"
NEWS = P("C") == "News"
ENT = P("C") == "Ent."
POPULAR = P("V") >= 10_000
HIGH_RATE = P("R") >= 4
TOP_RATE = P("R") >= 5
FRESH = P("A") <= 100
OLD = P("A") >= 100
OLDER = P("A") >= 200
SHORT = P("L") <= 200
LONG = P("L") >= 1800


def _chain(name: str, conditions) -> ViewDefinition:
    pattern = Pattern()
    for i, condition in enumerate(conditions):
        pattern.add_node(f"n{i}", condition)
    for i in range(len(conditions) - 1):
        pattern.add_edge(f"n{i}", f"n{i+1}")
    return ViewDefinition(name, pattern)


def _star(name: str, center, leaves) -> ViewDefinition:
    pattern = Pattern()
    pattern.add_node("c", center)
    for i, leaf in enumerate(leaves):
        pattern.add_node(f"x{i}", leaf)
        pattern.add_edge("c", f"x{i}")
    return ViewDefinition(name, pattern)


def _cycle(name: str, conditions) -> ViewDefinition:
    pattern = Pattern()
    for i, condition in enumerate(conditions):
        pattern.add_node(f"n{i}", condition)
    n = len(conditions)
    for i in range(n):
        pattern.add_edge(f"n{i}", f"n{(i + 1) % n}")
    return ViewDefinition(name, pattern)


def youtube_views() -> ViewSet:
    """Build the P1..P12 suite of Fig. 7."""
    views = [
        # P1: popular highly rated Music videos recommending each other.
        _cycle("P1", [MUSIC & POPULAR, MUSIC & HIGH_RATE]),
        # P2: fresh highly rated videos leading to Sports content.
        _chain("P2", [FRESH & HIGH_RATE, SPORTS]),
        # P3: Sports-to-Sports recommendation with a high rating hub.
        _chain("P3", [SPORTS & HIGH_RATE, SPORTS, HIGH_RATE & POPULAR]),
        # P4: short top-rated clips pointing at highly rated videos.
        _chain("P4", [SHORT & TOP_RATE, HIGH_RATE]),
        # P5: popular Entertainment hub with News and Music spokes.
        _star("P5", ENT & POPULAR, [NEWS & HIGH_RATE, MUSIC]),
        # P6: aged popular videos recommending News coverage.
        _chain("P6", [OLD & POPULAR, NEWS & HIGH_RATE]),
        # P7: Comedy funnel into popular videos.
        _chain("P7", [COMEDY, COMEDY & POPULAR]),
        # P8: aged popular Entertainment triangle.
        _cycle("P8", [OLD & POPULAR, ENT]),
        # P9: long top-rated videos chained to long popular content.
        _chain("P9", [LONG & TOP_RATE, LONG & POPULAR]),
        # P10: top-rated Comedy hub with older and Sports spokes.
        _star("P10", TOP_RATE & COMEDY, [OLDER & TOP_RATE, SPORTS & HIGH_RATE]),
        # P11: Sports and Music mutual recommendation.
        _cycle("P11", [SPORTS, MUSIC & POPULAR]),
        # P12: highly rated Entertainment in mutual recommendation with
        # popular Entertainment.
        _cycle("P12", [HIGH_RATE & ENT, POPULAR & ENT]),
    ]
    return ViewSet(views)
