"""Answering queries using views under *dual simulation* (Section VIII).

The paper closes by noting that "our techniques can be readily extended
to strong simulation [28], retaining the same complexity", dual
simulation being the key ingredient.  This module carries the full
pipeline over:

* :func:`dual_view_match` -- evaluate ``V`` over ``Qs`` via dual
  simulation (child *and* parent conditions), with the same
  condition-implication node test and condition-equivalence coverage
  guard as the simulation case.
* :func:`dual_contains` -- Proposition 7 verbatim over dual view
  matches.
* :func:`dual_match_join` -- the MatchJoin analogue whose fixpoint
  enforces both out-edge and in-edge witnesses.

The soundness argument mirrors Theorem 1: dual-simulation matches
transfer from query nodes to view nodes (the coinductive relation
``{(x, v) : (x,u) in dualsim(V over Q), v in dualmatch(u)}`` is itself
a dual simulation of ``V`` over ``G``), so merged sets over-approximate
the true match sets, and the dual fixpoint prunes to exactly ``Q(G)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Set, Tuple, Union

from repro.core.containment import Containment, Views, _normalize, merge_view_matches
from repro.core.matchjoin import _extensions_of, merge_initial_sets
from repro.core.view_match import ViewMatch
from repro.graph.conditions import implies
from repro.graph.pattern import Pattern
from repro.simulation.dual import maximum_dual_simulation
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView, ViewDefinition

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]
Extensions = Mapping[str, MaterializedView]


def dual_view_match(query: Pattern, view: ViewDefinition) -> ViewMatch:
    """``M^Qs_V`` computed via dual simulation of ``V`` over ``Qs``."""
    view_pattern = view.pattern

    def compatible(x: PNode, u: PNode) -> bool:
        return implies(query.condition(u), view_pattern.condition(x))

    sim = maximum_dual_simulation(view_pattern, query, compatible)
    edge_cover: Dict[PEdge, List[PEdge]] = {}
    if sim is not None:
        equivalent: Dict[tuple, bool] = {}

        def covers(x: PNode, u: PNode) -> bool:
            key = (x, u)
            if key not in equivalent:
                equivalent[key] = implies(
                    view_pattern.condition(x), query.condition(u)
                )
            return equivalent[key]

        for view_edge in view_pattern.edges():
            x, y = view_edge
            for u in sim[x]:
                if not covers(x, u):
                    continue
                for u1 in query.successors(u):
                    if u1 in sim[y] and covers(y, u1):
                        edge_cover.setdefault((u, u1), []).append(view_edge)
    return ViewMatch(view.name, edge_cover)


def dual_contains(query: Pattern, views: Views) -> Containment:
    """``Q ⊑_dual V``: coverage by dual view matches.

    Views must themselves be *materialized via dual simulation* for the
    resulting λ to be usable by :func:`dual_match_join` -- see
    :func:`materialize_dual`.
    """
    definitions = _normalize(views)
    return merge_view_matches(
        query, (dual_view_match(query, d) for d in definitions)
    )


def materialize_dual(definition: ViewDefinition, graph) -> MaterializedView:
    """Materialize a view's extension under dual simulation semantics."""
    from repro.simulation.dual import dual_match

    result = dual_match(definition.pattern, graph)
    if not result:
        return MaterializedView(
            definition, {edge: set() for edge in definition.pattern.edges()}
        )
    return MaterializedView(definition, result.edge_matches)


def _dual_fixpoint(
    query: Pattern, sets: Dict[PEdge, Set[NodePair]]
) -> Union[Dict[PEdge, Dict[Node, Set[Node]]], None]:
    """Scan-until-stable refinement with child *and* parent witnesses."""
    edges = query.edges()
    current: Dict[PEdge, Set[NodePair]] = {e: set(sets[e]) for e in edges}
    if any(not current[e] for e in edges):
        return None
    changed = True
    while changed:
        changed = False
        sources = {e: {pair[0] for pair in current[e]} for e in edges}
        targets = {e: {pair[1] for pair in current[e]} for e in edges}

        def valid(u: PNode, v: Node) -> bool:
            return all(
                v in sources[e1] for e1 in query.out_edges(u)
            ) and all(v in targets[e0] for e0 in query.in_edges(u))

        for edge in edges:
            u, u_prime = edge
            doomed = [
                pair
                for pair in current[edge]
                if not (valid(u, pair[0]) and valid(u_prime, pair[1]))
            ]
            if doomed:
                current[edge] -= set(doomed)
                if not current[edge]:
                    return None
                changed = True
    by_source: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    for edge in edges:
        index: Dict[Node, Set[Node]] = {}
        for v, w in current[edge]:
            index.setdefault(v, set()).add(w)
        by_source[edge] = index
    return by_source


def dual_match_join(
    query: Pattern,
    containment: Containment,
    extensions: Union[Extensions, ViewSet],
) -> MatchResult:
    """Evaluate ``Qs`` under dual simulation from dual view extensions.

    ``containment`` must come from :func:`dual_contains` and
    ``extensions`` from :func:`materialize_dual` (plain simulation
    extensions over-approximate dual ones, so they would also converge,
    but dual extensions are smaller)."""
    initial = merge_initial_sets(query, containment, _extensions_of(extensions))
    by_source = _dual_fixpoint(query, initial)
    if by_source is None:
        return MatchResult.empty()
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    node_matches: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    for edge, index in by_source.items():
        pairs = {(v, w) for v, ws in index.items() for w in ws}
        edge_matches[edge] = pairs
        u, u_prime = edge
        for v, w in pairs:
            node_matches[u].add(v)
            node_matches[u_prime].add(w)
    return MatchResult(node_matches, edge_matches)
