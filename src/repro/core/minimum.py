"""Minimum containment (Section V-C; Theorem 6).

The decision version of MMCP is NP-complete (reduction from set cover)
and the optimization version APX-hard, so :func:`minimum_views` is the
paper's greedy ``O(log |Ep|)``-approximation: repeatedly pick the view
whose match covers the most still-uncovered pattern edges (largest
``α(V) = |M^Qs_V \\ Ec| / |Ep|``), until the query is covered or no view
helps.

:func:`minimum_views_exact` additionally provides the brute-force
optimum for small inputs; the test suite uses it to validate the greedy
bound, and it doubles as a reference for users with tiny view caches.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, List, Optional, Set, Tuple

from repro.core.containment import (
    Containment,
    Views,
    _normalize,
    _view_match_fn,
    merge_view_matches,
)
from repro.core.view_match import ViewMatch
from repro.graph.pattern import Pattern

PEdge = Tuple[Hashable, Hashable]


def minimum_views(query: Pattern, views: Views) -> Containment:
    """Algorithm ``minimum``: greedy set-cover view selection.

    Returns a :class:`Containment` over the chosen subset with
    ``card(V') <= log(|Ep|) * card(V_OPT)`` whenever ``Q ⊑ V``; when
    ``Q ⋢ V``, ``holds`` is False and the mapping holds the partial
    cover accumulated before the greedy loop stalled.

    Complexity ``O(card(V)|Q|^2 + |V|^2 + |Q||V| + (|Q| card(V))^{3/2})``
    (Theorem 6(2)).
    """
    definitions = _normalize(views)
    view_match = _view_match_fn(query, definitions)
    edge_set = query.edge_set()

    matches: List[ViewMatch] = [view_match(query, d) for d in definitions]
    remaining = list(matches)
    selected: List[ViewMatch] = []
    covered: Set[PEdge] = set()
    while covered != edge_set and remaining:
        best = max(remaining, key=lambda m: len((m.covered & edge_set) - covered))
        gain = (best.covered & edge_set) - covered
        if not gain:
            break
        remaining.remove(best)
        selected.append(best)
        covered |= gain
    return merge_view_matches(query, selected)


def minimum_views_exact(query: Pattern, views: Views) -> Optional[Containment]:
    """Brute-force MMCP (exponential; reference implementation).

    Tries subsets in increasing cardinality and returns the first that
    contains the query, or ``None`` when ``Q ⋢ V``.  Only sensible for
    small ``card(V)``.
    """
    definitions = _normalize(views)
    view_match = _view_match_fn(query, definitions)
    edge_set = query.edge_set()
    matches = [view_match(query, d) for d in definitions]
    total: Set[PEdge] = set()
    for match in matches:
        total |= match.covered & edge_set
    if total != edge_set:
        return None
    for size in range(1, len(matches) + 1):
        for combo in combinations(matches, size):
            covered: Set[PEdge] = set()
            for match in combo:
                covered |= match.covered & edge_set
            if covered == edge_set:
                return merge_view_matches(query, list(combo))
    return None  # pragma: no cover - unreachable given the early union check
