"""End-to-end pipeline: select views, check containment, MatchJoin.

:func:`answer_with_views` is the "query A" of Section II-B made
concrete: given a (bounded) pattern query and a :class:`ViewSet`, it

1. selects views via ``contain`` / ``minimal`` / ``minimum`` (choosing
   the bounded variants automatically),
2. verifies ``Q ⊑ V`` (raising :class:`NotContainedError` otherwise,
   since by Theorem 1 no equivalent view-only query exists),
3. materializes any missing extensions when a data graph is supplied
   (a convenience -- in production the cache is maintained offline),
4. runs (B)MatchJoin on the extensions only.

The returned :class:`Answer` carries the result plus the provenance the
paper's experiments report: which views were used, and the total
extension size that the evaluation touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.core.containment import Containment, contains
from repro.core.matchjoin import match_join
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.errors import NotContainedError
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet

#: Selection strategies and their (plain, bounded) implementations.
_STRATEGIES = {
    "all": (contains, bounded_contains),
    "minimal": (minimal_views, bounded_minimal_views),
    "minimum": (minimum_views, bounded_minimum_views),
}


@dataclass
class Answer:
    """Result of answering a query using views, with provenance."""

    result: MatchResult
    containment: Containment
    views_used: Tuple[str, ...]
    extension_size: int

    def __bool__(self) -> bool:
        return bool(self.result)


def answer_with_views(
    query: Pattern,
    views: ViewSet,
    graph: Optional[DataGraph] = None,
    selection: str = "minimal",
    optimized: bool = True,
) -> Answer:
    """Answer ``query`` using only the views in ``views``.

    Parameters
    ----------
    query:
        A :class:`Pattern` or :class:`BoundedPattern`.
    views:
        The view cache.  Extensions for the selected views must already
        be materialized unless ``graph`` is given.
    graph:
        Optional data graph used *only* to materialize missing
        extensions; the evaluation itself never touches it.
    selection:
        ``"all"`` (use every covering view), ``"minimal"`` (Theorem 5)
        or ``"minimum"`` (greedy, Theorem 6).
    optimized:
        Forwarded to (B)MatchJoin's fixpoint engine.

    Raises
    ------
    NotContainedError
        When ``Q ⋢ V`` -- per Theorem 1 the query cannot be answered
        using these views.  (See :mod:`repro.core.rewriting` for the
        maximally-contained fallback.)
    """
    if selection not in _STRATEGIES:
        raise ValueError(
            f"unknown selection {selection!r}; expected one of "
            f"{sorted(_STRATEGIES)}"
        )
    bounded = isinstance(query, BoundedPattern) or any(
        d.is_bounded for d in views
    )
    select = _STRATEGIES[selection][1 if bounded else 0]
    containment = select(query, views)
    if not containment.holds:
        raise NotContainedError(containment.uncovered)

    needed = containment.views_used()
    if graph is not None:
        missing = [name for name in needed if not views.is_materialized(name)]
        if missing:
            views.materialize(graph, names=missing)
    extensions = {name: views.extension(name) for name in needed}

    if bounded:
        bounded_query = (
            query if isinstance(query, BoundedPattern) else query.bounded()
        )
        result = bounded_match_join(
            bounded_query, containment, extensions, optimized=optimized
        )
    else:
        result = match_join(query, containment, extensions, optimized=optimized)
    return Answer(
        result=result,
        containment=containment,
        views_used=needed,
        extension_size=sum(ext.size for ext in extensions.values()),
    )
