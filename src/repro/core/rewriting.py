"""Partial answering when ``Q ⋢ V`` (Section VIII, future-work item 2).

When a query is *not* contained in the available views, Theorem 1 rules
out answering it from the views alone.  Two useful fallbacks are
provided:

* :func:`partial_answer` -- evaluate the *covered subpattern* (the
  query restricted to edges some view match covers) from the views
  only.  Because constraints were dropped, each returned match set is a
  **superset** of the full query's (restricted to covered edges): an
  over-approximation suitable for pruning, previews, or routing.
* :func:`hybrid_answer` -- compute the **exact** ``Q(G)``, touching
  ``G`` only for the uncovered edges: covered edges merge from the
  views (as in MatchJoin), uncovered edges scan label-compatible data
  edges, and one shared fixpoint refines both.  When most of the query
  is covered this does a small fraction of Match's work while staying
  exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Set, Tuple, Union

from repro.core.containment import Containment, Views, contains, _normalize
from repro.core.matchjoin import merge_initial_sets, run_fixpoint, _extensions_of
from repro.errors import UnsupportedPatternError
from repro.graph.conditions import AttributeCondition, Label
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView

PEdge = Tuple[Hashable, Hashable]
Extensions = Mapping[str, MaterializedView]


@dataclass
class PartialAnswer:
    """Result of :func:`partial_answer`."""

    result: MatchResult
    covered_subpattern: Pattern
    covered: FrozenSet[PEdge]
    uncovered: FrozenSet[PEdge]
    containment: Containment

    @property
    def coverage(self) -> float:
        """Fraction of query edges some view match covers (1.0 means
        ``Q ⊑ V`` and the answer is exact, per Theorem 1)."""
        total = len(self.covered) + len(self.uncovered)
        return len(self.covered) / total if total else 1.0


def partial_answer(
    query: Pattern,
    views: ViewSet,
    graph: DataGraph = None,
) -> PartialAnswer:
    """Answer the covered subpattern of ``query`` from views only.

    The subpattern keeps exactly the edges some view match covers; its
    match sets over-approximate the full query's on those edges (the
    uncovered edges' constraints are not enforced).  ``graph`` is used
    only to materialize missing extensions, mirroring
    :func:`repro.core.answer.answer_with_views`.
    """
    if isinstance(query, BoundedPattern):
        from repro.core.bounded.bcontainment import bounded_contains

        containment = bounded_contains(query, views)
    else:
        containment = contains(query, views)
    covered = frozenset(containment.mapping)
    if not covered:
        return PartialAnswer(
            MatchResult.empty(), Pattern(), covered,
            frozenset(query.edge_set()), containment,
        )
    subpattern = query.subpattern(covered)
    sub_containment = Containment(
        holds=True,
        mapping={e: containment.mapping[e] for e in covered},
        uncovered=frozenset(),
        view_names=containment.view_names,
    )
    needed = [
        name
        for name in containment.views_used()
        if any(ref[0] == name for refs in sub_containment.mapping.values() for ref in refs)
    ]
    if graph is not None:
        missing = [n for n in needed if not views.is_materialized(n)]
        if missing:
            views.materialize(graph, names=missing)
    extensions = {name: views.extension(name) for name in needed}
    if isinstance(query, BoundedPattern):
        from repro.core.bounded.bmatchjoin import bounded_match_join

        result = bounded_match_join(subpattern, sub_containment, extensions)
    else:
        from repro.core.matchjoin import match_join

        result = match_join(subpattern, sub_containment, extensions)
    return PartialAnswer(
        result, subpattern, covered, containment.uncovered, containment
    )


def hybrid_answer(
    query: Pattern,
    views: ViewSet,
    graph: DataGraph,
) -> MatchResult:
    """Exact ``Q(G)`` touching ``G`` only for uncovered edges.

    Initial match sets: covered edges merge their λ-image view pairs;
    uncovered edges take every data edge whose endpoints satisfy the
    pattern conditions.  Both initializations are supersets of the true
    match sets, so the shared MatchJoin fixpoint converges to exactly
    ``Q(G)`` (the Theorem 1 invariant).  Bounded queries are supported:
    uncovered edges enumerate bounded-BFS pairs.

    Convenience wrapper: runs the containment check and materializes
    missing extensions, then delegates to :func:`hybrid_join` -- the
    engine calls :func:`hybrid_join` directly with a pre-computed
    containment and a point-in-time extensions mapping.
    """
    bounded = isinstance(query, BoundedPattern)
    if bounded:
        from repro.core.bounded.bcontainment import bounded_contains

        containment = bounded_contains(query, views)
    else:
        containment = contains(query, views)
    needed = {ref[0] for refs in containment.mapping.values() for ref in refs}
    missing = [n for n in needed if not views.is_materialized(n)]
    if missing:
        views.materialize(graph, names=missing)
    extensions = {name: views.extension(name) for name in needed}
    return hybrid_join(query, containment, extensions, graph)


def hybrid_join(
    query: Pattern,
    containment: Containment,
    extensions: Extensions,
    graph: DataGraph,
    optimized: bool = True,
) -> MatchResult:
    """The hybrid evaluation kernel: covered edges from ``extensions``,
    uncovered edges from ``graph``, one shared fixpoint.

    ``containment`` carries the λ mapping of the covered edges (it need
    not hold -- partial coverage is the point); ``extensions`` must
    contain every view the mapping references; ``graph`` may be the
    mutable :class:`DataGraph` or a frozen
    :class:`~repro.graph.compact.CompactGraph` snapshot (the engine
    ships its snapshot, same as direct evaluation).  This is the code
    path :class:`~repro.engine.executor.EvaluationSpec` kind
    ``"hybrid"`` runs, in-process and in pool workers alike.
    """
    if query.isolated_nodes():
        raise UnsupportedPatternError(
            "pattern has isolated nodes; evaluate directly with match()"
        )
    bounded = isinstance(query, BoundedPattern)
    covered = frozenset(containment.mapping) & frozenset(query.edge_set())

    # Covered part: exactly MatchJoin's merge, on the covered subpattern.
    initial: Dict[PEdge, Set] = {}
    if covered:
        subpattern = query.subpattern(covered)
        sub_containment = Containment(
            holds=True,
            mapping={e: containment.mapping[e] for e in covered},
            uncovered=frozenset(),
            view_names=containment.view_names,
        )
        if bounded:
            from repro.core.bounded.bmatchjoin import merge_initial_sets_bounded

            initial.update(
                merge_initial_sets_bounded(subpattern, sub_containment, extensions)
            )
        else:
            initial.update(
                merge_initial_sets(subpattern, sub_containment, extensions)
            )

    # Uncovered part: seed candidates from the label index when the
    # node condition pins a label (mirroring
    # :mod:`repro.simulation.seeding`), then *narrow them through the
    # covered part*: any final match of node ``u`` must have a
    # successor matching every outgoing pattern edge of ``u``, so it
    # must appear among the *sources* of each covered edge ``(u, x)``'s
    # initial pairs (which over-approximate per Theorem 1).  Only the
    # source side anchors -- simulation imposes no predecessor
    # requirement, so the targets of a covered incoming edge are NOT a
    # superset of the node's match set (that would be dual-simulation
    # semantics).  Both refinements keep each candidate set a superset
    # of the true match set, so the shared fixpoint still converges to
    # exactly ``Q(G)`` -- but the uncovered scan now fans out from the
    # covered anchors instead of a whole label bucket, which is what
    # makes hybrid rewriting cheap when coverage is high.
    covered_endpoints: Dict[Hashable, Set] = {}
    for (u, _u1), pairs in initial.items():
        sources = {v for v, _ in pairs}
        if u in covered_endpoints:
            covered_endpoints[u] &= sources
        else:
            covered_endpoints[u] = sources

    candidates: Dict = {}
    by_label = getattr(graph, "nodes_with_label", None)

    def matches_of(u):
        if u not in candidates:
            condition = query.condition(u)
            anchored = covered_endpoints.get(u)
            if anchored is not None:
                pool = anchored
            elif by_label is not None and isinstance(condition, Label):
                candidates[u] = set(by_label(condition.name))
                return candidates[u]
            elif (
                by_label is not None
                and isinstance(condition, AttributeCondition)
                and condition.label
            ):
                pool = by_label(condition.label)
            else:
                pool = graph.nodes()
            candidates[u] = {
                v
                for v in pool
                if condition.matches(graph.labels(v), graph.attrs(v))
            }
        return candidates[u]

    for edge in query.edges():
        if edge in covered:
            continue
        u, u1 = edge
        sources = matches_of(u)
        targets = matches_of(u1)
        pairs: Set = set()
        if bounded:
            bound = query.bound(edge)
            from repro.graph.pattern import ANY
            from repro.simulation.distance import BoundedDistanceCache

            cache = BoundedDistanceCache(graph)
            for v in sources:
                if bound is ANY:
                    pairs.update(
                        (v, w) for w in cache.reachable(v) if w in targets
                    )
                else:
                    pairs.update(
                        (v, w)
                        for w in cache.descendants(v, bound)
                        if w in targets
                    )
        else:
            for v in sources:
                pairs.update((v, w) for w in graph.successors(v) if w in targets)
        initial[edge] = pairs

    result = run_fixpoint(query, initial, optimized=optimized)
    return result if result is not None else MatchResult.empty()
