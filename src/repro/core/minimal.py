"""Minimal containment (Section V-B, Fig. 5; Theorem 5).

Find a subset ``V' ⊆ V`` with ``Qs ⊑ V'`` such that no proper subset of
``V'`` still contains ``Qs``.  The algorithm mirrors Fig. 5: accumulate
view matches until the edges are covered (early break), then eliminate
redundant views -- a view is dropped when every edge it covers is also
covered by another kept view.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.core.containment import (
    Containment,
    Views,
    _normalize,
    _view_match_fn,
    merge_view_matches,
)
from repro.core.view_match import ViewMatch
from repro.graph.pattern import Pattern

PEdge = Tuple[Hashable, Hashable]


def minimal_views(query: Pattern, views: Views) -> Containment:
    """Algorithm ``minimal``: a minimally contained subset with its λ.

    Returns a :class:`Containment` whose λ only references views in the
    minimal subset; ``holds`` is False when ``Q ⋢ V`` (then the mapping
    is the partial coverage found, as in algorithm ``contain``).

    Complexity ``O(card(V)|Q|^2 + |V|^2 + |Q||V|)`` (Theorem 5).
    """
    definitions = _normalize(views)
    view_match = _view_match_fn(query, definitions)
    edge_set = query.edge_set()

    # Phase 1 (Fig. 5 lines 2-7): accumulate views that contribute new
    # edges; stop as soon as the query is covered.
    selected: List[ViewMatch] = []
    covered: Set[PEdge] = set()
    # M: edge -> names of selected views covering it (Fig. 5's index).
    index: Dict[PEdge, Set[str]] = {}
    for definition in definitions:
        match = view_match(query, definition)
        contributes = (match.covered & edge_set) - covered
        if not contributes:
            continue
        selected.append(match)
        for edge in match.covered & edge_set:
            covered.add(edge)
            index.setdefault(edge, set()).add(match.view_name)
        if covered == edge_set:
            break

    if covered != edge_set:
        return merge_view_matches(query, selected)

    # Phase 2 (lines 9-11): drop views whose removal leaves every edge
    # they cover still covered by some other selected view.
    kept: List[ViewMatch] = []
    for match in selected:
        removable = all(
            len(index[edge]) > 1 for edge in match.covered & edge_set
        )
        if removable:
            for edge in match.covered & edge_set:
                index[edge].discard(match.view_name)
        else:
            kept.append(match)
    return merge_view_matches(query, kept)
