"""MatchJoin: answering pattern queries using views (Section III, Fig. 2).

Given ``Qs ⊑ V`` with mapping λ and the materialized extensions
``V(G)``, MatchJoin computes ``Qs(G)`` without accessing ``G``:

1. initialize each pattern edge's match set as the union of the match
   sets of its λ-images (taken from the extensions);
2. run a fixpoint that removes invalid matches: a pair ``(v, v')`` in
   ``Se`` for ``e = (u, u')`` survives only while ``v`` has, for every
   out-edge of ``u``, some remaining pair, and likewise ``v'`` for the
   out-edges of ``u'`` (the simulation conditions of Section II-A).

Two fixpoint engines are provided:

* the **optimized** engine (default) uses per-(edge, source) witness
  counters with an invalidation worklist processed in ascending SCC
  *rank* order -- the bottom-up strategy of Section III.  Lemma 2's
  guarantee holds: on DAG patterns every match set is visited at most
  once.
* the **naive** engine (``optimized=False``) is the literal Fig. 2
  loop: scan all edges until a full pass makes no change.  It exists so
  Exp-2 (Fig. 8(f)) can measure the optimization, exactly like the
  paper's ``MatchJoin_nopt``.

Total cost of the optimized engine is ``O(|Qs||V(G)| + |V(G)|^2)``
(Theorem 1(2)).
"""

from __future__ import annotations

import heapq
import logging
from collections import deque
from itertools import repeat
from typing import Dict, Hashable, List, Mapping, Optional, Set, Tuple, Union

from repro.core.containment import Containment
from repro.errors import NotContainedError, NotMaterializedError, UnsupportedPatternError
from repro.graph.pattern import Pattern
from repro.graph.scc import node_ranks
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.simulation.result import MatchResult
from repro.views.flatpack import FlatExtension
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView

log = logging.getLogger(__name__)

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]
Extensions = Mapping[str, MaterializedView]


def _check_inputs(
    query: Pattern, containment: Containment, extensions: Extensions
) -> None:
    """Shared precondition checks for every MatchJoin entry point."""
    if not containment.holds:
        raise NotContainedError(containment.uncovered)
    if query.isolated_nodes():
        raise UnsupportedPatternError(
            "pattern has isolated nodes; view extensions store edges, so "
            "evaluate such patterns directly with match()"
        )
    for edge in query.edges():
        for view_name, _ in containment.mapping.get(edge, ()):
            if view_name not in extensions:
                raise NotMaterializedError(
                    f"extension for view {view_name!r} is required by λ "
                    "but was not provided"
                )


def merge_initial_sets(
    query: Pattern,
    containment: Containment,
    extensions: Extensions,
) -> Dict[PEdge, Set[NodePair]]:
    """Fig. 2 lines 1-4: ``Se := ∪_{e' ∈ λ(e)} Se'`` from the extensions."""
    _check_inputs(query, containment, extensions)
    initial: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        refs = containment.mapping.get(edge, ())
        merged: Set[NodePair] = set()
        for view_name, view_edge in refs:
            merged |= extensions[view_name].pairs_of(view_edge)
        initial[edge] = merged
    return initial


# ----------------------------------------------------------------------
# Optimized fixpoint: witness counters + rank-ordered worklist
# ----------------------------------------------------------------------
def _fixpoint_ranked(
    query: Pattern, sets: Dict[PEdge, Set[NodePair]]
) -> Optional[Dict[PEdge, Dict[Node, Set[Node]]]]:
    """Refine ``sets`` to the simulation fixpoint, bottom-up.

    Returns per-edge ``{source: {targets}}`` adjacency, or ``None`` when
    some match set empties (no match, Fig. 2 line 11).
    """
    edges = query.edges()
    by_source: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    by_target: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    for edge in edges:
        source_index: Dict[Node, Set[Node]] = {}
        target_index: Dict[Node, Set[Node]] = {}
        for v, w in sets[edge]:
            source_index.setdefault(v, set()).add(w)
            target_index.setdefault(w, set()).add(v)
        if not source_index:
            return None
        by_source[edge] = source_index
        by_target[edge] = target_index
    return _refine_indexes(query, by_source, by_target)


def _refine_indexes(
    query: Pattern,
    by_source: Dict[PEdge, Dict[Node, Set[Node]]],
    by_target: Dict[PEdge, Dict[Node, Set[Node]]],
) -> Optional[Dict[PEdge, Dict[Node, Set[Node]]]]:
    """The rank-ordered worklist refinement over pre-grouped indexes.

    This is the node-key engine only: the snapshot fast path
    (:func:`_compact_match_join`) runs its own candidate-level batch
    fixpoint over the immutable id-space payloads and never calls in
    here.  Mutates the indexes in place; every inner set must be owned
    by the caller.
    """
    # Candidate pools and validity.  A candidate v of pattern node u is
    # valid while every out-edge of u still has a pair sourced at v,
    # i.e. v lies in the intersection of the source-index key sets of
    # u's out-edges (all indexed sets are nonempty at this point).
    candidates: Dict[PNode, Set[Node]] = {}
    for u in query.nodes():
        pool: Set[Node] = set()
        for edge in query.out_edges(u):
            pool.update(by_source[edge])
        for edge in query.in_edges(u):
            pool.update(by_target[edge])
        candidates[u] = pool

    ranks = node_ranks(query)
    counter = 0
    heap: List[Tuple[int, int, PNode, Node]] = []
    invalidated: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    # Seed with invalid candidates, lowest rank first (bottom-up).
    for u in sorted(query.nodes(), key=lambda n: ranks[n]):
        alive: Optional[Set[Node]] = None
        for edge in query.out_edges(u):
            keys = by_source[edge].keys()
            alive = set(keys) if alive is None else alive.intersection(keys)
        doomed = candidates[u] - alive if alive is not None else set()
        for v in doomed:
            invalidated[u].add(v)
            heapq.heappush(heap, (ranks[u], counter, u, v))
            counter += 1

    while heap:
        _, _, u, v = heapq.heappop(heap)
        # Remove v's outgoing pairs (v is no longer a match of u).
        for edge in query.out_edges(u):
            targets = by_source[edge].pop(v, None)
            if targets is None:
                continue
            for w in targets:
                sources = by_target[edge].get(w)
                if sources is not None:
                    sources.discard(v)
                    if not sources:
                        del by_target[edge][w]
            if not by_source[edge]:
                return None
        # Remove v's incoming pairs and propagate to the sources.
        for edge in query.in_edges(u):
            w_source_u = edge[0]
            sources = by_target[edge].pop(v, None)
            if sources is None:
                continue
            for y in sources:
                remaining = by_source[edge].get(y)
                if remaining is None:
                    continue
                remaining.discard(v)
                if not remaining:
                    del by_source[edge][y]
                    if not by_source[edge]:
                        return None
                    if y not in invalidated[w_source_u]:
                        invalidated[w_source_u].add(y)
                        heapq.heappush(
                            heap, (ranks[w_source_u], counter, w_source_u, y)
                        )
                        counter += 1
    return by_source


# ----------------------------------------------------------------------
# Flat-buffer fast path: batch set-ops over precomputed key sets
# ----------------------------------------------------------------------
def _flat_match_join(
    query: Pattern, containment: Containment, extensions: Extensions
) -> Optional[MatchResult]:
    """MatchJoin over flat-buffer extensions, as whole-edge row sweeps.

    Engages when every λ reference carries a
    :class:`~repro.views.flatpack.FlatExtension` from the same snapshot.
    Everything the fixpoint touches is a batch set-op over flat data:
    candidate pools are C-level intersections of the extensions'
    precomputed per-edge key frozensets, refinement re-derives an edge's
    live sources in **one comprehension pass over its raw ``(src, tgt)``
    id rows** (the segment slices themselves -- no grouped ``{id: set}``
    indexes are ever built, no per-candidate witness counters probed),
    and untouched edges package by unioning stored node frozensets with
    zero id decodes.  The sweep recomputes from scratch instead of
    decrementing counters, trading worst-case increments for straight
    C-speed passes -- the right trade for the serving regime, where
    extensions are large and queries converge in a few rounds.  The
    fixpoint it reaches is the same simulation refinement as
    :func:`_compact_match_join`, so results are identical to every
    other engine.
    """
    token = shared_snapshot_token(
        query,
        containment,
        extensions,
        ref_check=lambda edge, ext, view_edge, payload: isinstance(
            payload, FlatExtension
        ),
    )
    if token is None:
        return None

    # --- merge (Fig. 2 lines 1-4) on key sets only ---------------------
    edges = query.edges()
    edge_refs: Dict[PEdge, list] = {}
    src_keys: Dict[PEdge, frozenset] = {}
    tgt_keys: Dict[PEdge, frozenset] = {}
    nodes = None
    for edge in edges:
        refs = containment.mapping.get(edge, ())
        infos = []
        for view_name, view_edge in refs:
            extension = extensions[view_name]
            infos.append((extension, extension.compact, view_edge))
        edge_refs[edge] = infos
        if not infos:
            return MatchResult.empty()
        nodes = infos[0][1].nodes
        if len(infos) == 1:
            _, payload, view_edge = infos[0]
            sources = payload.src_keys[view_edge]
            targets = payload.tgt_keys[view_edge]
        else:
            sources = frozenset().union(
                *(p.src_keys[ve] for _, p, ve in infos)
            )
            targets = frozenset().union(
                *(p.tgt_keys[ve] for _, p, ve in infos)
            )
        if not sources:
            return MatchResult.empty()
        src_keys[edge] = sources
        tgt_keys[edge] = targets

    # Raw pair rows, one (src, tgt) slice pair per λ reference.  These
    # are parallel ``"q"`` views straight out of each extension's
    # segment; the fixpoint below sweeps them wholesale instead of
    # grouping them into ``{id: set}`` indexes (the compact path's merge
    # step) or probing them per candidate (its witness counters).
    rows: Dict[PEdge, list] = {
        edge: [p.pair_rows(ve) for _, p, ve in edge_refs[edge]]
        for edge in edges
    }

    # --- candidate pools and seed (batch frozenset ops) ----------------
    valid: Dict[PNode, Set[int]] = {}
    in_edges: Dict[PNode, List[PEdge]] = {}
    for u in query.nodes():
        in_edges[u] = query.in_edges(u)
        outs = [src_keys[e] for e in query.out_edges(u)]
        if outs:
            # Simulation semantics: a candidate needs a stored pair on
            # *every* out-edge, so the pool is the src-key intersection.
            valid[u] = outs[0] if len(outs) == 1 else outs[0].intersection(
                *outs[1:]
            )
            if not valid[u]:
                return MatchResult.empty()
        else:
            # Sink nodes are only ever targets; their pool is the union
            # of the incoming images.
            ins = [tgt_keys[e] for e in in_edges[u]]
            valid[u] = ins[0] if len(ins) == 1 else ins[0].union(*ins[1:])

    # --- fixpoint: whole-edge sweeps over flat rows ---------------------
    # An edge (u, u') needs a sweep only while some stored target is
    # outside valid(u'); the sweep recomputes, in one pass over the raw
    # rows, the set of sources that still have a live witness, and
    # shrinking valid(u) re-queues u's in-edges.  Every step is a batch
    # set-op (subset test, comprehension over a flat slice, C-level
    # intersection) -- there are no per-candidate unions or counter
    # probes, which is what makes large extensions cheap on this path.
    # Sweep counts aggregate in a local int and hit the registry once
    # per call (the overhead-budget discipline for hot kernels).
    sweeps = 0
    dirty = deque(edges)
    queued: Set[PEdge] = set(edges)
    while dirty:
        edge = dirty.popleft()
        queued.discard(edge)
        sweeps += 1
        u, u_prime = edge
        live_targets = valid[u_prime]
        if live_targets >= tgt_keys[edge]:
            continue  # every stored target is live: no source can die
        edge_rows = rows[edge]
        if len(edge_rows) == 1:
            src_row, tgt_row = edge_rows[0]
            alive = {
                v for v, w in zip(src_row, tgt_row) if w in live_targets
            }
        else:
            alive = set()
            for src_row, tgt_row in edge_rows:
                alive.update(
                    v for v, w in zip(src_row, tgt_row) if w in live_targets
                )
        candidates = valid[u]
        survivors = candidates & alive
        if len(survivors) == len(candidates):
            continue
        if not survivors:
            get_registry().counter(
                "repro_matchjoin_sweeps_total", path="flat"
            ).inc(sweeps)
            return MatchResult.empty()
        valid[u] = survivors
        for affected in in_edges[u]:
            if affected not in queued:
                dirty.append(affected)
                queued.add(affected)
    get_registry().counter(
        "repro_matchjoin_sweeps_total", path="flat"
    ).inc(sweeps)

    # --- package: batch unions for untouched edges ---------------------
    decode = nodes.__getitem__
    node_matches: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    for edge in edges:
        u, u_prime = edge
        infos = edge_refs[edge]
        valid_src = valid[u]
        valid_tgt = valid[u_prime]
        if src_keys[edge] <= valid_src and tgt_keys[edge] <= valid_tgt:
            # No endpoint candidate of this edge was refined away: every
            # stored pair survives, so the answer is the stored node-key
            # sets united wholesale -- no per-pair decode.
            if len(infos) == 1:
                extension, payload, view_edge = infos[0]
                edge_matches[edge] = set(extension.edge_matches[view_edge])
                node_matches[u] |= payload.src_nodes[view_edge]
                node_matches[u_prime] |= payload.tgt_nodes[view_edge]
            else:
                edge_matches[edge] = set().union(
                    *(ext.edge_matches[ve] for ext, _, ve in infos)
                )
                node_matches[u] = node_matches[u].union(
                    *(p.src_nodes[ve] for _, p, ve in infos)
                )
                node_matches[u_prime] = node_matches[u_prime].union(
                    *(p.tgt_nodes[ve] for _, p, ve in infos)
                )
            continue
        # Touched edge: one filtering pass over the raw rows, decoding
        # only the pairs that survived.
        pairs: Set[NodePair] = set()
        for src_row, tgt_row in rows[edge]:
            pairs.update(
                (decode(v), decode(w))
                for v, w in zip(src_row, tgt_row)
                if v in valid_src and w in valid_tgt
            )
        edge_matches[edge] = pairs
        node_matches[u].update(pair[0] for pair in pairs)
        node_matches[u_prime].update(pair[1] for pair in pairs)
    return MatchResult(node_matches, edge_matches)


# ----------------------------------------------------------------------
# Snapshot fast path: id-space fixpoint over compact extension payloads
# ----------------------------------------------------------------------
def _compact_match_join(
    query: Pattern, containment: Containment, extensions: Extensions
) -> Optional[MatchResult]:
    """Run MatchJoin in snapshot id space when the extensions allow it.

    Engages only when every extension λ references carries a
    :class:`~repro.views.view.CompactExtension` payload *from the same
    snapshot* (equal tokens -- ids from different snapshots must never
    mix).  Returns ``None`` to signal "fall back to the node-key path";
    otherwise the finished (decoded) :class:`MatchResult`.

    Unlike the node-key engine, which refines *pair sets* in place, this
    path refines at the *candidate* level: a pair ``(v, w)`` of edge
    ``e = (u, u')`` survives the Fig. 2 fixpoint iff ``v`` stays a valid
    candidate of ``u`` and ``w`` of ``u'``, where validity is the
    greatest relation in which every candidate has, for each out-edge of
    its pattern node, at least one surviving target in the initial
    merged set.  Candidate validity is computed with the same batched
    witness-counter propagation as the compact simulation engine --
    entirely over the extensions' pre-grouped, immutable id indexes, so
    the merge step copies nothing for single-view λ images, and an edge
    whose endpoints lose no candidates reuses the stored node-key pair
    set outright instead of decoding pair by pair.
    """
    if shared_snapshot_token(query, containment, extensions) is None:
        return None

    # --- merge (Fig. 2 lines 1-4), sharing single-view indexes --------
    nodes = None
    by_source: Dict[PEdge, Dict[int, Set[int]]] = {}
    by_target: Dict[PEdge, Dict[int, Set[int]]] = {}
    # For single-view λ images, the stored node-key pair set to reuse
    # wholesale when refinement leaves the edge untouched.
    stored_pairs: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        refs = containment.mapping.get(edge, ())
        source_index, target_index, edge_nodes, stored = merge_edge_indexes(
            refs, extensions
        )
        if edge_nodes is not None:
            nodes = edge_nodes
        if stored is not None:
            stored_pairs[edge] = stored
        if not source_index:
            return MatchResult.empty()
        by_source[edge] = source_index
        by_target[edge] = target_index

    return compact_candidate_fixpoint(query, by_source, by_target, stored_pairs, nodes)


def shared_snapshot_token(
    query: Pattern,
    containment: Containment,
    extensions: Extensions,
    ref_check=None,
):
    """The single snapshot token behind every extension λ references,
    or ``None`` when the fast paths must fall back: a referenced
    extension carries no :class:`CompactExtension` payload, payloads
    come from different snapshots (ids must never mix), the λ mapping
    references nothing, or the optional ``ref_check(query_edge,
    extension, view_edge, payload)`` vetoes a reference (BMatchJoin
    uses it to demand a distance table where bound filtering applies).
    """
    token = None
    for edge in query.edges():
        for view_name, view_edge in containment.mapping.get(edge, ()):
            extension = extensions[view_name]
            payload = extension.compact
            if payload is None:
                return None
            if token is None:
                token = payload.token
            elif payload.token != token:
                return None
            if ref_check is not None and not ref_check(
                edge, extension, view_edge, payload
            ):
                return None
    return token


def union_payload_into(
    source_index: Dict[int, Set[int]],
    target_index: Dict[int, Set[int]],
    payload,
    view_edge: PEdge,
) -> None:
    """Union one stored payload index pair into mutable merge targets
    (the multi-view arm of Fig. 2 lines 1-4, id space)."""
    for v, targets in payload.by_source[view_edge].items():
        current = source_index.get(v)
        if current is None:
            source_index[v] = set(targets)
        else:
            current |= targets
    for w, sources in payload.by_target[view_edge].items():
        current = target_index.get(w)
        if current is None:
            target_index[w] = set(sources)
        else:
            current |= sources


def merge_edge_indexes(refs, extensions: Extensions):
    """Merged id indexes for one query edge adopting λ-image pairs
    unfiltered.

    Returns ``(source_index, target_index, nodes, stored)``: for a
    single λ image the *stored* payload indexes are shared without
    copying and ``stored`` is the stored node-key pair set (reusable
    wholesale when refinement leaves the edge untouched); multi-view
    images union into fresh dicts with ``stored = None``.  ``nodes``
    is the decode table (``None`` only when ``refs`` is empty).
    """
    if len(refs) == 1:
        view_name, view_edge = refs[0]
        extension = extensions[view_name]
        payload = extension.compact
        return (
            payload.by_source[view_edge],
            payload.by_target[view_edge],
            payload.nodes,
            extension.edge_matches[view_edge],
        )
    source_index: Dict[int, Set[int]] = {}
    target_index: Dict[int, Set[int]] = {}
    nodes = None
    for view_name, view_edge in refs:
        payload = extensions[view_name].compact
        nodes = payload.nodes
        union_payload_into(source_index, target_index, payload, view_edge)
    return source_index, target_index, nodes, None


def _meter_fixpoint(path: str, batches: int, removed: int) -> None:
    """One registry write per fixpoint run (see the overhead budget in
    :mod:`repro.obs.metrics`)."""
    reg = get_registry()
    reg.counter("repro_matchjoin_batches_total", path=path).inc(batches)
    reg.counter("repro_matchjoin_removals_total", path=path).inc(removed)
    current = trace.current_span()
    if current is not None:
        current.set(fixpoint_batches=batches, fixpoint_removals=removed)


def compact_candidate_fixpoint(
    query: Pattern,
    by_source: Dict[PEdge, Dict[int, Set[int]]],
    by_target: Dict[PEdge, Dict[int, Set[int]]],
    stored_pairs: Dict[PEdge, Set[NodePair]],
    nodes,
) -> MatchResult:
    """The id-space candidate-level fixpoint plus result packaging.

    Shared by the plain MatchJoin fast path and the BMatchJoin fast path
    (:func:`repro.core.bounded.bmatchjoin._compact_bounded_match_join`):
    both hand in merged, pre-grouped id indexes (every ``source_index``
    nonempty) and get back the finished decoded :class:`MatchResult`.
    ``stored_pairs`` maps edges whose merged index *is* a stored
    extension index (single λ image, no filtering) to the stored
    node-key pair set, reused wholesale when refinement leaves the edge
    untouched; ``nodes`` is the snapshot's id -> key decode table.  The
    indexes are only read, never mutated.
    """
    # --- candidate pools and witness counters --------------------------
    valid: Dict[PNode, Set[int]] = {}
    out_edges: Dict[PNode, List[PEdge]] = {}
    in_edges: Dict[PNode, List[PEdge]] = {}
    for u in query.nodes():
        out_edges[u] = query.out_edges(u)
        in_edges[u] = query.in_edges(u)
        pool: Set[int] = set()
        for edge in out_edges[u]:
            pool.update(by_source[edge].keys())
        for edge in in_edges[u]:
            pool.update(by_target[edge].keys())
        valid[u] = pool

    # counters[e][v] = |by_source[e][v] & valid(target of e)| -- *lazy*,
    # exactly like the compact simulation engine: a candidate's counter
    # is only materialized the first time a removal batch touches it
    # (one set.intersection against the current target pool), so edges
    # untouched by refinement never pay the counting pass.
    counters: Dict[PEdge, Dict[int, int]] = {edge: {} for edge in by_source}

    # --- seed: candidates missing support on some out-edge -------------
    pending: Dict[PNode, Set[int]] = {}
    for u in query.nodes():
        alive: Optional[Set[int]] = None
        for edge in out_edges[u]:
            keys = by_source[edge].keys()
            alive = set(keys) if alive is None else alive.intersection(keys)
        if alive is None:
            continue
        doomed = valid[u] - alive
        if doomed:
            valid[u] = alive & valid[u]
            if not valid[u]:
                return MatchResult.empty()
            pending[u] = doomed

    # --- batched propagation (same scheme as the compact simulation) --
    # Batch/removal counts aggregate locally; _meter_fixpoint records
    # them once on every exit path.
    batches = 0
    removed_total = 0
    dead: Dict[PNode, Set[int]] = {u: set() for u in query.nodes()}
    while pending:
        u1, removed = pending.popitem()
        batches += 1
        removed_total += len(removed)
        dead[u1] |= removed
        for edge in in_edges[u1]:
            u0 = edge[0]
            target_index = by_target[edge]
            touched: Set[int] = set()
            for w in removed:
                sources = target_index.get(w)
                if sources:
                    touched |= sources
            candidates = valid[u0]
            affected = candidates & touched
            if not affected:
                continue
            source_index = by_source[edge]
            edge_counter = counters[edge]
            # A counter materialized mid-propagation must count every
            # witness whose departure has not been *processed* yet:
            # valid(u1) plus anything still queued for u1 (a self-loop
            # query edge can re-queue ids for u1 during this very pop).
            # The current batch is excluded from both, so it needs no
            # decrement on a fresh counter; queued ids will decrement
            # exactly once when their own batch pops.
            queued_for_u1 = pending.get(u1)
            if queued_for_u1:
                intersect_targets = (valid[u1] | queued_for_u1).intersection
            else:
                intersect_targets = valid[u1].intersection
            intersect_removed = removed.intersection
            newly: Set[int] = set()
            for v in affected:
                count = edge_counter.get(v)
                if count is None:
                    count = len(intersect_targets(source_index[v]))
                else:
                    count -= len(intersect_removed(source_index[v]))
                edge_counter[v] = count
                if count == 0:
                    newly.add(v)
            if newly:
                candidates -= newly
                if not candidates:
                    _meter_fixpoint("compact", batches, removed_total)
                    return MatchResult.empty()
                queued = pending.get(u0)
                if queued is None:
                    pending[u0] = newly
                else:
                    queued |= newly
    _meter_fixpoint("compact", batches, removed_total)

    # --- package: restrict the initial sets to the valid candidates ----
    decode = nodes.__getitem__
    node_matches: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        u, u_prime = edge
        source_index = by_source[edge]
        sources = valid[u].intersection(source_index.keys())
        target_pool = valid[u_prime]
        shared = stored_pairs.get(edge)
        if (
            shared is not None
            and not dead[u]
            and not dead[u_prime]
            and len(sources) == len(source_index)
        ):
            # Nothing was refined away: the stored extension pair set is
            # the answer for this edge (copied so callers own it).
            edge_matches[edge] = set(shared)
            node_matches[u].update(map(decode, sources))
            node_matches[u_prime].update(map(decode, by_target[edge].keys()))
            continue
        pairs: Set[NodePair] = set()
        surviving_targets: Set[int] = set()
        for v in sources:
            targets = target_pool.intersection(source_index[v])
            if targets:
                surviving_targets |= targets
                pairs.update(zip(repeat(decode(v)), map(decode, targets)))
        edge_matches[edge] = pairs
        node_matches[u].update(map(decode, sources))
        node_matches[u_prime].update(map(decode, surviving_targets))
    return MatchResult(node_matches, edge_matches)


# ----------------------------------------------------------------------
# Naive fixpoint: the literal Fig. 2 while-loop (MatchJoin_nopt)
# ----------------------------------------------------------------------
def _fixpoint_naive(
    query: Pattern, sets: Dict[PEdge, Set[NodePair]]
) -> Optional[Dict[PEdge, Dict[Node, Set[Node]]]]:
    edges = query.edges()
    current: Dict[PEdge, Set[NodePair]] = {e: set(sets[e]) for e in edges}
    if any(not current[e] for e in edges):
        return None
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        # Rebuild the source index from scratch every pass: no worklist,
        # no rank order -- each Se is revisited until a quiet pass.
        sources: Dict[PEdge, Set[Node]] = {
            e: {pair[0] for pair in current[e]} for e in edges
        }
        for edge in edges:
            u, u_prime = edge
            out_u = query.out_edges(u)
            out_u_prime = query.out_edges(u_prime)
            doomed: List[NodePair] = []
            for v, w in current[edge]:
                ok = all(v in sources[e1] for e1 in out_u) and all(
                    w in sources[e2] for e2 in out_u_prime
                )
                if not ok:
                    doomed.append((v, w))
            if doomed:
                current[edge] -= set(doomed)
                if not current[edge]:
                    get_registry().counter(
                        "repro_matchjoin_sweeps_total", path="naive"
                    ).inc(passes)
                    return None
                changed = True
    get_registry().counter(
        "repro_matchjoin_sweeps_total", path="naive"
    ).inc(passes)
    by_source: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    for edge in edges:
        index: Dict[Node, Set[Node]] = {}
        for v, w in current[edge]:
            index.setdefault(v, set()).add(w)
        by_source[edge] = index
    return by_source


def run_fixpoint(
    query: Pattern,
    sets: Dict[PEdge, Set[NodePair]],
    optimized: bool = True,
) -> Optional[MatchResult]:
    """Run the chosen fixpoint engine and package the result."""
    engine = _fixpoint_ranked if optimized else _fixpoint_naive
    by_source = engine(query, sets)
    if by_source is None:
        return None
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    node_matches: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    for edge, index in by_source.items():
        pairs = {(v, w) for v, targets in index.items() for w in targets}
        edge_matches[edge] = pairs
        u, u_prime = edge
        for v, w in pairs:
            node_matches[u].add(v)
            node_matches[u_prime].add(w)
    return MatchResult(node_matches, edge_matches)


def _extensions_of(views: Union[Extensions, ViewSet]) -> Extensions:
    if isinstance(views, ViewSet):
        return views.extensions()
    return views


def match_join(
    query: Pattern,
    containment: Containment,
    extensions: Union[Extensions, ViewSet],
    optimized: bool = True,
) -> MatchResult:
    """Evaluate ``Qs`` from view extensions only (algorithm MatchJoin).

    Parameters
    ----------
    query:
        The pattern query ``Qs``.
    containment:
        A holding :class:`Containment` for ``Qs`` against the views
        whose extensions are supplied (its λ guides the merge).
    extensions:
        ``{view name: MaterializedView}`` or a materialized
        :class:`ViewSet`.  The data graph itself is never consulted.
    optimized:
        Use the rank-ordered worklist engine (default) or the literal
        Fig. 2 loop (``MatchJoin_nopt``).

    Returns the unique maximum result ``{(e, Se)}``; empty when ``G``
    does not match ``Qs``.  Node match sets in the returned result are
    the nodes participating in edge matches (the paper's ``Qs(G)`` is
    the edge-level object).

    When every referenced extension was materialized against the same
    :class:`~repro.graph.compact.CompactGraph` snapshot, the optimized
    engine runs entirely in the snapshot's integer-id space (see
    :func:`_compact_match_join`); the result is identical either way.
    """
    resolved = _extensions_of(extensions)
    _check_inputs(query, containment, resolved)
    reg = get_registry()
    if optimized:
        with trace.span("matchjoin", edges=len(query.edges())) as mj_span:
            fast = _flat_match_join(query, containment, resolved)
            path = "flat"
            if fast is None:
                fast = _compact_match_join(query, containment, resolved)
                path = "compact"
            if fast is not None:
                reg.counter("repro_matchjoin_total", path=path).inc()
                if mj_span is not None:
                    mj_span.set(path=path)
                return fast
            if mj_span is not None:
                mj_span.set(path="dict")
            reg.counter("repro_matchjoin_total", path="dict").inc()
            initial = merge_initial_sets(query, containment, resolved)
            result = run_fixpoint(query, initial, optimized=True)
            return result if result is not None else MatchResult.empty()
    reg.counter("repro_matchjoin_total", path="naive").inc()
    initial = merge_initial_sets(query, containment, resolved)
    result = run_fixpoint(query, initial, optimized=False)
    return result if result is not None else MatchResult.empty()
