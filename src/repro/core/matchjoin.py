"""MatchJoin: answering pattern queries using views (Section III, Fig. 2).

Given ``Qs ⊑ V`` with mapping λ and the materialized extensions
``V(G)``, MatchJoin computes ``Qs(G)`` without accessing ``G``:

1. initialize each pattern edge's match set as the union of the match
   sets of its λ-images (taken from the extensions);
2. run a fixpoint that removes invalid matches: a pair ``(v, v')`` in
   ``Se`` for ``e = (u, u')`` survives only while ``v`` has, for every
   out-edge of ``u``, some remaining pair, and likewise ``v'`` for the
   out-edges of ``u'`` (the simulation conditions of Section II-A).

Two fixpoint engines are provided:

* the **optimized** engine (default) uses per-(edge, source) witness
  counters with an invalidation worklist processed in ascending SCC
  *rank* order -- the bottom-up strategy of Section III.  Lemma 2's
  guarantee holds: on DAG patterns every match set is visited at most
  once.
* the **naive** engine (``optimized=False``) is the literal Fig. 2
  loop: scan all edges until a full pass makes no change.  It exists so
  Exp-2 (Fig. 8(f)) can measure the optimization, exactly like the
  paper's ``MatchJoin_nopt``.

Total cost of the optimized engine is ``O(|Qs||V(G)| + |V(G)|^2)``
(Theorem 1(2)).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Mapping, Optional, Set, Tuple, Union

from repro.core.containment import Containment
from repro.errors import NotContainedError, NotMaterializedError, UnsupportedPatternError
from repro.graph.pattern import Pattern
from repro.graph.scc import node_ranks
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]
Extensions = Mapping[str, MaterializedView]


def merge_initial_sets(
    query: Pattern,
    containment: Containment,
    extensions: Extensions,
) -> Dict[PEdge, Set[NodePair]]:
    """Fig. 2 lines 1-4: ``Se := ∪_{e' ∈ λ(e)} Se'`` from the extensions."""
    if not containment.holds:
        raise NotContainedError(containment.uncovered)
    if query.isolated_nodes():
        raise UnsupportedPatternError(
            "pattern has isolated nodes; view extensions store edges, so "
            "evaluate such patterns directly with match()"
        )
    initial: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        refs = containment.mapping.get(edge, ())
        merged: Set[NodePair] = set()
        for view_name, view_edge in refs:
            if view_name not in extensions:
                raise NotMaterializedError(
                    f"extension for view {view_name!r} is required by λ "
                    "but was not provided"
                )
            merged |= extensions[view_name].pairs_of(view_edge)
        initial[edge] = merged
    return initial


# ----------------------------------------------------------------------
# Optimized fixpoint: witness counters + rank-ordered worklist
# ----------------------------------------------------------------------
def _fixpoint_ranked(
    query: Pattern, sets: Dict[PEdge, Set[NodePair]]
) -> Optional[Dict[PEdge, Dict[Node, Set[Node]]]]:
    """Refine ``sets`` to the simulation fixpoint, bottom-up.

    Returns per-edge ``{source: {targets}}`` adjacency, or ``None`` when
    some match set empties (no match, Fig. 2 line 11).
    """
    edges = query.edges()
    by_source: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    by_target: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    for edge in edges:
        source_index: Dict[Node, Set[Node]] = {}
        target_index: Dict[Node, Set[Node]] = {}
        for v, w in sets[edge]:
            source_index.setdefault(v, set()).add(w)
            target_index.setdefault(w, set()).add(v)
        if not source_index:
            return None
        by_source[edge] = source_index
        by_target[edge] = target_index

    # Candidate pools and validity.  A candidate v of pattern node u is
    # valid while every out-edge of u still has a pair sourced at v.
    candidates: Dict[PNode, Set[Node]] = {}
    for u in query.nodes():
        pool: Set[Node] = set()
        for edge in query.out_edges(u):
            pool.update(by_source[edge])
        for edge in query.in_edges(u):
            pool.update(by_target[edge])
        candidates[u] = pool

    def valid(u: PNode, v: Node) -> bool:
        return all(
            v in by_source[edge] and by_source[edge][v]
            for edge in query.out_edges(u)
        )

    ranks = node_ranks(query)
    counter = 0
    heap: List[Tuple[int, int, PNode, Node]] = []
    invalidated: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    # Seed with invalid candidates, lowest rank first (bottom-up).
    for u in sorted(query.nodes(), key=lambda n: ranks[n]):
        for v in candidates[u]:
            if not valid(u, v):
                invalidated[u].add(v)
                heapq.heappush(heap, (ranks[u], counter, u, v))
                counter += 1

    while heap:
        _, _, u, v = heapq.heappop(heap)
        # Remove v's outgoing pairs (v is no longer a match of u).
        for edge in query.out_edges(u):
            targets = by_source[edge].pop(v, None)
            if targets is None:
                continue
            for w in targets:
                sources = by_target[edge].get(w)
                if sources is not None:
                    sources.discard(v)
                    if not sources:
                        del by_target[edge][w]
            if not by_source[edge]:
                return None
        # Remove v's incoming pairs and propagate to the sources.
        for edge in query.in_edges(u):
            w_source_u = edge[0]
            sources = by_target[edge].pop(v, None)
            if sources is None:
                continue
            for y in sources:
                remaining = by_source[edge].get(y)
                if remaining is None:
                    continue
                remaining.discard(v)
                if not remaining:
                    del by_source[edge][y]
                    if not by_source[edge]:
                        return None
                    if y not in invalidated[w_source_u]:
                        invalidated[w_source_u].add(y)
                        heapq.heappush(
                            heap, (ranks[w_source_u], counter, w_source_u, y)
                        )
                        counter += 1
    return by_source


# ----------------------------------------------------------------------
# Naive fixpoint: the literal Fig. 2 while-loop (MatchJoin_nopt)
# ----------------------------------------------------------------------
def _fixpoint_naive(
    query: Pattern, sets: Dict[PEdge, Set[NodePair]]
) -> Optional[Dict[PEdge, Dict[Node, Set[Node]]]]:
    edges = query.edges()
    current: Dict[PEdge, Set[NodePair]] = {e: set(sets[e]) for e in edges}
    if any(not current[e] for e in edges):
        return None
    changed = True
    while changed:
        changed = False
        # Rebuild the source index from scratch every pass: no worklist,
        # no rank order -- each Se is revisited until a quiet pass.
        sources: Dict[PEdge, Set[Node]] = {
            e: {pair[0] for pair in current[e]} for e in edges
        }
        for edge in edges:
            u, u_prime = edge
            out_u = query.out_edges(u)
            out_u_prime = query.out_edges(u_prime)
            doomed: List[NodePair] = []
            for v, w in current[edge]:
                ok = all(v in sources[e1] for e1 in out_u) and all(
                    w in sources[e2] for e2 in out_u_prime
                )
                if not ok:
                    doomed.append((v, w))
            if doomed:
                current[edge] -= set(doomed)
                if not current[edge]:
                    return None
                changed = True
    by_source: Dict[PEdge, Dict[Node, Set[Node]]] = {}
    for edge in edges:
        index: Dict[Node, Set[Node]] = {}
        for v, w in current[edge]:
            index.setdefault(v, set()).add(w)
        by_source[edge] = index
    return by_source


def run_fixpoint(
    query: Pattern,
    sets: Dict[PEdge, Set[NodePair]],
    optimized: bool = True,
) -> Optional[MatchResult]:
    """Run the chosen fixpoint engine and package the result."""
    engine = _fixpoint_ranked if optimized else _fixpoint_naive
    by_source = engine(query, sets)
    if by_source is None:
        return None
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    node_matches: Dict[PNode, Set[Node]] = {u: set() for u in query.nodes()}
    for edge, index in by_source.items():
        pairs = {(v, w) for v, targets in index.items() for w in targets}
        edge_matches[edge] = pairs
        u, u_prime = edge
        for v, w in pairs:
            node_matches[u].add(v)
            node_matches[u_prime].add(w)
    return MatchResult(node_matches, edge_matches)


def _extensions_of(views: Union[Extensions, ViewSet]) -> Extensions:
    if isinstance(views, ViewSet):
        return views.extensions()
    return views


def match_join(
    query: Pattern,
    containment: Containment,
    extensions: Union[Extensions, ViewSet],
    optimized: bool = True,
) -> MatchResult:
    """Evaluate ``Qs`` from view extensions only (algorithm MatchJoin).

    Parameters
    ----------
    query:
        The pattern query ``Qs``.
    containment:
        A holding :class:`Containment` for ``Qs`` against the views
        whose extensions are supplied (its λ guides the merge).
    extensions:
        ``{view name: MaterializedView}`` or a materialized
        :class:`ViewSet`.  The data graph itself is never consulted.
    optimized:
        Use the rank-ordered worklist engine (default) or the literal
        Fig. 2 loop (``MatchJoin_nopt``).

    Returns the unique maximum result ``{(e, Se)}``; empty when ``G``
    does not match ``Qs``.  Node match sets in the returned result are
    the nodes participating in edge matches (the paper's ``Qs(G)`` is
    the edge-level object).
    """
    initial = merge_initial_sets(query, containment, _extensions_of(extensions))
    result = run_fixpoint(query, initial, optimized=optimized)
    return result if result is not None else MatchResult.empty()
