"""Pattern query minimization via containment (application of Corollary 4).

"Like for relational queries, the query containment analysis is
important in minimizing and optimizing pattern queries" (Section IV).
A pattern edge is *redundant* when dropping it leaves a query that is
mutually contained with the original: the smaller query retrieves the
same information, and the dropped edge's match set is recoverable
through the containment mapping.  :func:`minimize` removes redundant
edges greedily until none remains and reports how to reconstruct the
original result.

Example: two parallel branches ``A->B1``, ``A->B2`` with identical
conditions on ``B1``/``B2`` collapse to one branch (the paper's notion
of equivalent queries; see tests for Fig.-4-style cases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.core.containment import contains
from repro.graph.pattern import Pattern
from repro.views.view import ViewDefinition

PEdge = Tuple[Hashable, Hashable]


@dataclass
class Minimization:
    """Outcome of :func:`minimize`.

    ``mapping`` sends every edge of the *original* query to the edges of
    the minimized query whose match sets jointly contain (and, by
    mutual containment, equal the union of) the original edge's
    matches.
    """

    original: Pattern
    minimized: Pattern
    mapping: Dict[PEdge, Tuple[PEdge, ...]]

    @property
    def removed_edges(self) -> int:
        """How many redundant edges minimization eliminated."""
        return self.original.num_edges - self.minimized.num_edges

    @property
    def removed_nodes(self) -> int:
        """How many nodes became orphaned and were dropped."""
        return self.original.num_nodes - self.minimized.num_nodes


def _mutually_contained(small: Pattern, big: Pattern) -> bool:
    forward = contains(big, [ViewDefinition("small", small)])
    if not forward.holds:
        return False
    backward = contains(small, [ViewDefinition("big", big)])
    return backward.holds


def minimize(query: Pattern) -> Minimization:
    """Greedily drop redundant edges while preserving equivalence.

    Runs in ``O(|Ep|^2)`` containment checks, each quadratic in the
    pattern size (Corollary 4) -- trivially fast for the pattern sizes
    simulation queries use.  The result is connected-or-smaller but may
    not be globally minimum (minimization, like its relational cousin,
    is order-sensitive; the greedy pass is the standard practical
    choice).
    """
    current = query.copy()
    changed = True
    while changed:
        changed = False
        for edge in current.edges():
            remaining = [e for e in current.edges() if e != edge]
            if not remaining:
                continue
            candidate = current.subpattern(remaining)
            if _mutually_contained(candidate, current):
                current = candidate
                changed = True
                break

    final = contains(query, [ViewDefinition("minimized", current)])
    mapping: Dict[PEdge, Tuple[PEdge, ...]] = {
        edge: tuple(view_edge for _, view_edge in refs)
        for edge, refs in final.mapping.items()
    }
    return Minimization(original=query, minimized=current, mapping=mapping)
