"""View matches for simulation patterns (Section IV, Proposition 7).

Given a view ``V`` and a pattern query ``Qs``, the *view match*
``M^Qs_V`` is obtained by evaluating ``V`` over ``Qs`` treated as a data
graph: for every view edge ``eV``, its match set ``SeV`` consists of
pattern edges of ``Qs``; ``M^Qs_V`` is their union.  Proposition 7 then
characterizes containment: ``Qs ⊑ V`` iff the view matches of all views
in ``V`` jointly cover ``Ep``.

Node-level compatibility when evaluating ``V`` over ``Qs`` is condition
*implication* (see :func:`repro.graph.conditions.implies`): view node
``x`` may match pattern node ``u`` only when every data node satisfying
``fv(u)`` is guaranteed to satisfy ``fv(x)`` -- with plain labels this
is label equality, exactly the paper's setting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.graph.conditions import implies
from repro.graph.pattern import Pattern
from repro.simulation.simulation import maximum_simulation
from repro.views.view import ViewDefinition

PNode = Hashable
PEdge = Tuple[PNode, PNode]


class ViewMatch:
    """The view match ``M^Q_V`` of one view against one query.

    Attributes
    ----------
    view_name:
        Name of the view definition.
    edge_cover:
        ``{pattern edge e: [view edges whose match set contains e]}`` --
        the "reversed view match relation" from which the λ mapping of
        pattern containment is constructed (proof of Proposition 7).
    covered:
        ``M^Q_V`` itself, as a frozenset of pattern edges.
    """

    __slots__ = ("view_name", "edge_cover", "covered")

    def __init__(self, view_name: str, edge_cover: Dict[PEdge, List[PEdge]]) -> None:
        self.view_name = view_name
        self.edge_cover = edge_cover
        self.covered: FrozenSet[PEdge] = frozenset(edge_cover)

    def __repr__(self) -> str:
        return f"ViewMatch({self.view_name!r}, covers={len(self.covered)})"


def view_match_simulation(query: Pattern, view: ViewDefinition) -> ViewMatch:
    """Compute ``M^Qs_V`` by evaluating ``V`` over ``Qs`` via simulation.

    Costs ``O(|Qs||V| + |Qs|^2 + |V|^2)`` per Theorem 3's accounting
    (the simulation evaluation of [16] on the small graphs involved).

    Node-level simulation uses condition *implication* (sound for the
    structural transfer: every data match of the pattern node is then a
    match of the view node).  Edge-level coverage additionally requires
    condition *equivalence* at the covering edge's endpoints: the view
    extension stores bare node pairs, so a strictly weaker view
    condition would smuggle pairs that violate the query's condition
    into MatchJoin's merge with no way to filter them without accessing
    ``G``.  With the paper's plain labels, implication *is* equality, so
    this is exactly the paper's setting; it only bites for the
    Boolean-predicate extension (Fig. 7 views), where it keeps Theorem 1
    sound.
    """
    view_pattern = view.pattern

    def compatible(x: PNode, u: PNode) -> bool:
        return implies(query.condition(u), view_pattern.condition(x))

    sim = maximum_simulation(view_pattern, query, compatible)
    edge_cover: Dict[PEdge, List[PEdge]] = {}
    if sim is not None:
        equivalent: Dict[tuple, bool] = {}

        def covers(x: PNode, u: PNode) -> bool:
            # u in sim[x] already gives query->view implication; the
            # reverse direction upgrades it to equivalence.
            key = (x, u)
            if key not in equivalent:
                equivalent[key] = implies(
                    view_pattern.condition(x), query.condition(u)
                )
            return equivalent[key]

        for view_edge in view_pattern.edges():
            x, y = view_edge
            sources = sim[x]
            targets = sim[y]
            for u in sources:
                if not covers(x, u):
                    continue
                for u1 in query.successors(u):
                    if u1 in targets and covers(y, u1):
                        edge_cover.setdefault((u, u1), []).append(view_edge)
    return ViewMatch(view.name, edge_cover)
