"""Pattern containment checking (Sections III-V; Theorem 3).

``Qs ⊑ V`` iff there is a mapping λ from pattern edges to sets of view
edges such that, in every graph, each edge's match set is contained in
the union of its λ-images' match sets.  Proposition 7 reduces this to
view-match coverage: ``Qs ⊑ V`` iff ``Ep = ∪_V M^Qs_V``; the λ mapping
falls out as the reversed view-match relation.

:func:`contains` implements algorithm ``contain`` (and its bounded
sibling ``Bcontain`` via dispatch on the query/view types), returning a
:class:`Containment` that carries λ in the form MatchJoin consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple, Union

from repro.core.view_match import ViewMatch, view_match_simulation
from repro.graph.pattern import BoundedPattern, Pattern
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition

PNode = Hashable
PEdge = Tuple[PNode, PNode]
#: λ entries: (view name, view edge)
LambdaRef = Tuple[str, PEdge]

Views = Union[ViewSet, Iterable[ViewDefinition]]


@dataclass(frozen=True)
class Containment:
    """The outcome of a containment check, λ mapping included.

    Attributes
    ----------
    holds:
        Whether ``Q ⊑ V``.
    mapping:
        λ: ``{pattern edge: ((view name, view edge), ...)}``.  Complete
        (covers all of ``Ep``) exactly when ``holds``.
    uncovered:
        Pattern edges no view match covers (empty when ``holds``).
    view_names:
        Views contributing at least one λ entry, in first-use order.
    """

    holds: bool
    mapping: Dict[PEdge, Tuple[LambdaRef, ...]]
    uncovered: FrozenSet[PEdge]
    view_names: Tuple[str, ...] = field(default=())

    def __bool__(self) -> bool:
        return self.holds

    def views_used(self) -> Tuple[str, ...]:
        """Names of the views λ draws from, in first-use order -- the
        ``V'`` whose extensions MatchJoin must read (the paper reports
        this as "#views used", Exp-1)."""
        return self.view_names


def _normalize(views: Views) -> List[ViewDefinition]:
    if isinstance(views, ViewSet):
        return views.definitions()
    return list(views)


def _view_match_fn(query: Pattern, definitions: List[ViewDefinition]):
    """Pick the simulation or bounded view-match routine.

    Mixed settings (bounded query with plain views or vice versa) go
    through the bounded machinery, where plain edges mean bound 1.
    """
    if isinstance(query, BoundedPattern) or any(d.is_bounded for d in definitions):
        from repro.core.bounded.bview_match import view_match_bounded

        return view_match_bounded
    return view_match_simulation


def merge_view_matches(
    query: Pattern, matches: Iterable[ViewMatch]
) -> Containment:
    """Assemble a :class:`Containment` from per-view matches
    (the union step of algorithm ``contain``)."""
    mapping: Dict[PEdge, List[LambdaRef]] = {}
    order: List[str] = []
    for view_match in matches:
        used = False
        for edge, view_edges in view_match.edge_cover.items():
            bucket = mapping.setdefault(edge, [])
            for view_edge in view_edges:
                bucket.append((view_match.view_name, view_edge))
                used = True
        if used and view_match.view_name not in order:
            order.append(view_match.view_name)
    edge_set = query.edge_set()
    uncovered = frozenset(edge_set - set(mapping))
    frozen = {edge: tuple(refs) for edge, refs in mapping.items() if edge in edge_set}
    return Containment(
        holds=not uncovered,
        mapping=frozen,
        uncovered=uncovered,
        view_names=tuple(order),
    )


def contains(query: Pattern, views: Views) -> Containment:
    """Decide ``Q ⊑ V`` and compute λ (algorithms contain / Bcontain).

    Runs in ``O(card(V)|Q|^2 + |V|^2 + |Q||V|)`` for simulation patterns
    (Theorem 3) and ``O(|Qb|^2 |V|)`` for bounded ones (Theorem 10(1)):
    one view-match computation per view plus a union.
    """
    definitions = _normalize(views)
    view_match = _view_match_fn(query, definitions)
    return merge_view_matches(
        query, (view_match(query, definition) for definition in definitions)
    )


def query_contained(sub: Pattern, sup: Pattern) -> bool:
    """Classical query containment ``Q1 ⊑ Q2`` (Corollary 4).

    The special case of pattern containment where ``V`` holds a single
    view; in quadratic time, in contrast to NP-completeness for
    relational conjunctive queries.
    """
    return contains(sub, [ViewDefinition("__sup__", sup)]).holds


def equivalent(left: Pattern, right: Pattern) -> bool:
    """Mutual containment of two pattern queries."""
    return query_contained(left, right) and query_contained(right, left)
