"""``Bminimal``: minimal bounded containment (Theorem 10(2)).

Same strategy as Fig. 5 with bounded view matches; ``O(|Qb|^2 |V|)``.
The implementation delegates to the generic
:func:`repro.core.minimal.minimal_views`, which dispatches to bounded
view matches whenever the query or any view is bounded -- this wrapper
exists to mirror the paper's algorithm naming and to force the bounded
path for promoted plain inputs.
"""

from __future__ import annotations

from typing import List

from repro.core.bounded.bview_match import view_match_bounded
from repro.core.containment import Containment, Views, _normalize, merge_view_matches
from repro.core.view_match import ViewMatch
from repro.graph.pattern import Pattern


def bounded_minimal_views(query: Pattern, views: Views) -> Containment:
    """A minimally contained subset for a bounded query, with its λ."""
    definitions = _normalize(views)
    edge_set = query.edge_set()

    selected: List[ViewMatch] = []
    covered = set()
    index = {}
    for definition in definitions:
        match = view_match_bounded(query, definition)
        contributes = (match.covered & edge_set) - covered
        if not contributes:
            continue
        selected.append(match)
        for edge in match.covered & edge_set:
            covered.add(edge)
            index.setdefault(edge, set()).add(match.view_name)
        if covered == edge_set:
            break

    if covered != edge_set:
        return merge_view_matches(query, selected)

    kept: List[ViewMatch] = []
    for match in selected:
        removable = all(len(index[edge]) > 1 for edge in match.covered & edge_set)
        if removable:
            for edge in match.covered & edge_set:
                index[edge].discard(match.view_name)
        else:
            kept.append(match)
    return merge_view_matches(query, kept)
