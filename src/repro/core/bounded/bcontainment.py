"""``Bcontain``: bounded pattern containment (Theorem 10(1)).

Identical to algorithm ``contain`` except view matches are computed
over the weighted query graph (see
:mod:`repro.core.bounded.bview_match`), giving ``O(|Qb|^2 |V|)``.
"""

from __future__ import annotations

from repro.core.bounded.bview_match import view_match_bounded
from repro.core.containment import Containment, Views, _normalize, merge_view_matches
from repro.graph.pattern import Pattern


def bounded_contains(query: Pattern, views: Views) -> Containment:
    """Decide ``Qb ⊑ V`` and compute λ (algorithm Bcontain).

    Plain patterns/views are promoted to bound-1 bounded patterns, so
    this is a strict generalization of :func:`repro.core.containment.contains`.
    """
    definitions = _normalize(views)
    return merge_view_matches(
        query,
        (view_match_bounded(query, definition) for definition in definitions),
    )
