"""``Bminimum``: minimum bounded containment (Theorem 10(3)).

BMMCP inherits NP-completeness / APX-hardness from MMCP (bound-1 is a
special case) and the same greedy ``O(log |Ep|)`` approximation applies;
only the view-match computation changes, for a total of
``O(|Qb|^2 |V| + (|Qb| card(V))^{3/2})``.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.bounded.bview_match import view_match_bounded
from repro.core.containment import Containment, Views, _normalize, merge_view_matches
from repro.core.view_match import ViewMatch
from repro.graph.pattern import Pattern


def bounded_minimum_views(query: Pattern, views: Views) -> Containment:
    """Greedy minimum view selection for a bounded query, with its λ."""
    definitions = _normalize(views)
    edge_set = query.edge_set()
    matches: List[ViewMatch] = [view_match_bounded(query, d) for d in definitions]

    remaining = list(matches)
    selected: List[ViewMatch] = []
    covered: Set = set()
    while covered != edge_set and remaining:
        best = max(remaining, key=lambda m: len((m.covered & edge_set) - covered))
        gain = (best.covered & edge_set) - covered
        if not gain:
            break
        remaining.remove(best)
        selected.append(best)
        covered |= gain
    return merge_view_matches(query, selected)
