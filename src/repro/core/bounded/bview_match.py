"""View matches for bounded patterns (Section VI-B, Proposition 11).

``M^Qb_V`` is computed by evaluating the view ``V`` over ``Qb`` treated
as a *weighted* data graph whose edge weights are the bounds ``fe(e)``
(``*`` = infinite weight for finite-bound checks; still traversable for
``*``-bound checks).  Node-level matching uses the maximum bounded
simulation of ``V`` over that weighted graph, with min-weight path
distances -- sound because matches compose along pattern paths.

Edge-level coverage gets one extra guard (see DESIGN.md, "Bounded
view-match semantics"): pattern edge ``e = (u, u')`` counts as covered
by view edge ``eV = (x, y)`` with bound ``b`` iff ``u ∈ sim(x)``,
``u' ∈ sim(y)`` *and* ``fe(e) <= b`` (with ``* <= *`` only).  Without
the direct-weight guard a view could be credited for pairs it does not
actually materialize (matches of ``e`` at distances between ``b`` and
``fe(e)``), which would make Proposition 11 unsound.  Example 9 and
Fig. 6 of the paper behave identically under this reading.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.conditions import implies
from repro.graph.pattern import BoundedPattern, Pattern, bound_le
from repro.simulation.distance import WeightedPatternDistances
from repro.core.view_match import ViewMatch
from repro.views.view import ViewDefinition

PNode = Hashable
PEdge = Tuple[PNode, PNode]


def _as_bounded(pattern: Pattern) -> BoundedPattern:
    if isinstance(pattern, BoundedPattern):
        return pattern
    return pattern.bounded(default=1)


def bounded_simulation_over_pattern(
    view_pattern: BoundedPattern,
    query: BoundedPattern,
    distances: Optional[WeightedPatternDistances] = None,
) -> Optional[Dict[PNode, Set[PNode]]]:
    """Maximum bounded simulation of a view over the weighted query graph.

    Returns ``{view node: set of query nodes}`` or ``None`` when some
    view node has no match (then ``M^Qb_V`` is empty).
    """
    distances = distances or WeightedPatternDistances(query)
    sim: Dict[PNode, Set[PNode]] = {}
    query_nodes = list(query.nodes())
    for x in view_pattern.nodes():
        view_condition = view_pattern.condition(x)
        candidates = {
            u for u in query_nodes if implies(query.condition(u), view_condition)
        }
        if not candidates:
            return None
        sim[x] = candidates

    changed = True
    while changed:
        changed = False
        for view_edge in view_pattern.edges():
            x, y = view_edge
            bound = view_pattern.bound(view_edge)
            targets = sim[y]
            keep = {
                u
                for u in sim[x]
                if any(distances.within(u, u1, bound) for u1 in targets)
            }
            if keep != sim[x]:
                if not keep:
                    return None
                sim[x] = keep
                changed = True
    return sim


def view_match_bounded(query: Pattern, view: ViewDefinition) -> ViewMatch:
    """Compute ``M^Qb_V`` (as edge coverage plus the λ fragments).

    Both the query and the view pattern are promoted to bounded patterns
    (plain edges get bound 1), so mixed view sets are supported; a plain
    pattern with all-1 bounds yields exactly the simulation view match.
    """
    qb = _as_bounded(query)
    vb = _as_bounded(view.pattern)
    distances = WeightedPatternDistances(qb)
    sim = bounded_simulation_over_pattern(vb, qb, distances)
    edge_cover: Dict[PEdge, List[PEdge]] = {}
    if sim is not None:
        equivalent: Dict[tuple, bool] = {}

        def covers(x: PNode, u: PNode) -> bool:
            # Same condition-equivalence upgrade as the simulation case
            # (see view_match_simulation): extensions store bare pairs,
            # so the endpoints of a covering view edge must carry
            # conditions equivalent to the query's.
            key = (x, u)
            if key not in equivalent:
                equivalent[key] = implies(vb.condition(x), qb.condition(u))
            return equivalent[key]

        for view_edge in vb.edges():
            x, y = view_edge
            view_bound = vb.bound(view_edge)
            sources = sim[x]
            targets = sim[y]
            for u in sources:
                if not covers(x, u):
                    continue
                for u1 in qb.successors(u):
                    if (
                        u1 in targets
                        and covers(y, u1)
                        and bound_le(qb.bound((u, u1)), view_bound)
                    ):
                        edge_cover.setdefault((u, u1), []).append(view_edge)
    return ViewMatch(view.name, edge_cover)
