"""Bounded pattern matching using views (Section VI).

Everything from the simulation setting carries over with the same or
comparable complexity (Theorems 8-10): ``Bcontain`` / ``Bminimal`` /
``Bminimum`` for containment analysis over weighted pattern graphs, and
``BMatchJoin`` for evaluation with the distance index ``I(V)``.
"""

from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.bounded.bmatchjoin import bounded_match_join

__all__ = [
    "bounded_contains",
    "bounded_match_join",
    "bounded_minimal_views",
    "bounded_minimum_views",
]
