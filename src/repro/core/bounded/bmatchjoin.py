"""BMatchJoin: answering bounded pattern queries using views (Section VI-A).

Identical in structure to MatchJoin with two bounded-specific twists:

* merged pairs come from *bounded* view extensions, whose match sets
  contain node pairs connected by paths (not necessarily edges); the
  auxiliary distance index ``I(V)`` maps every materialized pair to its
  actual distance in ``G``;
* a merged pair only enters ``Se`` when its ``I(V)`` distance respects
  the *query* edge's own bound ``fe(e)`` (a covering view edge may have
  a larger bound, so its extension can contain pairs that are too far
  apart for ``e``) -- this is the O(1)-per-pair distance check the
  paper describes for BMatchJoin.

The fixpoint afterwards is the same simulation-condition refinement as
MatchJoin, rank optimization included, for the
``O(|Qb||V(G)| + |V(G)|^2)`` bound of Theorem 9.

Like plain MatchJoin, the optimized engine carries an **id-space fast
path**: when every extension the λ mapping references was materialized
against the same snapshot (equal ``CompactExtension`` tokens), the
merge filters through the *id-space* distance index carried by the
payloads and the fixpoint runs as the shared candidate-level batch
refinement (:func:`repro.core.matchjoin.compact_candidate_fixpoint`) --
no node-key pair is touched until the final decode.  A query edge whose
bound dominates the covering view edge's bound (``fe(e') <= fe(e)``)
skips filtering entirely and shares the stored indexes, which is the
common case for promoted view suites.  Any missing payload, token
mismatch or absent distance table falls back to the node-key path with
identical results.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Set, Tuple, Union

from repro.core.containment import Containment
from repro.core.matchjoin import (
    _extensions_of,
    compact_candidate_fixpoint,
    merge_edge_indexes,
    run_fixpoint,
    shared_snapshot_token,
    union_payload_into,
)
from repro.errors import (
    NotContainedError,
    NotMaterializedError,
    UnsupportedPatternError,
)
from repro.graph.pattern import ANY, BoundedPattern, bound_le
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]
Extensions = Mapping[str, MaterializedView]


def _check_bounded_inputs(
    query: BoundedPattern, containment: Containment, extensions: Extensions
) -> None:
    """Shared precondition checks for every BMatchJoin entry point."""
    if not containment.holds:
        raise NotContainedError(containment.uncovered)
    if query.isolated_nodes():
        raise UnsupportedPatternError(
            "pattern has isolated nodes; evaluate directly with "
            "bounded_match()"
        )
    for edge in query.edges():
        for view_name, _ in containment.mapping.get(edge, ()):
            if view_name not in extensions:
                raise NotMaterializedError(
                    f"extension for view {view_name!r} is required by λ "
                    "but was not provided"
                )


def _needs_distance_filter(
    extension: MaterializedView, view_edge: PEdge, bound
) -> bool:
    """Whether pairs of ``view_edge`` can exceed the query bound.

    No filter is needed when the query edge accepts any path (``*``),
    when the view is a simulation view (its pairs are data edges --
    distance exactly 1, and bounds are >= 1 by construction), or when
    the covering view edge's own bound is dominated by the query bound
    (every stored pair is within it a fortiori).
    """
    if bound is ANY:
        return False
    pattern = extension.definition.pattern
    if not isinstance(pattern, BoundedPattern):
        return False
    return not bound_le(pattern.bound(view_edge), bound)


def merge_initial_sets_bounded(
    query: BoundedPattern,
    containment: Containment,
    extensions: Extensions,
) -> Dict[PEdge, Set[NodePair]]:
    """Union the λ-image match sets, filtered through ``I(V)``."""
    _check_bounded_inputs(query, containment, extensions)
    initial: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        bound = query.bound(edge)
        merged: Set[NodePair] = set()
        for view_name, view_edge in containment.mapping.get(edge, ()):
            extension = extensions[view_name]
            pairs = extension.pairs_of(view_edge)
            if not _needs_distance_filter(extension, view_edge, bound):
                merged |= pairs
            else:
                merged.update(
                    pair for pair in pairs if extension.distance_of(pair) <= bound
                )
        initial[edge] = merged
    return initial


# ----------------------------------------------------------------------
# Snapshot fast path: id-space merge + the shared candidate fixpoint
# ----------------------------------------------------------------------
def _compact_bounded_match_join(
    query: BoundedPattern, containment: Containment, extensions: Extensions
) -> Optional[MatchResult]:
    """Run BMatchJoin in snapshot id space when the extensions allow it.

    Engagement rule: every extension λ references must carry a
    :class:`~repro.views.view.CompactExtension` from the *same*
    snapshot (equal tokens), and every reference that needs bound
    filtering must carry an id-space distance table.  Returns ``None``
    to signal "fall back to the node-key path"; otherwise the finished
    decoded :class:`MatchResult`, identical to the fallback's.
    """
    def ref_has_needed_distances(edge, extension, view_edge, payload):
        return (
            not _needs_distance_filter(extension, view_edge, query.bound(edge))
            or payload.distances is not None
        )

    if (
        shared_snapshot_token(
            query, containment, extensions, ref_check=ref_has_needed_distances
        )
        is None
    ):
        return None

    # --- merge (Fig. 2 lines 1-4) with O(1)-per-pair bound checks -----
    nodes = None
    by_source: Dict[PEdge, Dict[int, Set[int]]] = {}
    by_target: Dict[PEdge, Dict[int, Set[int]]] = {}
    # Edges whose merged index is one stored, unfiltered extension
    # index: the stored node-key pair set is reusable wholesale.
    stored_pairs: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        bound = query.bound(edge)
        refs = containment.mapping.get(edge, ())
        filtered = [
            _needs_distance_filter(extensions[name], view_edge, bound)
            for name, view_edge in refs
        ]
        if not any(filtered):
            # Every λ image adopts its pairs unfiltered: identical to
            # the plain MatchJoin merge, helpers shared.
            source_index, target_index, edge_nodes, stored = (
                merge_edge_indexes(refs, extensions)
            )
            if edge_nodes is not None:
                nodes = edge_nodes
            if stored is not None:
                stored_pairs[edge] = stored
        else:
            source_index = {}
            target_index = {}
            for (view_name, view_edge), needs_filter in zip(refs, filtered):
                payload = extensions[view_name].compact
                nodes = payload.nodes
                if not needs_filter:
                    union_payload_into(
                        source_index, target_index, payload, view_edge
                    )
                    continue
                distance_of = payload.distances.__getitem__
                for v, targets in payload.by_source[view_edge].items():
                    for w in targets:
                        if distance_of((v, w)) > bound:
                            continue
                        current = source_index.get(v)
                        if current is None:
                            source_index[v] = {w}
                        else:
                            current.add(w)
                        current = target_index.get(w)
                        if current is None:
                            target_index[w] = {v}
                        else:
                            current.add(v)
        if not source_index:
            return MatchResult.empty()
        by_source[edge] = source_index
        by_target[edge] = target_index

    return compact_candidate_fixpoint(query, by_source, by_target, stored_pairs, nodes)


def bounded_match_join(
    query: BoundedPattern,
    containment: Containment,
    extensions: Union[Extensions, ViewSet],
    optimized: bool = True,
) -> MatchResult:
    """Evaluate ``Qb`` from bounded view extensions only (BMatchJoin).

    Mirrors :func:`repro.core.matchjoin.match_join`; see there for the
    parameter contract.  ``extensions`` must come from *bounded* view
    definitions so that the distance index is present (simulation views
    promoted to bound-1 edges also work: their pairs are edges, distance
    1).

    When every referenced extension was materialized against the same
    snapshot (a frozen :class:`~repro.graph.compact.CompactGraph` or a
    :class:`~repro.shard.sharded.ShardedGraph`), the optimized engine
    runs entirely in the snapshot's integer-id space, bound-filtering
    through the payloads' id-space distance index (see
    :func:`_compact_bounded_match_join`); the result is identical
    either way.
    """
    if not isinstance(query, BoundedPattern):
        raise TypeError(
            "bounded_match_join expects a BoundedPattern; use match_join "
            "for plain patterns"
        )
    resolved = _extensions_of(extensions)
    _check_bounded_inputs(query, containment, resolved)
    if optimized:
        fast = _compact_bounded_match_join(query, containment, resolved)
        if fast is not None:
            return fast
    initial = merge_initial_sets_bounded(query, containment, resolved)
    result = run_fixpoint(query, initial, optimized=optimized)
    return result if result is not None else MatchResult.empty()
