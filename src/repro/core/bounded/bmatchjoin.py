"""BMatchJoin: answering bounded pattern queries using views (Section VI-A).

Identical in structure to MatchJoin with two bounded-specific twists:

* merged pairs come from *bounded* view extensions, whose match sets
  contain node pairs connected by paths (not necessarily edges); the
  auxiliary distance index ``I(V)`` maps every materialized pair to its
  actual distance in ``G``;
* a merged pair only enters ``Se`` when its ``I(V)`` distance respects
  the *query* edge's own bound ``fe(e)`` (a covering view edge may have
  a larger bound, so its extension can contain pairs that are too far
  apart for ``e``) -- this is the O(1)-per-pair distance check the
  paper describes for BMatchJoin.

The fixpoint afterwards is the same simulation-condition refinement as
MatchJoin, rank optimization included, for the
``O(|Qb||V(G)| + |V(G)|^2)`` bound of Theorem 9.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Set, Tuple, Union

from repro.core.containment import Containment
from repro.core.matchjoin import _extensions_of, run_fixpoint
from repro.errors import (
    NotContainedError,
    NotMaterializedError,
    UnsupportedPatternError,
)
from repro.graph.pattern import ANY, BoundedPattern
from repro.simulation.result import MatchResult
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]
Extensions = Mapping[str, MaterializedView]


def merge_initial_sets_bounded(
    query: BoundedPattern,
    containment: Containment,
    extensions: Extensions,
) -> Dict[PEdge, Set[NodePair]]:
    """Union the λ-image match sets, filtered through ``I(V)``."""
    if not containment.holds:
        raise NotContainedError(containment.uncovered)
    if query.isolated_nodes():
        raise UnsupportedPatternError(
            "pattern has isolated nodes; evaluate directly with "
            "bounded_match()"
        )
    initial: Dict[PEdge, Set[NodePair]] = {}
    for edge in query.edges():
        bound = query.bound(edge)
        merged: Set[NodePair] = set()
        for view_name, view_edge in containment.mapping.get(edge, ()):
            if view_name not in extensions:
                raise NotMaterializedError(
                    f"extension for view {view_name!r} is required by λ "
                    "but was not provided"
                )
            extension = extensions[view_name]
            pairs = extension.pairs_of(view_edge)
            if bound is ANY:
                merged |= pairs
            else:
                merged.update(
                    pair for pair in pairs if extension.distance_of(pair) <= bound
                )
        initial[edge] = merged
    return initial


def bounded_match_join(
    query: BoundedPattern,
    containment: Containment,
    extensions: Union[Extensions, ViewSet],
    optimized: bool = True,
) -> MatchResult:
    """Evaluate ``Qb`` from bounded view extensions only (BMatchJoin).

    Mirrors :func:`repro.core.matchjoin.match_join`; see there for the
    parameter contract.  ``extensions`` must come from *bounded* view
    definitions so that the distance index is present (simulation views
    promoted to bound-1 edges also work: their pairs are edges, distance
    1).
    """
    if not isinstance(query, BoundedPattern):
        raise TypeError(
            "bounded_match_join expects a BoundedPattern; use match_join "
            "for plain patterns"
        )
    initial = merge_initial_sets_bounded(
        query, containment, _extensions_of(extensions)
    )
    result = run_fixpoint(query, initial, optimized=optimized)
    return result if result is not None else MatchResult.empty()
