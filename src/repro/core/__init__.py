"""The paper's primary contribution: answering pattern queries using views.

* :mod:`~repro.core.view_match` / :mod:`~repro.core.bounded.bview_match`
  -- view matches ``M^Qs_V`` and ``M^Qb_V`` (Propositions 7 and 11).
* :mod:`~repro.core.containment` -- ``contain`` and the λ mapping
  (Theorem 3); :mod:`~repro.core.minimal` (Theorem 5, Fig. 5);
  :mod:`~repro.core.minimum` (Theorem 6, greedy set-cover).
* :mod:`~repro.core.matchjoin` -- MatchJoin (Fig. 2) with the SCC-rank
  bottom-up optimization, and BMatchJoin in
  :mod:`~repro.core.bounded.bmatchjoin`.
* :mod:`~repro.core.answer` -- the end-to-end pipeline.
* :mod:`~repro.core.minimization` and :mod:`~repro.core.rewriting` --
  applications/extensions (Corollary 4, Section VIII future work).
"""

from repro.core.answer import Answer, answer_with_views
from repro.core.bounded import (
    bounded_contains,
    bounded_match_join,
    bounded_minimal_views,
    bounded_minimum_views,
)
from repro.core.containment import Containment, contains, query_contained
from repro.core.matchjoin import match_join
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views

__all__ = [
    "Answer",
    "Containment",
    "answer_with_views",
    "bounded_contains",
    "bounded_match_join",
    "bounded_minimal_views",
    "bounded_minimum_views",
    "contains",
    "match_join",
    "minimal_views",
    "minimum_views",
    "query_contained",
]
