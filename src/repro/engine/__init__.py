"""The engine layer: planned, cached, parallel view-based answering.

Composes the paper's algorithms (containment, view selection,
MatchJoin) into a deployable subsystem:

* :class:`QueryEngine` -- owns a view catalog, plans and answers
  queries, batches work across processes, follows maintenance updates;
* :class:`QueryPlan` / :class:`ExecutionStats` -- inspectable planner
  output and per-query telemetry;
* :class:`CostModel` / :class:`CandidateCost` -- the calibrated cost
  model the adaptive planner prices candidates with;
* :class:`WorkloadAdvisor` -- workload-driven auto-materialization
  under a byte budget;
* :class:`LRUCache` / :class:`CacheStats` -- the caching primitives;
* :func:`pattern_key` -- the structural query fingerprint the caches
  key on.
"""

from repro.engine.advisor import AdvisorReport, ViewScore, WorkloadAdvisor
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.cost import CandidateCost, CostModel
from repro.engine.engine import QueryEngine
from repro.engine.executor import (
    EXECUTORS,
    EvaluationSpec,
    ShipStats,
    evaluate_spec,
    run_specs,
)
from repro.engine.plan import (
    DIRECT,
    HYBRID,
    MATCHJOIN,
    PLANNERS,
    ExecutionStats,
    QueryPlan,
    pattern_key,
)

__all__ = [
    "AdvisorReport",
    "CacheStats",
    "CandidateCost",
    "CostModel",
    "DIRECT",
    "EXECUTORS",
    "EvaluationSpec",
    "ExecutionStats",
    "HYBRID",
    "LRUCache",
    "MATCHJOIN",
    "PLANNERS",
    "QueryEngine",
    "QueryPlan",
    "ShipStats",
    "ViewScore",
    "WorkloadAdvisor",
    "evaluate_spec",
    "pattern_key",
    "run_specs",
]
