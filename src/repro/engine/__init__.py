"""The engine layer: planned, cached, parallel view-based answering.

Composes the paper's algorithms (containment, view selection,
MatchJoin) into a deployable subsystem:

* :class:`QueryEngine` -- owns a view catalog, plans and answers
  queries, batches work across processes, follows maintenance updates;
* :class:`QueryPlan` / :class:`ExecutionStats` -- inspectable planner
  output and per-query telemetry;
* :class:`LRUCache` / :class:`CacheStats` -- the caching primitives;
* :func:`pattern_key` -- the structural query fingerprint the caches
  key on.
"""

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.engine import QueryEngine
from repro.engine.executor import (
    EXECUTORS,
    EvaluationSpec,
    ShipStats,
    evaluate_spec,
    run_specs,
)
from repro.engine.plan import ExecutionStats, QueryPlan, pattern_key

__all__ = [
    "CacheStats",
    "EXECUTORS",
    "EvaluationSpec",
    "ExecutionStats",
    "LRUCache",
    "QueryEngine",
    "QueryPlan",
    "ShipStats",
    "evaluate_spec",
    "pattern_key",
    "run_specs",
]
