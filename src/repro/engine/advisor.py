"""Workload-driven auto-materialization under a byte budget.

The paper's deployment argument (Section VII-B) is an economics claim:
materialized views answering the hot workload cost only 4-15% of
``|G|``, so a deployment should spend *that* budget on the views the
workload actually reads.  "One issue is to decide what views to cache
such that a set of frequently used pattern queries can be answered by
using the views" (Section VIII) -- :class:`WorkloadAdvisor` closes the
loop at runtime instead of ahead of time:

* **signal** -- the engine's plan log.  Every delivered answer carries
  the views its plan read and (for adaptive plans) the priced
  candidate table, so the advisor knows both how *often* a view is
  wanted and how many estimated seconds it saves over direct
  evaluation each time.
* **score** -- ``(benefit x frequency) / (bytes + maintenance cost)``:
  benefit per answer from the cost model's candidate estimates,
  frequency from plan-log hits, size from real flat-buffer byte
  accounting when available (PR 7's ``repro stats`` memory machinery)
  and a uniform bytes-per-unit estimate otherwise, maintenance cost
  from the attached tracker's :class:`~repro.views.maintenance.ViewStats`
  via :func:`~repro.views.selection.maintenance_cost`.
* **act** -- :meth:`tick` materializes the best-scoring views that fit
  the budget and evicts the rest.  The budget is enforced against
  *measured* bytes after every materialization, so a tick never ends
  over budget even when the pre-materialization size estimate was low.
  Eviction is safe mid-workload: ``drop_extension`` bumps the view's
  version stamp (stranding cached answers keyed on it) and in-flight
  evaluations hold their own point-in-time extensions copy.

Wired in three places: ``QueryEngine(auto_materialize=...)`` ticks
every N delivered answers, :class:`~repro.serve.server.QueryServer`
runs periodic epoch-safe ticks on its maintenance thread, and
``repro advise`` reports (and optionally applies) the scores offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.cost import BYTES_PER_UNIT, EST_MISSING_FRACTION
from repro.engine.plan import DIRECT, HYBRID, MATCHJOIN
from repro.views.selection import selection_stats

#: Default budget: the top of the paper's measured 4-15% |G| range.
DEFAULT_BUDGET_FRACTION = 0.15


@dataclass
class ViewScore:
    """One view's advisor-eye economics at scoring time."""

    name: str
    hits: int
    benefit: float
    bytes: int
    maintenance_cost: float
    materialized: bool
    score: float
    action: str = "keep"  # keep | materialize | evict | none

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "benefit_seconds": self.benefit,
            "bytes": self.bytes,
            "maintenance_cost": self.maintenance_cost,
            "materialized": self.materialized,
            "score": self.score,
            "action": self.action,
        }


@dataclass
class AdvisorReport:
    """What one :meth:`WorkloadAdvisor.advise` / :meth:`tick` decided.

    ``used_bytes`` is the measured post-action footprint of every
    materialized extension; ``tick() `` guarantees
    ``used_bytes <= budget_bytes`` on return.
    """

    budget_bytes: int
    graph_bytes: int
    used_bytes: int
    scores: List[ViewScore] = field(default_factory=list)
    materialized: List[str] = field(default_factory=list)
    evicted: List[str] = field(default_factory=list)
    applied: bool = False

    @property
    def budget_fraction_used(self) -> float:
        return self.used_bytes / self.budget_bytes if self.budget_bytes else 0.0

    def to_dict(self) -> Dict:
        return {
            "budget_bytes": self.budget_bytes,
            "graph_bytes": self.graph_bytes,
            "used_bytes": self.used_bytes,
            "budget_fraction_used": self.budget_fraction_used,
            "materialized": list(self.materialized),
            "evicted": list(self.evicted),
            "applied": self.applied,
            "scores": [score.to_dict() for score in self.scores],
        }


class WorkloadAdvisor:
    """Score, materialize and evict views from observed workload value.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.QueryEngine` whose plan log,
        view catalog and cost model drive the decisions.  Requires a
        data graph (there is nothing to materialize from otherwise).
    budget_fraction / budget_bytes:
        The extension-cache byte budget: a fraction of the graph
        segment's measured bytes (default 15%, the paper's upper
        bound), or an absolute byte count overriding the fraction.
    interval:
        :meth:`maybe_tick` (called by the engine once per delivered
        answer) runs a full :meth:`tick` every ``interval`` answers.
    min_hits:
        Views read by fewer than this many logged answers are never
        auto-materialized (1 = any observed use qualifies).
    """

    def __init__(
        self,
        engine,
        budget_fraction: float = DEFAULT_BUDGET_FRACTION,
        budget_bytes: Optional[int] = None,
        interval: int = 32,
        min_hits: int = 1,
    ) -> None:
        if engine.graph is None:
            raise ValueError("WorkloadAdvisor requires an engine with a graph")
        if budget_fraction < 0:
            raise ValueError(f"budget_fraction must be >= 0, got {budget_fraction}")
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self._engine = engine
        self._budget_fraction = budget_fraction
        self._budget_bytes = budget_bytes
        self._interval = interval
        self._min_hits = min_hits
        self._deliveries = 0
        self._ticks = 0
        self._ticking = False
        self.last_report: Optional[AdvisorReport] = None

    @property
    def ticks(self) -> int:
        """How many times :meth:`tick` has run."""
        return self._ticks

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------
    def graph_bytes(self) -> int:
        """The graph segment's measured bytes (flat-buffer snapshots),
        or a uniform bytes-per-unit estimate for dict backends."""
        snapshot = self._engine.snapshot()
        store = getattr(snapshot, "flat_store", None)
        if store is not None:
            return int(store.total_bytes)
        return int(self._engine.graph_units() * BYTES_PER_UNIT)

    def view_bytes(self, name: str, graph_bytes: Optional[int] = None) -> int:
        """One view's extension footprint: measured flat-pack bytes
        when available, size-based estimate otherwise; for a view not
        yet materialized, the cost model's missing-size estimate."""
        views = self._engine.views
        if views.is_materialized(name):
            extension = views.extension(name)
            compact = getattr(extension, "compact", None)
            store = getattr(compact, "store", None)
            if store is not None:
                return int(store.total_bytes)
            return int(extension.size * BYTES_PER_UNIT)
        if graph_bytes is None:
            graph_bytes = self.graph_bytes()
        return int(EST_MISSING_FRACTION * graph_bytes)

    def used_bytes(self) -> int:
        """Measured bytes of every materialized extension right now."""
        views = self._engine.views
        return sum(
            self.view_bytes(name)
            for name in views.names()
            if views.is_materialized(name)
        )

    def budget_bytes(self) -> int:
        """The resolved byte budget (absolute override or fraction of
        the measured graph bytes)."""
        if self._budget_bytes is not None:
            return int(self._budget_bytes)
        return int(self._budget_fraction * self.graph_bytes())

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def scores(self) -> List[ViewScore]:
        """Every defined view scored by
        ``(benefit x frequency) / (bytes + maintenance cost)``,
        best first."""
        engine = self._engine
        records = engine.plan_log()
        stats = selection_stats(
            engine.views, maintenance=engine.maintenance, plan_log=records
        )
        graph_bytes = self.graph_bytes()
        graph_units = engine.graph_units()
        model = engine.cost_model
        benefit: Dict[str, float] = {}
        # Demand is *priced* demand, not reads: an adaptive plan that
        # chose direct because the view was unmaterialized still counts
        # as a hit for that view -- otherwise nothing would ever get
        # materialized (direct plans read no views).
        demand: Dict[str, int] = {}
        for record in records:
            per_view = self._record_benefit(record, model, graph_units)
            for name, gain in per_view.items():
                benefit[name] = benefit.get(name, 0.0) + gain
                demand[name] = demand.get(name, 0) + 1
            for name in getattr(record, "views_used", ()):
                if name not in per_view:
                    demand[name] = demand.get(name, 0) + 1
        out: List[ViewScore] = []
        for name, row in stats.items():
            size_bytes = self.view_bytes(name, graph_bytes)
            gain = benefit.get(name, 0.0)
            maintenance = float(row["maintenance_cost"])
            # Maintenance cost is a unitless work proxy; scale it to
            # bytes-of-burden so the denominator has one unit.
            denominator = size_bytes + maintenance * BYTES_PER_UNIT + 1.0
            out.append(
                ViewScore(
                    name=name,
                    hits=max(int(row["hits"]), demand.get(name, 0)),
                    benefit=gain,
                    bytes=size_bytes,
                    maintenance_cost=maintenance,
                    materialized=bool(row["materialized"]),
                    score=gain / denominator,
                )
            )
        out.sort(key=lambda s: (-s.score, s.name))
        return out

    @staticmethod
    def _record_benefit(record, model, graph_units) -> Dict[str, float]:
        """Estimated seconds one answer saved (or would save) thanks to
        each view, from the record's priced candidates -- falling back
        to cost-model estimates for fixed-planner records."""
        direct_estimate = None
        best = None
        for candidate in getattr(record, "candidates", ()):
            if candidate.strategy == DIRECT:
                direct_estimate = candidate.estimate
            elif candidate.views and (
                best is None or candidate.warm_estimate < best.warm_estimate
            ):
                best = candidate
        if direct_estimate is None:
            direct_estimate = model.estimate(DIRECT, record.bounded, graph_units)
        if best is not None:
            gain = max(direct_estimate - best.warm_estimate, 0.0)
            share = gain / len(best.views)
            return {name: share for name in best.views}
        # Fixed-planner record: estimate the strategy's warm cost from
        # the measured extension sizes it actually read.
        if record.strategy in (MATCHJOIN, HYBRID) and record.views_used:
            units = float(sum(record.view_sizes.values()))
            warm = model.estimate(record.strategy, record.bounded, units)
            gain = max(direct_estimate - warm, 0.0)
            share = gain / len(record.views_used)
            return {name: share for name in record.views_used}
        return {}

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def advise(self) -> AdvisorReport:
        """Score every view and plan actions -- without applying them."""
        return self._plan(apply=False)

    def tick(self) -> AdvisorReport:
        """Score, then materialize the winners and evict the losers,
        never ending over budget (measured bytes)."""
        return self._plan(apply=True)

    def maybe_tick(self) -> Optional[AdvisorReport]:
        """Engine hook: run a tick every ``interval`` delivered
        answers.  Re-entrancy safe (a tick in progress suppresses
        nested ticks)."""
        if self._ticking:
            return None
        self._deliveries += 1
        if self._deliveries < self._interval:
            return None
        self._deliveries = 0
        return self.tick()

    def _plan(self, apply: bool) -> AdvisorReport:
        engine = self._engine
        graph_bytes = self.graph_bytes()
        budget = self.budget_bytes()
        scores = self.scores()
        # Greedy knapsack by score: the best-scoring hot views that fit.
        wanted: List[str] = []
        planned_bytes = 0
        for entry in scores:
            if entry.score <= 0.0 or entry.hits < self._min_hits:
                continue
            if planned_bytes + entry.bytes > budget:
                continue
            wanted.append(entry.name)
            planned_bytes += entry.bytes
        by_name = {entry.name: entry for entry in scores}
        to_evict = [
            entry.name
            for entry in scores
            if entry.materialized and entry.name not in wanted
        ]
        to_materialize = [
            name for name in wanted if not by_name[name].materialized
        ]
        for entry in scores:
            if entry.name in to_evict:
                entry.action = "evict"
            elif entry.name in to_materialize:
                entry.action = "materialize"
            elif entry.materialized:
                entry.action = "keep"
            else:
                entry.action = "none"
        report = AdvisorReport(
            budget_bytes=budget,
            graph_bytes=graph_bytes,
            used_bytes=self.used_bytes(),
            scores=scores,
            materialized=list(to_materialize),
            evicted=list(to_evict),
            applied=apply,
        )
        if not apply:
            self.last_report = report
            return report
        self._ticking = True
        try:
            evicted = engine.evict_extensions(to_evict)
            materialized: List[str] = []
            for name in to_materialize:
                engine.materialize_views([name])
                materialized.append(name)
                # Enforce the budget against *measured* bytes: the
                # pre-materialization estimate may have been low.
                over = self.used_bytes() - budget
                if over > 0:
                    victims = sorted(
                        (
                            entry
                            for entry in scores
                            if engine.views.is_materialized(entry.name)
                        ),
                        key=lambda entry: entry.score,
                    )
                    for victim in victims:
                        if self.used_bytes() <= budget:
                            break
                        engine.evict_extensions([victim.name])
                        if victim.name in materialized:
                            # Materialized-then-evicted within this
                            # tick: a net no-op (the estimate was low
                            # and the real extension does not fit), not
                            # an eviction to report.
                            materialized.remove(victim.name)
                            victim.action = "none"
                        else:
                            evicted.append(victim.name)
                            victim.action = "evict"
            self._ticks += 1
        finally:
            self._ticking = False
        report.materialized = materialized
        report.evicted = evicted
        report.used_bytes = self.used_bytes()
        self.last_report = report
        return report

    def __repr__(self) -> str:
        return (
            f"WorkloadAdvisor(budget={self.budget_bytes()}B, "
            f"ticks={self._ticks}, interval={self._interval})"
        )
