"""Caching primitives for the query engine.

Two caches back the engine (both instances of :class:`LRUCache`):

* the **containment-decision cache** memoizes ``contain`` / ``minimal``
  / ``minimum`` outcomes per (query fingerprint, selection policy,
  ``definitions_version``) -- the paper's Theorem 3 check is quadratic
  in ``|Q|`` and linear in ``card(V)``, so a deployment answering the
  same query shapes repeatedly should pay it once, and extension
  refreshes never re-trigger it;
* the **answer cache** memoizes full :class:`MatchResult` objects keyed
  by the **per-view version vector** of exactly the views the plan
  reads (:meth:`ViewSet.version_vector`) -- or the graph's mutation
  version for direct plans.

A maintenance update (Section I: "incremental methods ... maintain
cached pattern views") bumps only the stamps of the views it actually
changed, so the stale entries it strands -- unreachable by
construction, aging out of the LRU -- are exactly the answers that
depended on a changed view; everything else keeps hitting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy for reports and the CLI."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency and records a hit or miss; ``put``
    inserts/overwrites and evicts the oldest entry when over capacity.
    ``maxsize <= 0`` disables caching entirely (every ``get`` misses),
    which keeps the engine code free of conditionals.
    """

    __slots__ = ("_maxsize", "_data", "stats")

    def __init__(self, maxsize: int = 128) -> None:
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    @property
    def maxsize(self) -> int:
        """Capacity; ``<= 0`` means caching is disabled."""
        return self._maxsize

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts hit/miss."""
        if key in self._data:
            self._data.move_to_end(key)
            self.stats.hits += 1
            return self._data[key]
        self.stats.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting the LRU entry if needed."""
        if self._maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return f"LRUCache(size={len(self._data)}/{self._maxsize})"
