"""The calibrated cost model behind the adaptive planner (ROADMAP item 3).

The paper's experiments (Fig. 8) show that no single evaluation
strategy dominates: MatchJoin from a small view subset beats direct
``Match`` by a wide margin when ``Q ⊑ V`` and the extensions are small
(Sections IV-V), the greedy-minimum subset beats minimal when views
overlap heavily (Theorem 6 / Fig. 8h), and partial/hybrid rewriting
wins when most -- but not all -- of the query is covered
(Section VIII).  Choosing *per query* needs cost estimates, and the
engine already measures everything an estimate needs: per-view
extension sizes ride on every :class:`~repro.engine.plan.PlanChoiceRecord`
and ``record.elapsed`` is the observed evaluation wall time.

:class:`CostModel` turns those observations into per-strategy
*seconds-per-unit* rates:

* ``units`` abstract the work a strategy touches -- the label-index
  bucket volume the query's seeding would read (selectivity-aware,
  degrading to ``|G|`` without a label index) for direct evaluation,
  the summed extension sizes of the chosen subset for MatchJoin, and
  ``covered extension units + uncovered-fraction x direct units`` for
  hybrid rewriting;
* rates are calibrated online with an EWMA per ``(strategy, bounded)``
  shape (bounded evaluation pays the Section VI distance machinery, so
  it calibrates separately), seeded with cold-start defaults whose
  *ordering* encodes the paper's qualitative result: per unit touched,
  MatchJoin < hybrid < direct;
* an unmaterialized view costs extra: the planner charges a one-shot
  materialization penalty (approximately one direct evaluation of the
  view over ``G``), which is exactly what makes the
  :class:`~repro.engine.advisor.WorkloadAdvisor`'s auto-materialization
  pay off -- once a hot view is materialized the penalty disappears
  and MatchJoin starts winning the cost race.

Thread safety: the engine only touches its model under the engine
lock, so the model itself stays lock-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Cold-start seconds-per-unit rates.  The absolute values are rough
#: (one fixpoint step over a pure-Python adjacency row); the *ordering*
#: is the load-bearing part: per unit, answering from extensions is
#: cheaper than hybrid rewriting is cheaper than direct evaluation.
COLD_RATES: Dict[str, float] = {
    "matchjoin": 2.0e-6,
    "hybrid": 3.5e-6,
    "direct": 8.0e-6,
}

#: Cold-start multiplier for bounded shapes (Section VI pays bounded
#: BFS / distance-cache work on top of the plain fixpoint).
BOUNDED_COLD_FACTOR = 3.0

#: EWMA smoothing for calibration samples (first sample replaces the
#: cold default outright; see :meth:`CostModel.observe`).
EWMA_ALPHA = 0.2

#: Estimated extension size of a not-yet-materialized view, as a
#: fraction of ``|G|`` units.  The paper caches views at 4-15% of
#: ``|G|`` (Section VII-B); planning before materialization only needs
#: the right order of magnitude.
EST_MISSING_FRACTION = 0.15

#: Fallback bytes-per-unit figure used when no flat-buffer byte
#: accounting is available (dict-backed graphs/extensions).  One unit
#: is one node or one match pair; 28 bytes approximates two pointers
#: plus object overhead amortized over CPython's small-object pools.
#: Using the *same* constant for graph and extension units keeps the
#: advisor's budget fraction equal to the paper's size fraction.
BYTES_PER_UNIT = 28


@dataclass(frozen=True)
class CandidateCost:
    """One strategy the planner priced for a query.

    ``estimate`` is the full predicted cost in seconds, including any
    one-shot materialization penalty for views the candidate would
    first have to materialize; ``warm_estimate`` strips that penalty
    (the steady-state cost once everything the candidate reads is
    materialized -- what the advisor treats as the view's benefit).
    ``units`` is the work volume the rate was applied to, ``rate`` the
    calibrated seconds-per-unit.  ``feasible`` is False when the
    candidate cannot run at all (e.g. MatchJoin with unmaterialized
    views and no graph to materialize from); infeasible candidates are
    kept in the plan for explainability but never win.
    """

    strategy: str
    label: str
    selection: str
    views: Tuple[str, ...]
    units: float
    rate: float
    estimate: float
    warm_estimate: float
    feasible: bool = True
    note: str = ""

    def to_dict(self) -> Dict:
        return {
            "strategy": self.strategy,
            "label": self.label,
            "selection": self.selection,
            "views": list(self.views),
            "units": self.units,
            "rate": self.rate,
            "estimate": self.estimate,
            "warm_estimate": self.warm_estimate,
            "feasible": self.feasible,
            "note": self.note,
        }

    def render(self, chosen: bool = False) -> str:
        """One ``explain()`` line: marker, label, estimate, inputs."""
        marker = "*" if chosen else " "
        extra = f"  views={','.join(self.views)}" if self.views else ""
        note = f"  [{self.note}]" if self.note else ""
        flag = "" if self.feasible else "  (infeasible)"
        return (
            f"{marker} {self.label:<22} est={self.estimate * 1e3:9.3f} ms"
            f"  units={self.units:.0f}{extra}{note}{flag}"
        )


@dataclass
class _Rate:
    value: float
    samples: int = 0


class CostModel:
    """Per-strategy seconds-per-unit rates, calibrated online.

    One instance per engine (injectable for tests / shared calibration
    across engines).  ``observe`` feeds measured evaluations in,
    ``estimate`` prices future ones; both key on ``(strategy,
    bounded)`` so bounded shapes calibrate independently.
    """

    def __init__(self, alpha: float = EWMA_ALPHA) -> None:
        self._alpha = alpha
        self._rates: Dict[Tuple[str, bool], _Rate] = {}

    def rate(self, strategy: str, bounded: bool) -> float:
        """The current seconds-per-unit rate for a shape.

        Calibrated shapes return their observed (EWMA) rate.  A cold
        shape returns its default, *anchored* to the machine: if other
        strategies at the same bounded tier have been observed, the
        cold default is scaled by their mean observed-to-default ratio.
        The cold constants encode the relative ordering (matchjoin <
        hybrid < direct per unit); the anchor transfers the absolute
        magnitude from whatever this host has actually measured, so a
        calibrated strategy is never compared against an uncalibrated
        one on a different scale.
        """
        entry = self._rates.get((strategy, bounded))
        if entry is not None:
            return entry.value
        cold = self._cold(strategy, bounded)
        ratios = [
            observed.value / self._cold(s, b)
            for (s, b), observed in self._rates.items()
            if b == bounded
        ]
        if ratios:
            return cold * (sum(ratios) / len(ratios))
        return cold

    @staticmethod
    def _cold(strategy: str, bounded: bool) -> float:
        cold = COLD_RATES.get(strategy, COLD_RATES["direct"])
        return cold * (BOUNDED_COLD_FACTOR if bounded else 1.0)

    def samples(self, strategy: str, bounded: bool) -> int:
        """How many observations calibrated this shape (0 = cold)."""
        entry = self._rates.get((strategy, bounded))
        return entry.samples if entry is not None else 0

    def observe(
        self, strategy: str, bounded: bool, units: float, elapsed: float
    ) -> None:
        """Fold one measured evaluation into the shape's rate.

        The first sample replaces the cold default outright (defaults
        are order-of-magnitude guesses; one real measurement beats
        them), later samples EWMA in so a single outlier -- a GC pause,
        a cold branch predictor -- cannot wreck a calibrated rate.
        """
        if elapsed <= 0.0:
            return
        sample = elapsed / max(units, 1.0)
        entry = self._rates.get((strategy, bounded))
        if entry is None:
            self._rates[(strategy, bounded)] = _Rate(sample, samples=1)
            return
        entry.value += self._alpha * (sample - entry.value)
        entry.samples += 1

    def estimate(self, strategy: str, bounded: bool, units: float) -> float:
        """Predicted evaluation seconds for ``units`` of work."""
        return self.rate(strategy, bounded) * max(units, 1.0)

    def materialize_penalty(self, bounded: bool, graph_units: float) -> float:
        """One-shot cost of materializing one missing view: roughly one
        direct evaluation of the view pattern over ``G``."""
        return self.estimate("direct", bounded, graph_units)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready calibration state (``repro advise`` shows this)."""
        out: Dict[str, Dict[str, float]] = {}
        for (strategy, bounded), entry in sorted(self._rates.items()):
            key = f"{strategy}{'+bounded' if bounded else ''}"
            out[key] = {"rate": entry.value, "samples": entry.samples}
        return out
