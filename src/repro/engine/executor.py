"""Batch evaluation: serial, thread-pool and process-pool execution.

Simulation fixpoints are CPU-bound pure-Python loops, so true batch
parallelism needs processes (the GIL serializes threads); the thread
executor exists for workloads dominated by very large extension
payloads, where per-process pickling would swamp the speedup, and the
serial executor is the deterministic baseline the others are tested
against.

The process pool ships the shared payload -- the needed view extensions
and (when any plan falls back to direct evaluation) the data graph --
**once per worker** through the pool initializer, instead of once per
task; per-task pickling is then just the query, its λ mapping and the
view names.  Workers evaluate with exactly the same code path as the
serial executor (:func:`evaluate_spec`), so results are identical by
construction and only wall time differs.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.core.containment import Containment
from repro.core.matchjoin import match_join
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.obs import trace
from repro.obs.trace import SpanRecord
from repro.simulation import bounded_match, match
from repro.simulation.result import MatchResult
from repro.views.view import MaterializedView

log = logging.getLogger(__name__)

Extensions = Mapping[str, MaterializedView]

#: Executor kinds accepted by the engine and the CLI.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class EvaluationSpec:
    """A self-contained, picklable description of one evaluation.

    ``kind`` is a plan strategy (``"matchjoin"``, ``"direct"`` or
    ``"hybrid"``); ``needed`` names the extensions MatchJoin / the
    hybrid kernel read; ``bounded`` engages the Section VI machinery.
    The heavyweight inputs (the extensions and the graph) are *not*
    part of the spec -- they are resolved against the worker's shared
    payload at evaluation time.
    """

    kind: str
    query: Pattern
    containment: Optional[Containment]
    needed: Tuple[str, ...]
    bounded: bool
    optimized: bool = True
    #: Coordinator span id to report worker-side spans under (traced
    #: requests only; ``None`` keeps untraced evaluation span-free).
    trace_id: Optional[str] = None


def evaluate_spec(
    spec: EvaluationSpec,
    extensions: Extensions,
    graph: Optional[DataGraph],
) -> MatchResult:
    """Run one spec against the shared payload (the single code path
    used by every executor, in-process or not).

    ``graph`` may be a mutable :class:`DataGraph` or a frozen
    :class:`~repro.graph.compact.CompactGraph` -- the engine ships its
    snapshot, so direct evaluation takes the integer fast path and the
    pickled payload for pool workers is the read-optimized form."""
    if spec.kind == "direct":
        if graph is None:
            raise ValueError("direct evaluation requires a data graph")
        if isinstance(spec.query, BoundedPattern):
            return bounded_match(spec.query, graph)
        return match(spec.query, graph)
    if spec.kind == "hybrid":
        if graph is None:
            raise ValueError("hybrid evaluation requires a data graph")
        from repro.core.rewriting import hybrid_join

        chosen = {name: extensions[name] for name in spec.needed}
        return hybrid_join(
            spec.query, spec.containment, chosen, graph,
            optimized=spec.optimized,
        )
    chosen = {name: extensions[name] for name in spec.needed}
    if spec.bounded:
        query = (
            spec.query
            if isinstance(spec.query, BoundedPattern)
            else spec.query.bounded()
        )
        return bounded_match_join(
            query, spec.containment, chosen, optimized=spec.optimized
        )
    return match_join(
        spec.query, spec.containment, chosen, optimized=spec.optimized
    )


@dataclass(frozen=True)
class ShipStats:
    """What one process-pool batch paid to ship its shared payload.

    ``bytes`` is the serialized payload size, ``seconds`` the wall time
    of the single ``pickle.dumps`` that produced it.  Flat-buffer
    objects (:class:`~repro.graph.flatbuf.SharedCompactGraph`,
    :class:`~repro.views.flatpack.FlatExtension`) pickle to segment
    handles, so for a shared-memory snapshot both figures stay small
    and near-constant in graph size; dict payloads pay the full deep
    copy here.  In-process executors ship nothing and report zeros.
    """

    bytes: int = 0
    seconds: float = 0.0


# ----------------------------------------------------------------------
# Process-pool plumbing (module level so it pickles by reference)
# ----------------------------------------------------------------------
_WORKER_PAYLOAD: Dict[str, object] = {}


def _worker_init(blob: bytes) -> None:
    """Pool initializer: attach the pre-pickled shared payload.

    The payload is serialized **once per batch** by the parent (see
    :func:`run_specs`) and handed to every worker as opaque bytes, so
    the per-worker cost is one ``pickle.loads`` -- which, for
    flat-buffer payloads, just attaches the existing shared-memory
    segments instead of rebuilding dict-of-sets structures.
    """
    extensions, graph = pickle.loads(blob)
    _WORKER_PAYLOAD["extensions"] = extensions
    _WORKER_PAYLOAD["graph"] = graph


TaskResult = Tuple[int, MatchResult, float, int, Optional[SpanRecord]]


def _worker_run(task: Tuple[int, EvaluationSpec]) -> TaskResult:
    """Evaluate one (index, spec) task; returns timing, worker pid and
    -- for traced requests -- the worker-side span record to re-attach
    under the coordinator span named by ``spec.trace_id``."""
    index, spec = task
    if spec.trace_id is None:
        started = perf_counter()
        result = evaluate_spec(
            spec,
            _WORKER_PAYLOAD.get("extensions", {}),  # type: ignore[arg-type]
            _WORKER_PAYLOAD.get("graph"),  # type: ignore[arg-type]
        )
        return index, result, perf_counter() - started, os.getpid(), None
    started = perf_counter()
    with trace.remote_span(
        "evaluate.task", spec.trace_id, index=index, kind=spec.kind, pid=os.getpid()
    ) as worker_span:
        result = evaluate_spec(
            spec,
            _WORKER_PAYLOAD.get("extensions", {}),  # type: ignore[arg-type]
            _WORKER_PAYLOAD.get("graph"),  # type: ignore[arg-type]
        )
    record = worker_span.to_record(spec.trace_id)
    return index, result, perf_counter() - started, os.getpid(), record


def _adopt_records(results: Sequence[TaskResult]) -> None:
    """Re-attach worker-shipped span records under their coordinator
    parents (matched by the id threaded through the spec; a record whose
    parent is no longer on the active span chain is dropped rather than
    mis-attributed)."""
    records = [record for *_, record in results if record is not None]
    if not records:
        return
    by_id: Dict[str, trace.Span] = {}
    node = trace.current_span()
    while node is not None:
        by_id[node.span_id] = node
        node = node.parent
    for record in records:
        target = by_id.get(record.parent_id or "")
        if target is not None:
            target.adopt(record)
        else:
            log.debug(
                "dropping span record %r: parent %s not on active chain",
                record.name,
                record.parent_id,
            )


def run_specs(
    tasks: Sequence[Tuple[int, EvaluationSpec]],
    extensions: Extensions,
    graph: Optional[DataGraph],
    executor: str = "serial",
    workers: Optional[int] = None,
) -> Tuple[List[TaskResult], ShipStats]:
    """Evaluate ``(index, spec)`` tasks.

    Returns ``(results, ship)`` where results are
    ``(index, result, elapsed seconds, pid, span record)`` tuples (in
    completion order for pools, submission order when serial; the span
    record is ``None`` except for traced process-pool tasks, whose
    worker-side records are also adopted under the live coordinator
    span before returning) and ``ship`` is the batch's
    :class:`ShipStats` (zeros unless a process pool ran).

    ``executor`` is one of :data:`EXECUTORS`; pools degrade gracefully
    to serial execution when there is at most one task or one worker.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    max_workers = workers if workers is not None else (os.cpu_count() or 1)
    if executor == "serial" or max_workers <= 1 or len(tasks) <= 1:
        pid = os.getpid()
        out: List[TaskResult] = []
        for index, spec in tasks:
            started = perf_counter()
            with trace.span("evaluate.task", index=index, kind=spec.kind):
                result = evaluate_spec(spec, extensions, graph)
            out.append((index, result, perf_counter() - started, pid, None))
        return out, ShipStats()
    max_workers = min(max_workers, len(tasks))
    if executor == "thread":
        pid = os.getpid()
        # Thread pools do not inherit contextvars: capture the caller's
        # span here and re-enter it inside each worker thread.
        parent = trace.current_span()
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            def run(task: Tuple[int, EvaluationSpec]) -> TaskResult:
                index, spec = task
                started = perf_counter()
                with trace.attach(parent):
                    with trace.span("evaluate.task", index=index, kind=spec.kind):
                        result = evaluate_spec(spec, extensions, graph)
                return index, result, perf_counter() - started, pid, None

            return list(pool.map(run, tasks)), ShipStats()
    # Process pool: ship only the extensions the batch actually needs,
    # serialized exactly once regardless of worker count.
    needed = {name for _, spec in tasks for name in spec.needed}
    payload = {name: extensions[name] for name in needed}
    ship_graph = (
        graph
        if any(spec.kind in ("direct", "hybrid") for _, spec in tasks)
        else None
    )
    started = perf_counter()
    blob = pickle.dumps((payload, ship_graph), pickle.HIGHEST_PROTOCOL)
    ship = ShipStats(bytes=len(blob), seconds=perf_counter() - started)
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_worker_init,
        initargs=(blob,),
    ) as pool:
        results = list(pool.map(_worker_run, tasks))
    _adopt_records(results)
    return results, ship
