"""The QueryEngine: planned, cached, parallel view-based answering.

This is the deployment layer the paper sketches around its algorithms:
"graph pattern matching using views is an effective technique to query
big graphs" presumes a system that (a) decides containment once per
query shape, (b) keeps materialized extensions fresh and answers hot
queries from a cache, and (c) evaluates independent queries
concurrently.  :class:`QueryEngine` owns a
:class:`~repro.views.storage.ViewSet` and provides exactly that:

* :meth:`plan` -- run the containment check / view selection (Theorems
  3, 5, 6) once and return an inspectable :class:`QueryPlan` choosing
  MatchJoin over the views (``Q ⊑ V``) or direct ``Match`` on ``G``;
* :meth:`answer` / :meth:`execute` -- evaluate a plan, consulting an
  LRU answer cache keyed by (query fingerprint, selection, and the
  **per-view version vector** of exactly the views the plan reads --
  or the graph version for direct plans) so a maintenance update only
  strands the answers whose plan actually read a changed view;
* :meth:`answer_batch` -- evaluate many queries via serial, thread or
  process executors (simulation fixpoints are CPU-bound, so the
  process pool is the scaling path);
* :meth:`attach_maintenance` -- follow an
  :class:`~repro.views.maintenance.IncrementalViewSet`; graph updates
  refresh the engine's extensions lazily, importing only the views
  each update batch changed.

The engine freezes its data graph into a
:class:`~repro.graph.compact.CompactGraph` snapshot exactly once and
reuses it everywhere ``G`` is read -- materializing missing extensions,
direct evaluation, and every batch executor (the snapshot ships to
process-pool workers in place of the mutable graph).  Extensions
materialized against the snapshot carry id-space payloads, so MatchJoin
runs its integer fast path end to end.  Maintenance events do **not**
drop this snapshot: the engine consumes them as batches and *refreshes*
it through the graph's edge-op journal
(:meth:`DataGraph.edge_changes_since` /
:meth:`~repro.graph.compact.CompactGraph.refreshed`), re-binding the
refreshed extensions of changed views into the new id space and
re-stamping the untouched ones (zero-cost ``rebound``), so the integer
fast path survives the update stream.

With ``shards=N`` the engine snapshots ``G`` as a
:class:`~repro.shard.sharded.ShardedGraph` instead: the graph is
partitioned once (pluggable strategy), missing extensions materialize
shard-parallel through the engine's executor, and direct evaluation
runs the partial-evaluation matcher -- all behind the same planning,
caching and invalidation machinery, since the composite snapshot token
makes sharded extensions indistinguishable from single-snapshot ones.

Every result carries an :class:`ExecutionStats` on ``MatchResult.stats``
(strategy, timing, cache provenance), so callers can meter the engine
without wrapping it.

**Thread safety.**  All catalog and cache mutation -- planning,
answer/containment cache reads and writes, snapshot refresh, on-demand
materialization and maintenance consumption -- is serialized behind one
reentrant lock, while evaluation itself (the CPU-heavy simulation
fixpoints) runs *outside* the lock against immutable inputs (a frozen
snapshot and a point-in-time copy of the extensions dict).  Answer-cache
keys are computed under the lock at spec-build time, so a maintenance
batch landing mid-evaluation strands the in-flight answer under the
*old* version stamps instead of corrupting the cache.  Concurrent
maintenance must flow through :meth:`apply_delta` (which takes the same
lock); the serving layer (:mod:`repro.serve`) builds its epoch-swap
machinery on exactly this contract via :meth:`checkpoint`.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.answer import _STRATEGIES
from repro.core.containment import Containment
from repro.graph.conditions import AttributeCondition, Label
from repro.engine.cache import LRUCache
from repro.engine.cost import EST_MISSING_FRACTION, CandidateCost, CostModel
from repro.engine.executor import (
    EXECUTORS,
    EvaluationSpec,
    run_specs,
)
from repro.engine.plan import (
    DIRECT,
    FALLBACK_REASONS,
    HYBRID,
    MATCHJOIN,
    PLANNER_ADAPTIVE,
    PLANNER_DIRECT,
    PLANNER_FIXED,
    PLANNER_HYBRID,
    PLANNERS,
    REASON_COST_DIRECT,
    REASON_COST_HYBRID,
    REASON_COST_MATCHJOIN,
    REASON_FORCED,
    REASON_ISOLATED_NODES,
    REASON_NOT_CONTAINED,
    STRATEGY_PREFERENCE,
    ExecutionStats,
    PlanChoiceRecord,
    QueryPlan,
    fingerprint_digest,
    pattern_key,
)
from repro.errors import NotContainedError, NotMaterializedError
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.obs import trace
from repro.obs.metrics import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.simulation.result import MatchResult
from repro.views.maintenance import Delta, DeltaReport, IncrementalViewSet
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView, bind_extension

log = logging.getLogger(__name__)

#: Plan-choice records retained per engine (newest win; ROADMAP item 3
#: consumes these, and the serving protocol exposes them).
PLAN_LOG_CAPACITY = 256


@dataclass(frozen=True)
class EngineCheckpoint:
    """An immutable capture of everything one evaluation epoch needs.

    Produced by :meth:`QueryEngine.checkpoint` under the engine lock:
    the frozen snapshot of ``G``, a point-in-time copy of every
    materialized extension (all views freshened first, so readers never
    materialize), and the version stamps that key answers for this
    state.  The serving layer (:mod:`repro.serve`) wraps one checkpoint
    per epoch; because every field is immutable (or treated as such),
    any number of reader threads can evaluate against it while the
    engine itself moves on to the next epoch.
    """

    snapshot: object
    extensions: Mapping[str, MaterializedView]
    view_versions: Mapping[str, int]
    definitions_version: int
    graph_version: int

    def key_material(self, strategy: str, views_used: Tuple[str, ...]) -> Tuple:
        """The answer-key material of this checkpoint for one plan --
        the same shape :class:`QueryEngine` keys its own cache with, so
        answers computed on a checkpoint stay correct across epochs
        (equal stamps always denote equal extension state)."""
        if strategy == MATCHJOIN:
            return ("V", tuple(self.view_versions[name] for name in views_used))
        if strategy == HYBRID:
            return (
                "H",
                tuple(self.view_versions[name] for name in views_used),
                self.graph_version,
            )
        return ("G", self.graph_version)


class QueryEngine:
    """Answer pattern queries end-to-end against a view catalog.

    Parameters
    ----------
    views:
        The view catalog ``V`` (definitions, plus any extensions already
        materialized).  The engine mutates it only to materialize
        missing extensions and to import maintenance refreshes.
    graph:
        Optional data graph ``G``.  Used to materialize missing
        extensions on demand and as the fallback target for queries not
        contained in the views; when absent, such queries raise
        :class:`NotContainedError` (Theorem 1: containment is
        necessary).
    snapshot_path:
        Boot from a saved snapshot directory (or an already-loaded
        :class:`~repro.graph.snapshot.LoadedSnapshot`) instead of a
        live graph: the mmap-backed graph serves as both ``G`` and the
        engine's frozen snapshot (no freeze, no rebuild), persisted
        view packs become the catalog when ``views`` is omitted, and a
        sharded snapshot switches the engine into shards mode
        automatically.  Mutually exclusive with ``graph``.
    selection:
        Default view-selection policy: ``"all"`` (algorithm
        ``contain``), ``"minimal"`` (Fig. 5, Theorem 5) or
        ``"minimum"`` (greedy set-cover, Theorem 6).
    executor / workers:
        Default batch executor (see :data:`EXECUTORS`) and pool width.
    shared_snapshots:
        Freeze ``G`` into a shared-memory flat-buffer snapshot
        (:class:`~repro.graph.flatbuf.SharedCompactGraph`), so
        extensions materialize flat and the whole serving payload
        pickles to segment handles.  Defaults to ``None`` = "on when
        ``executor='process'``" -- pool workers then attach segments
        instead of deserializing the graph; in-process engines skip
        the (small) freeze-time encode unless asked.
    answer_cache_size / containment_cache_size:
        LRU capacities; ``0`` disables the respective cache.
    shards / partitioner:
        With ``shards=N`` the engine partitions ``G`` once
        (strategy named by ``partitioner``, see
        :data:`repro.shard.partitioner.PARTITIONERS`) and plans and
        executes against a
        :class:`~repro.shard.sharded.ShardedGraph`: extensions
        materialize shard-parallel (through the engine's executor) and
        carry the composite snapshot token, direct evaluation runs the
        partial-evaluation matcher, and the sharded snapshot is
        invalidated exactly like the single snapshot.
    planner:
        ``"fixed"`` (default) keeps the binary containment decision;
        ``"adaptive"`` prices MatchJoin over the minimal vs
        greedy-minimum subsets, hybrid rewriting and direct evaluation
        with the engine's :class:`~repro.engine.cost.CostModel` and
        picks the cheapest; ``"direct"`` / ``"hybrid"`` force one
        strategy (baselines).
    cost_model:
        Inject a (possibly shared) :class:`~repro.engine.cost.CostModel`;
        by default each engine calibrates its own from its plan log.
    auto_materialize:
        Opt-in workload-driven materialization: ``True`` (15% byte
        budget) or a float budget fraction of ``|G|``'s bytes.  Spawns
        a :class:`~repro.engine.advisor.WorkloadAdvisor` that ticks
        every ``advisor_interval`` delivered answers, materializing
        hot views and evicting cold ones under the budget
        (``advisor_budget_bytes`` pins an absolute budget instead).
    """

    def __init__(
        self,
        views: Optional[ViewSet] = None,
        graph: Optional[DataGraph] = None,
        snapshot_path=None,
        selection: str = "minimal",
        executor: str = "serial",
        workers: Optional[int] = None,
        answer_cache_size: int = 128,
        containment_cache_size: int = 512,
        optimized: bool = True,
        shards: Optional[int] = None,
        partitioner: str = "hash",
        shared_snapshots: Optional[bool] = None,
        registry: Optional[MetricsRegistry] = None,
        planner: str = PLANNER_FIXED,
        cost_model: Optional[CostModel] = None,
        auto_materialize=None,
        advisor_budget_bytes: Optional[int] = None,
        advisor_interval: int = 32,
    ) -> None:
        # Boot from a saved snapshot directory: the mmap-backed graph
        # stands in for a live DataGraph (its ``version`` mirrors the
        # snapshot version, so the engine never tries to re-freeze it)
        # and persisted view packs become the catalog when no ViewSet
        # was passed.  ``snapshot_path`` may also be an already-loaded
        # :class:`~repro.graph.snapshot.LoadedSnapshot` (the CLI loads
        # once and hands it over).
        loaded = None
        if snapshot_path is not None:
            if graph is not None:
                raise ValueError(
                    "pass either graph= or snapshot_path=, not both"
                )
            if hasattr(snapshot_path, "manifest") and hasattr(
                snapshot_path, "graph"
            ):
                loaded = snapshot_path
            else:
                from repro.graph.snapshot import SnapshotStore

                loaded = SnapshotStore.load(snapshot_path)
            graph = loaded.graph
            loaded_shards = getattr(graph, "num_shards", None)
            if loaded_shards is not None:
                if shards is not None and shards != loaded_shards:
                    raise ValueError(
                        f"snapshot at {loaded.path!r} has "
                        f"{loaded_shards} shards; shards={shards} conflicts"
                    )
                shards = loaded_shards
                partitioner = graph.partition.strategy
            elif shards is not None:
                raise ValueError(
                    "shards= conflicts with a compact (unsharded) snapshot"
                )
            if views is None:
                views = loaded.viewset()
        if views is None:
            raise ValueError(
                "QueryEngine requires a view catalog (or a snapshot_path "
                "to adopt one from)"
            )
        if selection not in _STRATEGIES:
            raise ValueError(
                f"unknown selection {selection!r}; expected one of "
                f"{sorted(_STRATEGIES)}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; expected one of {PLANNERS}"
            )
        if planner in (PLANNER_DIRECT, PLANNER_HYBRID) and graph is None:
            raise ValueError(
                f"planner={planner!r} requires a data graph to evaluate on"
            )
        if shards is not None:
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            from repro.shard.partitioner import PARTITIONERS

            if partitioner not in PARTITIONERS:
                raise ValueError(
                    f"unknown partitioner {partitioner!r}; expected one of "
                    f"{sorted(PARTITIONERS)}"
                )
        self._shards = shards
        self._partitioner = partitioner
        self._views = views
        self._graph = graph
        self._selection = selection
        self._executor = executor
        self._workers = workers
        self._optimized = optimized
        self._planner = planner
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._shared_snapshots = (
            shared_snapshots
            if shared_snapshots is not None
            else executor == "process"
        )
        # Cumulative process-pool shipping cost (see ship_stats()).
        self._ship_totals = {"batches": 0, "bytes": 0, "seconds": 0.0}
        # Observability: injectable per-engine registry (defaults to the
        # process-global one) and a bounded plan-choice log.  Instrument
        # handles touched per delivered answer are bound once here --
        # the registry lookup (label normalization + dict + lock) is
        # what the per-query overhead budget cannot afford.
        self._registry = registry if registry is not None else get_registry()
        reg = self._registry
        self._m_queries = {
            MATCHJOIN: reg.counter(
                "repro_engine_queries_total", strategy=MATCHJOIN
            ),
            DIRECT: reg.counter(
                "repro_engine_queries_total", strategy=DIRECT
            ),
        }
        self._m_fallbacks: Dict[str, object] = {}
        self._m_cache_hits = reg.counter("repro_engine_answer_cache_hits_total")
        self._m_cache_misses = reg.counter(
            "repro_engine_answer_cache_misses_total"
        )
        self._m_query_seconds = reg.histogram(
            "repro_engine_query_seconds", DURATION_BUCKETS
        )
        self._plan_log: Deque[PlanChoiceRecord] = deque(maxlen=PLAN_LOG_CAPACITY)
        self._containment_cache = LRUCache(containment_cache_size)
        self._answer_cache = LRUCache(answer_cache_size)
        self._maintenance: Optional[IncrementalViewSet] = None
        self._maintenance_dirty = False
        self._maintenance_cursor = 0
        # A CompactGraph, or a ShardedGraph in shards mode.  A
        # snapshot-booted engine starts with the loaded graph pinned as
        # its own snapshot (graph.version == snapshot_version, so
        # _snapshot_locked never rebuilds it).
        self._snapshot = loaded.graph if loaded is not None else None
        self._snapshot_path = loaded.path if loaded is not None else None
        # Serializes every catalog/cache mutation (planning, cache
        # reads/writes, snapshot refresh, materialization, maintenance
        # consumption).  Reentrant: execute -> plan -> snapshot nest.
        # Evaluation itself runs outside the lock on immutable inputs.
        self._lock = threading.RLock()
        # Opt-in workload-driven auto-materialization: a WorkloadAdvisor
        # consuming this engine's plan log, ticking every
        # ``advisor_interval`` delivered answers.  auto_materialize may
        # be True (default 15% budget) or a fraction of |G| bytes.
        self._advisor = None
        if auto_materialize:
            if graph is None:
                raise ValueError(
                    "auto_materialize requires a data graph to "
                    "materialize views from"
                )
            from repro.engine.advisor import WorkloadAdvisor

            fraction = (
                auto_materialize
                if isinstance(auto_materialize, float)
                else None
            )
            self._advisor = WorkloadAdvisor(
                self,
                budget_fraction=fraction if fraction is not None else 0.15,
                budget_bytes=advisor_budget_bytes,
                interval=advisor_interval,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def views(self) -> ViewSet:
        """The engine's view catalog."""
        return self._views

    @property
    def graph(self) -> Optional[DataGraph]:
        """The fallback data graph (``None`` for a views-only engine)."""
        return self._graph

    @property
    def snapshot_path(self) -> Optional[str]:
        """The snapshot directory this engine booted from (``None``
        for live-graph engines)."""
        return self._snapshot_path

    @property
    def optimized(self) -> bool:
        """Whether evaluation runs the Section V optimizations."""
        return self._optimized

    @property
    def planner(self) -> str:
        """The engine's planner mode (see :data:`~repro.engine.plan.PLANNERS`)."""
        return self._planner

    @property
    def cost_model(self) -> CostModel:
        """The calibrated cost model (fed by every delivered answer)."""
        return self._cost_model

    @property
    def advisor(self):
        """The :class:`~repro.engine.advisor.WorkloadAdvisor` when
        ``auto_materialize=`` was requested, else ``None``."""
        return self._advisor

    def graph_units(self) -> float:
        """``|G|`` as cost-model work units (nodes + edges; 0 without
        a graph)."""
        with self._lock:
            return self._graph_units_locked()

    def _graph_units_locked(self) -> float:
        return float(self._graph.size) if self._graph is not None else 0.0

    def _direct_units_locked(self, query: Optional[Pattern]) -> float:
        """Label-selective work estimate for evaluating ``query``
        directly on ``G``.

        Candidate seeding reads the label-index bucket of every
        labelled pattern node (:mod:`repro.simulation.seeding`) and the
        fixpoint then walks the adjacency of those candidates, so the
        touched volume scales with the bucket sizes -- not with
        ``|G|``.  A query over rare labels is far cheaper to answer
        directly than the flat ``|G|`` figure suggests, and pricing
        that selectivity is what lets the adaptive planner prefer
        direct evaluation for highly selective queries even when views
        could answer them.  Wildcard / label-free nodes charge the full
        node count; graphs without a label index degrade to ``|G|``.
        """
        graph = self._graph
        if graph is None:
            return 0.0
        graph_units = self._graph_units_locked()
        stats_fn = getattr(graph, "label_index_stats", None)
        if query is None or stats_fn is None:
            return graph_units
        stats = stats_fn()
        num_nodes = float(graph.num_nodes)
        num_edges = float(graph.num_edges)
        density = 1.0 + (num_edges / num_nodes if num_nodes else 0.0)
        seeded = 0.0
        for u in query.nodes():
            condition = query.condition(u)
            if isinstance(condition, Label):
                seeded += stats.get(condition.name, 0)
            elif isinstance(condition, AttributeCondition) and condition.label:
                seeded += stats.get(condition.label, 0)
            else:
                seeded += num_nodes
        return seeded * density

    @property
    def maintenance(self) -> Optional[IncrementalViewSet]:
        """The attached maintenance tracker (``None`` when detached)."""
        return self._maintenance

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this engine reports into."""
        return self._registry

    def plan_log(self, limit: Optional[int] = None) -> List[PlanChoiceRecord]:
        """The most recent plan-choice records, newest first.

        One record per delivered answer (cache hits included), capped at
        :data:`PLAN_LOG_CAPACITY`.  This is the telemetry stream ROADMAP
        item 3's cost-based planner trains on.
        """
        with self._lock:
            records = list(self._plan_log)
        records.reverse()
        return records[:limit] if limit is not None else records

    def _snapshot_kind_locked(self) -> str:
        """Which snapshot backend evaluation runs against right now.

        Matched by type name to avoid importing the shard/flat-buffer
        modules (and their segment machinery) just to label telemetry.
        """
        snapshot = self._snapshot
        if snapshot is None:
            return "dict" if self._graph is not None else "none"
        kind = type(snapshot).__name__
        return {
            "ShardedGraph": "sharded",
            "SharedCompactGraph": "shared",
            "CompactGraph": "compact",
        }.get(kind, kind.lower())

    def snapshot(self):
        """The engine's frozen view of ``G`` (``None`` without a graph).

        A :class:`~repro.graph.compact.CompactGraph` normally, or a
        :class:`~repro.shard.sharded.ShardedGraph` in ``shards=N``
        mode.  Frozen (and partitioned) once and reused for
        materialization, direct evaluation and batch execution.  After
        the graph mutates, the stale snapshot is *refreshed* from the
        graph's edge-op journal whenever the gap is pure edge churn --
        reusing unchanged adjacency rows (and, in shards mode,
        rebuilding only the shards owning the updated edges) -- and
        fully rebuilt otherwise.
        """
        if self._graph is None:
            return None
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self):
        snapshot = self._snapshot
        if snapshot is None or snapshot.snapshot_version != self._graph.version:
            if self._shards is not None:
                ops = (
                    None
                    if snapshot is None
                    else self._graph.edge_changes_since(snapshot.snapshot_version)
                )
                if ops is not None:
                    snapshot = snapshot.refreshed(self._graph, ops)
                else:
                    from repro.shard.sharded import ShardedGraph

                    snapshot = ShardedGraph(
                        self._graph,
                        num_shards=self._shards,
                        strategy=self._partitioner,
                    )
            else:
                # freeze() consults the same journal and refreshes the
                # cached CompactGraph in place of a full rebuild.
                snapshot = self._graph.freeze(shared=self._shared_snapshots)
            self._snapshot = snapshot
        return snapshot

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters for both caches."""
        with self._lock:
            return {
                "containment": self._containment_cache.stats.snapshot(),
                "answers": self._answer_cache.stats.snapshot(),
            }

    def ship_stats(self) -> Dict[str, float]:
        """Cumulative process-pool payload shipping cost.

        ``batches`` process-pool batches have serialized ``bytes`` of
        shared payload in ``seconds`` total.  With shared snapshots the
        figures stay near-constant per batch (segment handles ship, not
        buffers); dict payloads grow with the graph.
        """
        with self._lock:
            return dict(self._ship_totals)

    def invalidate(self) -> None:
        """Drop every cached decision and answer explicitly.

        Normally unnecessary: answer keys embed the version stamps of
        the views each plan reads (or the graph version for direct
        plans) and decision keys embed ``definitions_version``, so any
        relevant mutation already strands the stale entries.
        """
        with self._lock:
            self._containment_cache.clear()
            self._answer_cache.clear()

    def materialize_views(self, names: Sequence[str]) -> List[str]:
        """Materialize the named views against the frozen snapshot
        (skipping any already fresh); returns what was materialized.
        The advisor's "promote hot views" action routes through here so
        it shares the engine's lock, snapshot and shard machinery."""
        with self._lock:
            if self._graph is None:
                raise ValueError(
                    "materialize_views() requires a data graph"
                )
            todo = [
                name for name in names
                if not self._views.is_materialized(name)
                or self._views.is_stale(name)
            ]
            if not todo:
                return []
            snapshot = self._snapshot_locked()
            if self._shards is not None:
                from repro.shard.materialize import parallel_materialize

                parallel_materialize(
                    self._views,
                    snapshot,
                    names=todo,
                    executor=self._executor,
                    workers=self._workers,
                )
            else:
                self._views.materialize(snapshot, names=todo)
            return todo

    def evict_extensions(self, names: Sequence[str]) -> List[str]:
        """Drop the named views' cached extensions (definitions stay).

        Safe mid-workload: ``drop_extension`` bumps the view's version
        stamp, so answers cached over the old extension are stranded
        (never served) and in-flight evaluations finish on the
        point-in-time extensions copy they already hold.
        """
        with self._lock:
            dropped = []
            for name in names:
                if name in self._views and self._views.is_materialized(name):
                    self._views.drop_extension(name)
                    dropped.append(name)
            return dropped

    # ------------------------------------------------------------------
    # Maintenance integration
    # ------------------------------------------------------------------
    def attach_maintenance(self, tracker: IncrementalViewSet) -> None:
        """Keep the catalog fresh from an incremental maintenance tracker.

        Subscribes to ``tracker``; updates mark the engine dirty and,
        before the next plan or evaluation, it consumes the pending
        events as one batch: the snapshot is refreshed (not dropped)
        through the graph's edge-op journal, and only the extensions
        the batch actually *changed* are re-imported (bumping only
        those views' version stamps, so cached answers over untouched
        views stay live).  View definitions present in the tracker but
        missing from the catalog are added.  Bounded views in the
        catalog are outside incremental maintenance entirely: each
        consumed batch flags their cached extensions stale (stamp bump
        included, so dependent cached answers are evicted) and the
        engine rematerializes them from the refreshed snapshot on the
        next read.

        If the engine was built with a data graph, it adopts the
        tracker's maintained copy as its evaluation graph -- direct
        evaluation, on-demand materialization and snapshot refresh must
        all follow the same update stream the views do.
        """
        with self._lock:
            if self._maintenance is not None:
                raise ValueError("a maintenance tracker is already attached")
            self._maintenance = tracker
            self._maintenance_cursor = -1  # import everything on first refresh
            tracker.subscribe(self._on_maintenance_event)
            if self._graph is not None and self._graph is not tracker.graph:
                self._graph = tracker.graph
                self._snapshot = None
            self._maintenance_dirty = True
            self._refresh_if_dirty()

    def detach_maintenance(self) -> None:
        """Stop following the attached tracker (keeps current extensions
        and the adopted graph)."""
        with self._lock:
            if self._maintenance is not None:
                self._maintenance.unsubscribe(self._on_maintenance_event)
                self._maintenance = None
                self._maintenance_dirty = False

    def apply_delta(self, delta: Delta) -> DeltaReport:
        """Apply a maintenance batch atomically w.r.t. concurrent readers.

        Routes ``delta`` through the attached
        :class:`~repro.views.maintenance.IncrementalViewSet` and
        consumes the resulting events -- snapshot refresh, changed-view
        re-import, bounded-view staleness -- as one batch, all under the
        engine lock.  This is the *only* safe way to drive maintenance
        while other threads call :meth:`execute` / :meth:`answer`:
        driving the tracker directly from a second thread would mutate
        its witness-counter state mid-read.  Readers already past the
        lock (evaluating) finish on the pre-delta extensions and store
        their answers under the pre-delta version stamps, so the cache
        never mixes epochs.
        """
        with self._lock:
            if self._maintenance is None:
                raise ValueError(
                    "no maintenance tracker attached; call "
                    "attach_maintenance() first"
                )
            report = self._maintenance.apply_delta(delta)
            self._refresh_if_dirty()
            return report

    def checkpoint(self) -> EngineCheckpoint:
        """Freshen the whole catalog and capture it as an immutable
        :class:`EngineCheckpoint`.

        Under the engine lock: pending maintenance is consumed, the
        snapshot refreshed, and every missing or stale view (bounded
        views after an update) is rematerialized -- then the snapshot,
        a point-in-time copy of the extensions, and the version stamps
        are captured.  The serving layer calls this once per epoch so
        readers never pay materialization and never observe a
        half-applied update.  Requires a data graph.
        """
        with self._lock:
            if self._graph is None:
                raise ValueError(
                    "checkpoint() requires a data graph to freshen against"
                )
            self._refresh_if_dirty()
            snapshot = self._snapshot_locked()
            names = self._views.names()
            # With an advisor managing the cache, honor its evictions:
            # refresh only what is materialized-but-stale, instead of
            # re-materializing every missing view each epoch (which
            # would undo the advisor's byte budget).  The serving layer
            # degrades plans needing absent extensions to direct
            # evaluation.
            if self._advisor is not None:
                missing = [
                    name for name in names
                    if self._views.is_materialized(name)
                    and self._views.is_stale(name)
                ]
            else:
                missing = [
                    name for name in names
                    if not self._views.is_materialized(name)
                    or self._views.is_stale(name)
                ]
            if missing:
                if self._shards is not None:
                    from repro.shard.materialize import parallel_materialize

                    parallel_materialize(
                        self._views,
                        snapshot,
                        names=missing,
                        executor=self._executor,
                        workers=self._workers,
                    )
                else:
                    self._views.materialize(snapshot, names=missing)
            return EngineCheckpoint(
                snapshot=snapshot,
                extensions=self._views.extensions(),
                view_versions={
                    name: self._views.view_version(name) for name in names
                },
                definitions_version=self._views.definitions_version,
                graph_version=self._graph.version,
            )

    def _on_maintenance_event(self, event) -> None:
        # Events are consumed in batches by _refresh_if_dirty; the
        # snapshot is deliberately *kept* -- it refreshes from the
        # graph's edge-op journal instead of being rebuilt.
        self._maintenance_dirty = True

    def _refresh_if_dirty(self) -> None:
        if not self._maintenance_dirty or self._maintenance is None:
            self._maintenance_dirty = False
            return
        tracker = self._maintenance
        cursor_before = self._maintenance_cursor
        changed = set(tracker.changed_since(cursor_before))
        self._maintenance_cursor = tracker.seq
        self._maintenance_dirty = False
        for name in tracker.names():
            if name not in self._views:
                self._views.add(tracker.definition(name))
                changed.add(name)
        # Bounded views are outside the tracker's maintenance (their
        # extensions shift non-locally with distances): any applied
        # update strands them, so flag them stale -- bumping their
        # version stamps, which evicts dependent cached answers -- and
        # let _spec_for rematerialize them from the refreshed snapshot
        # on the next read.  Gated on updates actually applied (seq
        # advanced past the cursor; a fresh attach maps its -1 sentinel
        # to 0), so attaching to a quiet tracker evicts nothing.
        if tracker.seq > max(cursor_before, 0):
            for name in self._views.names():
                if (
                    self._views.definition(name).is_bounded
                    and self._views.is_materialized(name)
                ):
                    self._views.mark_stale(name)
        # Refresh the snapshot first (cheap, journal-driven) so changed
        # extensions bind straight into the new id space.  Under
        # maintenance the engine keeps a snapshot whenever it has a
        # graph: refreshes are affected-area cheap, and binding the
        # imports keeps MatchJoin on the integer fast path throughout
        # the update stream.
        snapshot = self.snapshot() if self._graph is not None else None
        for name in tracker.names():
            if name not in changed:
                continue
            extension = tracker.extension(name)
            if snapshot is not None:
                extension = bind_extension(extension, snapshot)
            self._views.set_extension(extension)
        if snapshot is not None:
            self._rebind_unchanged(changed, snapshot)

    def _rebind_unchanged(self, changed, snapshot) -> None:
        """Re-stamp unchanged snapshot-bound extensions onto the
        refreshed snapshot's token (no version bump: the match sets are
        identical, only provenance moved), so MatchJoin's id-space fast
        path re-engages across the whole catalog."""
        extends = getattr(snapshot, "extends_token", None)
        for name in self._views.names():
            if name in changed or not self._views.is_materialized(name):
                continue
            if self._views.is_stale(name):
                # Stale (bounded) extensions must not be re-stamped onto
                # the fresh token -- that would launder outdated match
                # sets into provenance the fast path trusts.  They wait
                # for rematerialization instead.
                continue
            extension = self._views.extension(name)
            compact = extension.compact
            if compact is None or compact.token == snapshot.snapshot_token:
                continue
            try:
                if extends is not None and compact.token == extends:
                    # preserve_flatness keeps a flat payload's view
                    # wrapper flat, so its pickle stays a segment
                    # handle across maintenance epochs.
                    from repro.views.flatpack import preserve_flatness

                    rebound = preserve_flatness(
                        extension, compact.rebound(snapshot)
                    )
                else:
                    rebound = bind_extension(extension, snapshot)
            except KeyError:
                # The extension references nodes the snapshot no longer
                # has (out-of-band mutation): leave it; the fast path
                # simply stays disengaged for this view.
                continue
            self._views.rebind_extension(rebound)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, query: Pattern, selection: Optional[str] = None) -> QueryPlan:
        """Compute (or recall) the evaluation plan for ``query``.

        The containment decision -- the expensive part, Theorem 3 --
        is memoized per (query fingerprint, selection, catalog
        version); repeated shapes skip straight to strategy choice.
        """
        with trace.span("plan") as plan_span:
            with self._lock:
                plan = self._plan_locked(query, selection)
            if plan_span is not None:
                plan_span.set(
                    strategy=plan.strategy,
                    selection=plan.selection,
                    containment_cached=plan.containment_cached,
                    **({"reason": plan.reason} if plan.reason else {}),
                )
            return plan

    def _plan_locked(
        self, query: Pattern, selection: Optional[str] = None
    ) -> QueryPlan:
        self._refresh_if_dirty()
        explicit_selection = selection is not None
        selection = selection or self._selection
        if selection not in _STRATEGIES:
            raise ValueError(
                f"unknown selection {selection!r}; expected one of "
                f"{sorted(_STRATEGIES)}"
            )
        bounded = isinstance(query, BoundedPattern) or any(
            d.is_bounded for d in self._views
        )
        fingerprint = pattern_key(query)
        if self._planner == PLANNER_FIXED:
            return self._fixed_plan_locked(query, fingerprint, selection, bounded)
        if self._planner == PLANNER_DIRECT:
            return self._forced_direct_plan_locked(
                query, fingerprint, selection, bounded
            )
        if self._planner == PLANNER_HYBRID:
            return self._forced_hybrid_plan_locked(
                query, fingerprint, selection, bounded
            )
        return self._adaptive_plan_locked(
            query, fingerprint, selection, bounded, explicit_selection
        )

    def _containment_locked(
        self, query: Pattern, fingerprint, selection: str, bounded: bool
    ):
        """The (possibly cached) containment decision for one selection.

        Containment depends on view *definitions* only, so its cache
        survives extension refreshes (materialization, maintenance).
        """
        decision_key = (fingerprint, selection, self._views.definitions_version)
        containment = self._containment_cache.get(decision_key)
        cached = containment is not None
        if not cached:
            select = _STRATEGIES[selection][1 if bounded else 0]
            containment = select(query, self._views)
            self._containment_cache.put(decision_key, containment)
        return containment, cached

    def _fixed_plan_locked(
        self, query: Pattern, fingerprint, selection: str, bounded: bool
    ) -> QueryPlan:
        """The legacy binary decision: MatchJoin iff ``Q ⊑ V``."""
        containment, cached = self._containment_locked(
            query, fingerprint, selection, bounded
        )
        if not containment.holds:
            strategy, reason = DIRECT, REASON_NOT_CONTAINED
        elif query.isolated_nodes():
            strategy, reason = DIRECT, REASON_ISOLATED_NODES
        else:
            strategy, reason = MATCHJOIN, None
        views_used = containment.views_used() if strategy == MATCHJOIN else ()
        return self._finish_plan(
            query, fingerprint, strategy, selection, containment,
            views_used, bounded, cached, reason, PLANNER_FIXED,
        )

    def _forced_direct_plan_locked(
        self, query: Pattern, fingerprint, selection: str, bounded: bool
    ) -> QueryPlan:
        """``planner="direct"``: always evaluate on ``G`` -- and skip
        the containment check entirely, which is precisely what the
        direct-only baseline should (not) pay for."""
        containment = Containment(
            holds=False,
            mapping={},
            uncovered=frozenset(query.edge_set()),
            view_names=(),
        )
        candidate = self._direct_candidate(query, bounded)
        return self._finish_plan(
            query, fingerprint, DIRECT, selection, containment,
            (), bounded, False, REASON_FORCED, PLANNER_DIRECT,
            candidates=(candidate,),
            cost_estimate=candidate.estimate,
            cost_units=candidate.units,
        )

    def _forced_hybrid_plan_locked(
        self, query: Pattern, fingerprint, selection: str, bounded: bool
    ) -> QueryPlan:
        """``planner="hybrid"``: partial rewriting wherever applicable
        (maximal coverage via the ``"all"`` selection, full λ -- no
        cost-based pruning; that is the adaptive planner's edge);
        bounded and isolated-node patterns degrade to direct
        evaluation."""
        if bounded or query.isolated_nodes():
            return self._forced_direct_plan_locked(
                query, fingerprint, selection, bounded
            )
        containment, cached = self._containment_locked(
            query, fingerprint, "all", bounded
        )
        views_used = containment.views_used()
        candidate = self._hybrid_candidate(query, containment, bounded)
        if not candidate.feasible or not views_used:
            return self._forced_direct_plan_locked(
                query, fingerprint, selection, bounded
            )
        return self._finish_plan(
            query, fingerprint, HYBRID, "all", containment,
            views_used, bounded, cached, REASON_FORCED, PLANNER_HYBRID,
            candidates=(candidate,),
            cost_estimate=candidate.estimate,
            cost_units=candidate.units,
        )

    def _adaptive_plan_locked(
        self,
        query: Pattern,
        fingerprint,
        selection: str,
        bounded: bool,
        explicit_selection: bool,
    ) -> QueryPlan:
        """Price every applicable strategy and pick the cheapest.

        Candidates: MatchJoin over each selection policy's view subset
        (the caller-pinned one when a selection was passed explicitly,
        otherwise the engine default plus ``"minimal"`` and
        ``"minimum"`` -- Theorems 5/6 pick different subsets and
        neither dominates), hybrid rewriting over the maximal
        (``"all"``) coverage -- λ-pruned to the cheapest witness per
        edge, see :meth:`_prune_coverage_locked` -- when the query is
        partially covered (Section VIII), and direct evaluation when a
        graph is present.
        """
        isolated = bool(query.isolated_nodes())
        graph_units = self._graph_units_locked()
        if explicit_selection:
            selections = [selection]
        else:
            selections = list(
                dict.fromkeys([self._selection, "minimal", "minimum"])
            )
        candidates: List[CandidateCost] = []
        containments = {}
        cached_flags = {}
        for sel in selections:
            containment, cached = self._containment_locked(
                query, fingerprint, sel, bounded
            )
            containments[sel] = containment
            cached_flags[sel] = cached
            if containment.holds and not isolated:
                candidates.append(
                    self._matchjoin_candidate(sel, containment, bounded, graph_units)
                )
        if self._graph is not None:
            candidates.append(self._direct_candidate(query, bounded))
            if not bounded and not isolated:
                coverage, cov_cached = self._containment_locked(
                    query, fingerprint, "all", bounded
                )
                total = len(query.edge_set())
                covered = len(frozenset(coverage.mapping))
                if 0 < covered < total:
                    pruned = self._prune_coverage_locked(coverage)
                    containments["all"] = pruned
                    cached_flags["all"] = cov_cached
                    candidates.append(
                        self._hybrid_candidate(query, pruned, bounded)
                    )
        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            # Views cannot answer it and there is no graph: keep the
            # legacy direct/fallback shape so _spec_for raises the
            # same NotContainedError / ValueError it always has.
            containment = containments[selection]
            reason = (
                REASON_ISOLATED_NODES
                if containment.holds and isolated
                else REASON_NOT_CONTAINED
            )
            return self._finish_plan(
                query, fingerprint, DIRECT, selection, containment,
                (), bounded, cached_flags[selection], reason,
                PLANNER_ADAPTIVE, candidates=tuple(candidates),
            )
        winner = min(
            feasible,
            key=lambda c: (c.estimate, STRATEGY_PREFERENCE.index(c.strategy)),
        )
        explored = self._explore_candidate(feasible, winner, bounded)
        if explored is not None:
            marked = replace(
                explored,
                note=(explored.note + "; " if explored.note else "")
                + "explore",
            )
            candidates = [
                marked if c is explored else c for c in candidates
            ]
            winner = marked
        if len(feasible) == 1 and winner.strategy == DIRECT:
            # No real choice: views cannot answer this query at all.
            # Keep the legacy fallback reasons (not-contained first,
            # mirroring the fixed planner) for those consumers.
            reason = (
                REASON_NOT_CONTAINED
                if not containments[selection].holds
                else REASON_ISOLATED_NODES
            )
        elif len(feasible) == 1 and winner.strategy == MATCHJOIN:
            reason = None  # contained, nothing else applicable: legacy shape
        else:
            reason = {
                MATCHJOIN: REASON_COST_MATCHJOIN,
                HYBRID: REASON_COST_HYBRID,
                DIRECT: REASON_COST_DIRECT,
            }[winner.strategy]
        sel_used = winner.selection
        containment = containments[sel_used]
        views_used = winner.views
        return self._finish_plan(
            query, fingerprint, winner.strategy, sel_used, containment,
            views_used, bounded, cached_flags[sel_used], reason,
            PLANNER_ADAPTIVE,
            candidates=tuple(candidates),
            cost_estimate=winner.estimate,
            cost_units=winner.units,
        )

    def _explore_candidate(
        self,
        feasible: List[CandidateCost],
        winner: CandidateCost,
        bounded: bool,
    ) -> Optional[CandidateCost]:
        """One-shot exploration: pick a feasible strategy the cost
        model has never observed (at this bounded tier) over the
        estimated winner, so its *real* rate replaces the cold default.

        Without this the planner only ever observes the strategies it
        picks, and a pessimistic cold default can never be corrected --
        e.g. with non-selective views, MatchJoin's optimistic cold rate
        would win forever even when direct evaluation is measurably
        faster.  Exploration is bounded by the strategy count (each
        strategy is explored at most once, then has samples) and never
        picks a candidate that would materialize views as a side
        effect -- whether a cold view is worth materializing is the
        advisor's decision, not the planner's.
        """
        model = self._cost_model
        if model.samples(winner.strategy, bounded) == 0:
            return None  # executing the winner IS the exploration
        rivals = [
            c
            for c in feasible
            if c is not winner
            and model.samples(c.strategy, bounded) == 0
            and "unmaterialized" not in c.note
        ]
        if not rivals:
            return None
        return min(
            rivals,
            key=lambda c: (c.estimate, STRATEGY_PREFERENCE.index(c.strategy)),
        )

    def _matchjoin_candidate(
        self, sel: str, containment, bounded: bool, graph_units: float
    ) -> CandidateCost:
        """Price MatchJoin over ``containment``'s view subset.

        Materialized, fresh extensions contribute their measured sizes;
        a missing (or stale) extension contributes an estimated size
        *plus* a one-shot materialization penalty -- unless the engine
        has no graph to materialize from, which makes the candidate
        infeasible.
        """
        views = containment.views_used()
        ext_units = 0.0
        missing = 0
        for name in views:
            if self._views.is_materialized(name) and not self._views.is_stale(name):
                ext_units += self._views.extension(name).size
            else:
                missing += 1
                ext_units += EST_MISSING_FRACTION * graph_units
        model = self._cost_model
        warm = model.estimate(MATCHJOIN, bounded, ext_units)
        feasible = missing == 0 or self._graph is not None
        estimate = warm + missing * model.materialize_penalty(bounded, graph_units)
        note = f"{missing} view(s) unmaterialized" if missing else ""
        return CandidateCost(
            strategy=MATCHJOIN,
            label=f"matchjoin[{sel}]",
            selection=sel,
            views=views,
            units=ext_units,
            rate=model.rate(MATCHJOIN, bounded),
            estimate=estimate,
            warm_estimate=warm,
            feasible=feasible,
            note=note if feasible else "no graph to materialize from",
        )

    def _direct_candidate(self, query: Pattern, bounded: bool) -> CandidateCost:
        model = self._cost_model
        units = self._direct_units_locked(query)
        estimate = model.estimate(DIRECT, bounded, units)
        return CandidateCost(
            strategy=DIRECT,
            label=DIRECT,
            selection=self._selection,
            views=(),
            units=units,
            rate=model.rate(DIRECT, bounded),
            estimate=estimate,
            warm_estimate=estimate,
            feasible=self._graph is not None,
            note="" if self._graph is not None else "no data graph",
        )

    def _prune_coverage_locked(self, coverage) -> Containment:
        """Cost-based λ pruning: keep one reference per covered edge.

        Every reference in ``λ(e)`` is individually a superset of the
        edge's true match set (Theorem 1's invariant holds per view
        match), so the merge stays correct with any single one -- and
        the merge volume is what hybrid evaluation pays for.  Keeping
        the reference from the smallest fresh extension (unmaterialized
        views price at their estimated size, so they lose to any
        materialized one) turns "covered by everything, including the
        big views" into "covered by the cheapest witness".  This is a
        *cost-model* decision -- only the adaptive planner does it; the
        forced ``planner="hybrid"`` baseline keeps the full λ, the
        paper's literal maximal-coverage rewriting.
        """
        sizes: Dict[str, float] = {}

        def size_of(name: str) -> float:
            if name not in sizes:
                if self._views.is_materialized(name) and not self._views.is_stale(
                    name
                ):
                    sizes[name] = float(self._views.extension(name).size)
                else:
                    sizes[name] = (
                        EST_MISSING_FRACTION * self._graph_units_locked()
                    )
            return sizes[name]

        mapping = {}
        names: List[str] = []
        for edge, refs in coverage.mapping.items():
            best = min(refs, key=lambda ref: (size_of(ref[0]), str(ref[0])))
            mapping[edge] = (best,)
            if best[0] not in names:
                names.append(best[0])
        return Containment(
            holds=coverage.holds,
            mapping=mapping,
            uncovered=coverage.uncovered,
            view_names=tuple(names),
        )

    def _hybrid_candidate(
        self, query: Pattern, coverage, bounded: bool
    ) -> CandidateCost:
        """Price hybrid rewriting over the covered fragment: extension
        units for the covered edges plus the uncovered fraction of
        ``|G|`` for the edges evaluated directly."""
        graph_units = self._graph_units_locked()
        views = coverage.views_used()
        total = len(query.edge_set())
        covered = len(frozenset(coverage.mapping))
        uncovered_fraction = (total - covered) / total if total else 0.0
        ext_units = 0.0
        missing = 0
        for name in views:
            if self._views.is_materialized(name) and not self._views.is_stale(name):
                ext_units += self._views.extension(name).size
            else:
                missing += 1
                ext_units += EST_MISSING_FRACTION * graph_units
        units = ext_units + uncovered_fraction * self._direct_units_locked(query)
        model = self._cost_model
        warm = model.estimate(HYBRID, bounded, units)
        estimate = warm + missing * model.materialize_penalty(bounded, graph_units)
        feasible = self._graph is not None and bool(views)
        note = f"coverage {covered}/{total}"
        if missing:
            note += f", {missing} view(s) unmaterialized"
        return CandidateCost(
            strategy=HYBRID,
            label=HYBRID,
            selection="all",
            views=views,
            units=units,
            rate=model.rate(HYBRID, bounded),
            estimate=estimate,
            warm_estimate=warm,
            feasible=feasible,
            note=note,
        )

    def _finish_plan(
        self,
        query: Pattern,
        fingerprint,
        strategy: str,
        selection: str,
        containment,
        views_used: Tuple[str, ...],
        bounded: bool,
        cached: bool,
        reason: Optional[str],
        planner: str,
        candidates: Tuple[CandidateCost, ...] = (),
        cost_estimate: Optional[float] = None,
        cost_units: float = 0.0,
    ) -> QueryPlan:
        # The answer key covers exactly what the plan reads: the
        # version stamps of the views MatchJoin consumes, the graph
        # version for direct evaluation, or both for hybrid plans.  An
        # update therefore strands only the answers whose inputs
        # actually changed.
        key = (
            fingerprint,
            selection,
            self._views.definitions_version,
            self._key_material(strategy, views_used),
        )
        return QueryPlan(
            query=query,
            strategy=strategy,
            selection=selection,
            containment=containment,
            views_used=views_used,
            bounded=bounded,
            cache_key=key,
            containment_cached=cached,
            reason=reason,
            planner=planner,
            candidates=candidates,
            cost_estimate=cost_estimate,
            cost_units=cost_units,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer(self, query: Pattern, selection: Optional[str] = None) -> MatchResult:
        """Plan and evaluate ``query``; stats ride on ``result.stats``."""
        return self.execute(self.plan(query, selection))

    def execute(self, plan: QueryPlan) -> MatchResult:
        """Evaluate a plan (re-planning first if the definitions moved
        on; extension refreshes only re-key the answer, the containment
        decision stays valid)."""
        with self._lock:
            self._refresh_if_dirty()
            if plan.cache_key[2] != self._views.definitions_version:
                plan = self._plan_locked(plan.query, plan.selection)
            with trace.span("cache.lookup") as cache_span:
                hit = self._answer_cache.get(self._current_key(plan))
                if cache_span is not None:
                    cache_span.set(hit=hit is not None)
            if hit is not None:
                return self._deliver(hit, plan, elapsed=0.0, cache_hit=True)
            spec = self._spec_for(plan)
            # _spec_for may have materialized extensions (bumping version
            # stamps); key the answer on the state actually evaluated,
            # *before* releasing the lock -- a maintenance batch landing
            # mid-evaluation then strands this answer under the old
            # stamps instead of storing it under the new ones.
            key = self._current_key(plan)
            # Freeze lazily: MatchJoin specs never read the graph, so
            # only direct / hybrid specs are worth the freeze cost.
            graph = (
                self._snapshot_locked()
                if spec.kind in (DIRECT, HYBRID)
                else None
            )
            extensions = self._views.extensions()
        with trace.span("evaluate", strategy=plan.strategy, executor="serial"):
            [(_, result, elapsed, _, _)], _ = run_specs(
                [(0, spec)], extensions, graph, executor="serial"
            )
        with self._lock:
            self._answer_cache.put(key, result)
        return self._deliver(result, plan, elapsed=elapsed, cache_hit=False)

    def answer_batch(
        self,
        queries: Sequence[Pattern],
        selection: Optional[str] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> List[MatchResult]:
        """Answer many queries, in order, sharing plans and caches.

        Identical queries (equal fingerprints) are planned and
        evaluated once per batch; cache hits skip evaluation entirely.
        ``executor`` / ``workers`` override the engine defaults for
        this batch only.
        """
        executor = executor or self._executor
        workers = workers if workers is not None else self._workers
        with self._lock:
            plans = [self._plan_locked(query, selection) for query in queries]
            results: List[Optional[MatchResult]] = [None] * len(plans)

            # Resolve answer-cache hits; deduplicate the remaining work
            # by cache key so each distinct query is evaluated once.
            pending: Dict[Tuple, List[int]] = {}
            specs: List[Tuple[int, EvaluationSpec]] = []
            for index, plan in enumerate(plans):
                hit = self._answer_cache.get(plan.cache_key)
                if hit is not None:
                    results[index] = self._deliver(
                        hit, plan, elapsed=0.0, cache_hit=True,
                        executor=executor,
                    )
                    continue
                if plan.cache_key in pending:
                    pending[plan.cache_key].append(index)
                    continue
                pending[plan.cache_key] = [index]
                specs.append((index, self._spec_for(plan)))
            # Spec building may have materialized extensions (bumping
            # version stamps); key each answer on the state actually
            # evaluated before releasing the lock.
            keys = {index: self._current_key(plans[index]) for index, _ in specs}
            needs_graph = any(
                spec.kind in (DIRECT, HYBRID) for _, spec in specs
            )
            graph = self._snapshot_locked() if needs_graph else None
            extensions = self._views.extensions()

        if specs:
            with trace.span(
                "evaluate.batch", tasks=len(specs), executor=executor
            ):
                completed, ship = run_specs(
                    specs,
                    extensions,
                    graph,
                    executor=executor,
                    workers=workers,
                )
            with self._lock:
                for index, result, _, _, _ in completed:
                    self._answer_cache.put(keys[index], result)
                if ship.bytes:
                    self._ship_totals["batches"] += 1
                    self._ship_totals["bytes"] += ship.bytes
                    self._ship_totals["seconds"] += ship.seconds
                    self._registry.histogram(
                        "repro_engine_ship_bytes", SIZE_BUCKETS
                    ).observe(ship.bytes)
            for index, result, elapsed, pid, _ in completed:
                plan = plans[index]
                for twin in pending[plan.cache_key]:
                    results[twin] = self._deliver(
                        result,
                        plans[twin],
                        elapsed=elapsed if twin == index else 0.0,
                        cache_hit=twin != index,
                        executor=executor,
                        pid=pid,
                        ship=ship if twin == index else None,
                    )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key_material(self, strategy: str, views_used) -> Tuple:
        """What an answer depends on: per-view version stamps for a
        MatchJoin plan, the graph's mutation version for a direct one,
        and both for a hybrid plan (it reads both)."""
        if strategy == MATCHJOIN:
            return ("V", self._views.version_vector(views_used))
        if strategy == HYBRID:
            return (
                "H",
                self._views.version_vector(views_used),
                self._graph.version if self._graph is not None else -1,
            )
        return ("G", self._graph.version if self._graph is not None else -1)

    def _current_key(self, plan: QueryPlan) -> Tuple:
        """The plan's answer-cache key against the catalog's *current*
        state (on-demand materialization moves version stamps between
        planning and storing the answer; only extensions changed, so
        the plan itself stays valid)."""
        fingerprint, selection, _, _ = plan.cache_key
        return (
            fingerprint,
            selection,
            self._views.definitions_version,
            self._key_material(plan.strategy, plan.views_used),
        )

    def _spec_for(self, plan: QueryPlan) -> EvaluationSpec:
        """Turn a plan into a picklable spec, materializing as needed."""
        if plan.strategy == DIRECT:
            if self._graph is None:
                if plan.reason == REASON_NOT_CONTAINED:
                    raise NotContainedError(plan.containment.uncovered)
                raise ValueError(
                    "plan requires direct evaluation "
                    f"({plan.reason}) but the engine has no data graph"
                )
            return EvaluationSpec(
                kind=DIRECT,
                query=plan.query,
                containment=None,
                needed=(),
                bounded=plan.bounded,
                optimized=self._optimized,
                trace_id=trace.current_span_id(),
            )
        if plan.strategy == HYBRID and self._graph is None:
            raise ValueError(
                "plan requires hybrid evaluation but the engine has no "
                "data graph"
            )
        missing = [
            name for name in plan.views_used
            if not self._views.is_materialized(name)
            or self._views.is_stale(name)
        ]
        if missing:
            if self._graph is None:
                raise NotMaterializedError(
                    f"extensions missing for views {missing!r} and the "
                    "engine has no graph to materialize them from"
                )
            # Materialize against the frozen snapshot: the extensions
            # then carry id-space payloads, so MatchJoin specs take the
            # integer fast path (in-process and in pool workers alike).
            # In shards mode the per-shard local steps additionally run
            # through the engine's executor.
            snapshot = self.snapshot()
            if self._shards is not None:
                from repro.shard.materialize import parallel_materialize

                parallel_materialize(
                    self._views,
                    snapshot,
                    names=missing,
                    executor=self._executor,
                    workers=self._workers,
                )
            else:
                self._views.materialize(snapshot, names=missing)
        return EvaluationSpec(
            kind=plan.strategy,
            query=plan.query,
            containment=plan.containment,
            needed=plan.views_used,
            bounded=plan.bounded,
            optimized=self._optimized,
            trace_id=trace.current_span_id(),
        )

    def _deliver(
        self,
        result: MatchResult,
        plan: QueryPlan,
        elapsed: float,
        cache_hit: bool,
        executor: str = "serial",
        pid: Optional[int] = None,
        ship=None,
    ) -> MatchResult:
        """Wrap a (possibly shared, cached) result with fresh stats,
        appending the plan-choice record and metering the registry."""
        stats = ExecutionStats(
            strategy=plan.strategy,
            selection=plan.selection,
            views_used=plan.views_used,
            elapsed=elapsed,
            cache_hit=cache_hit,
            containment_cached=plan.containment_cached,
            executor=executor,
            pid=pid if pid is not None else os.getpid(),
            ship_bytes=ship.bytes if ship is not None else 0,
            ship_seconds=ship.seconds if ship is not None else 0.0,
        )
        self.record_plan_choice(
            plan, elapsed=elapsed, cache_hit=cache_hit, executor=executor
        )
        return MatchResult(result.node_matches, result.edge_matches, stats=stats)

    def record_plan_choice(
        self,
        plan: QueryPlan,
        *,
        elapsed: float,
        cache_hit: bool,
        executor: str = "serial",
    ) -> PlanChoiceRecord:
        """Append a plan-choice record for ``plan`` and meter the
        registry.  ``_deliver`` calls this for every engine-path
        answer; the serving layer calls it directly because it
        evaluates specs itself (against pinned epochs) rather than
        through :meth:`execute`."""
        with self._lock:
            view_sizes = {
                name: self._views.extension(name).size
                for name in plan.views_used
                if self._views.is_materialized(name)
            }
            record = PlanChoiceRecord(
                fingerprint=fingerprint_digest(plan.cache_key[0]),
                strategy=plan.strategy,
                selection=plan.selection,
                reason=plan.reason,
                views_used=plan.views_used,
                view_sizes=view_sizes,
                bounded=plan.bounded,
                containment_cached=plan.containment_cached,
                cache_hit=cache_hit,
                snapshot_kind=self._snapshot_kind_locked(),
                executor=executor,
                elapsed=elapsed,
                planner=plan.planner,
                cost_estimate=plan.cost_estimate,
                candidates=plan.candidates,
            )
            self._plan_log.append(record)
            if not cache_hit and elapsed > 0.0:
                # Calibrate the cost model with what actually happened.
                # Fixed-planner answers train it too, so switching an
                # engine (or a shared model) to adaptive starts warm.
                units = plan.cost_units
                if units <= 0.0:
                    if plan.strategy == DIRECT:
                        units = self._direct_units_locked(plan.query)
                    else:
                        units = float(sum(view_sizes.values()))
                        if plan.strategy == HYBRID:
                            total = len(plan.query.edge_set())
                            uncovered = len(plan.containment.uncovered)
                            if total:
                                units += (
                                    uncovered / total
                                ) * self._direct_units_locked(plan.query)
                self._cost_model.observe(
                    plan.strategy, plan.bounded, units, elapsed
                )
        counter = self._m_queries.get(plan.strategy)
        if counter is None:
            counter = self._registry.counter(
                "repro_engine_queries_total", strategy=plan.strategy
            )
            self._m_queries[plan.strategy] = counter
        counter.inc()
        # Only genuine view-insufficiency reasons count as fallbacks;
        # cost-model reasons are choices, not failures to use views.
        if plan.reason in FALLBACK_REASONS:
            fallback = self._m_fallbacks.get(plan.reason)
            if fallback is None:
                fallback = self._registry.counter(
                    "repro_engine_fallbacks_total", reason=plan.reason
                )
                self._m_fallbacks[plan.reason] = fallback
            fallback.inc()
        if cache_hit:
            self._m_cache_hits.inc()
        else:
            self._m_cache_misses.inc()
            self._m_query_seconds.observe(elapsed)
        current = trace.current_span()
        if current is not None:
            current.set(
                strategy=plan.strategy,
                cache_hit=cache_hit,
                snapshot_kind=record.snapshot_kind,
            )
        if self._advisor is not None:
            self._advisor.maybe_tick()
        return record

    def __repr__(self) -> str:
        sharding = (
            f", shards={self._shards}" if self._shards is not None else ""
        )
        return (
            f"QueryEngine(views={self._views.cardinality}, "
            f"graph={'yes' if self._graph is not None else 'no'}, "
            f"selection={self._selection!r}, executor={self._executor!r}"
            f"{sharding})"
        )
