"""Query plans: the inspectable outcome of the engine's planner.

The paper's pipeline (Section II-B) has three stages -- decide
``Q ⊑ V`` (Theorem 3), select views (Theorems 5/6), evaluate MatchJoin
(Fig. 2) -- and a deployment runs them for every incoming query.  The
planner factors the first two stages out into a :class:`QueryPlan` that
is computed once per (query shape, selection, view-cache version) and
can be inspected, cached, and shipped to worker processes.

A plan chooses among three strategies:

* ``"matchjoin"`` -- ``Q ⊑ V`` holds: evaluate from the materialized
  extensions only, never touching ``G`` (Theorem 1).
* ``"hybrid"`` -- partial rewriting (Section VIII): answer the covered
  pattern fragment from the views and touch ``G`` only for the
  uncovered edges; exact, and cheap when coverage is high.
* ``"direct"`` -- fall back to the simulation baseline ``Match`` on
  the data graph (always chosen for isolated-node patterns, which view
  extensions cannot cover).

The *fixed* planner keeps the legacy binary decision (MatchJoin iff
contained); the *adaptive* planner prices every applicable strategy
with the engine's :class:`~repro.engine.cost.CostModel` -- MatchJoin
over the minimal vs greedy-minimum subset, hybrid rewriting, direct --
and picks the cheapest, recording the full candidate table on the plan
(``explain()``) and its :class:`PlanChoiceRecord`.

:func:`pattern_key` provides the structural fingerprint used as the
cache key; two queries with equal fingerprints have identical results
on every graph and view cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Hashable, Optional, Tuple

from repro.core.containment import Containment
from repro.engine.cost import CandidateCost
from repro.graph.pattern import BoundedPattern, Pattern

PatternKey = Tuple[Hashable, ...]

#: Plan strategies.
MATCHJOIN = "matchjoin"
DIRECT = "direct"
HYBRID = "hybrid"

#: Planner modes.  ``"fixed"`` is the legacy binary decision (MatchJoin
#: iff ``Q ⊑ V``, else direct); ``"adaptive"`` prices every applicable
#: strategy with the engine's :class:`~repro.engine.cost.CostModel` and
#: picks the cheapest; ``"direct"`` / ``"hybrid"`` force one strategy
#: (the fixed baselines ``bench_planner.py`` compares against).
PLANNER_FIXED = "fixed"
PLANNER_ADAPTIVE = "adaptive"
PLANNER_DIRECT = "direct"
PLANNER_HYBRID = "hybrid"
PLANNERS = (PLANNER_FIXED, PLANNER_ADAPTIVE, PLANNER_DIRECT, PLANNER_HYBRID)

#: Reasons the planner may fall back to the direct strategy.
REASON_NOT_CONTAINED = "not-contained"
REASON_ISOLATED_NODES = "isolated-nodes"

#: Cost-model reasons: the adaptive planner chose the strategy because
#: it priced cheapest among the feasible candidates.
REASON_COST_DIRECT = "cost-direct"
REASON_COST_MATCHJOIN = "cost-matchjoin"
REASON_COST_HYBRID = "cost-hybrid"

#: A forced planner mode (``planner="direct"`` / ``"hybrid"``) chose
#: the strategy; no cost comparison happened.
REASON_FORCED = "forced"

#: The legacy reason strings, aliased to their cost-model successors.
#: ``PlanChoiceRecord`` consumers written against the binary planner
#: can treat an aliased pair as the same fallback class: both mean
#: "the planner chose direct evaluation over answering from views".
REASON_ALIASES = {
    REASON_NOT_CONTAINED: REASON_COST_DIRECT,
    REASON_ISOLATED_NODES: REASON_COST_DIRECT,
}

#: Reasons that count as *fallbacks* (views could not answer the
#: query) in ``repro_engine_fallbacks_total`` -- cost-model reasons are
#: choices, not fallbacks, and stay out of that counter.
FALLBACK_REASONS = (REASON_NOT_CONTAINED, REASON_ISOLATED_NODES)

#: Tie-break preference when candidate estimates are equal: prefer the
#: strategy that touches less of ``G``.
STRATEGY_PREFERENCE = (MATCHJOIN, HYBRID, DIRECT)


def pattern_key(query: Pattern) -> PatternKey:
    """A canonical, hashable fingerprint of a (bounded) pattern.

    Covers node identities, their search conditions (via
    ``Condition.key()``), the edge set, and -- for bounded patterns
    (Section VI) -- every edge bound.  Queries with equal keys are the
    same query, so containment decisions and answers may be shared
    between them.
    """
    bounded = isinstance(query, BoundedPattern)
    nodes = tuple(
        sorted((repr(node), repr(query.condition(node).key())) for node in query.nodes())
    )
    edges = tuple(
        sorted(
            (
                repr(edge[0]),
                repr(edge[1]),
                repr(query.bound(edge)) if bounded else "1",
            )
            for edge in query.edges()
        )
    )
    return ("bounded" if bounded else "plain", nodes, edges)


@dataclass(frozen=True)
class QueryPlan:
    """An evaluation plan for one pattern query against a view cache.

    Attributes
    ----------
    query:
        The planned :class:`Pattern` / :class:`BoundedPattern`.
    strategy:
        ``"matchjoin"`` (answer from views, Theorem 1) or ``"direct"``
        (fallback to ``Match`` on ``G``).
    selection:
        The view-selection policy the planner ran: ``"all"``
        (algorithm ``contain``), ``"minimal"`` (Fig. 5) or
        ``"minimum"`` (greedy set-cover).
    containment:
        The :class:`Containment` decision, λ mapping included.  Present
        for both strategies (for ``"direct"`` it records *why* views
        were insufficient via ``uncovered``).
    views_used:
        Names of the views MatchJoin will read; empty for ``"direct"``.
    bounded:
        Whether the bounded machinery (Section VI) is engaged -- true
        when the query or any view is bounded.
    cache_key:
        The engine's answer-cache key: ``(pattern fingerprint,
        selection, definitions version, key material)`` where the key
        material is the per-view version vector of ``views_used`` for
        MatchJoin plans and the graph's mutation version for direct
        plans -- so a maintenance update only re-keys the answers whose
        inputs it touched.  Exposed so callers can correlate plans with
        cache entries.
    containment_cached:
        True when the containment decision was served from the
        engine's decision cache rather than recomputed.
    reason:
        For ``"direct"`` plans, why MatchJoin was not applicable
        (``"not-contained"`` or ``"isolated-nodes"``); for plans the
        adaptive planner chose on price, the cost reason
        (``"cost-matchjoin"`` / ``"cost-hybrid"`` / ``"cost-direct"``);
        ``None`` for fixed-planner MatchJoin plans.
    planner:
        Which planner mode produced the plan (see :data:`PLANNERS`).
    candidates:
        The priced :class:`~repro.engine.cost.CandidateCost` entries
        the adaptive planner compared (empty for the fixed planner).
    cost_estimate / cost_units:
        The winner's predicted evaluation seconds and the work-unit
        volume the estimate was computed from (``None`` / ``0`` when
        the planner did not price the plan).  ``cost_units`` is also
        what the engine calibrates the cost model with once the real
        elapsed time is known.
    """

    query: Pattern
    strategy: str
    selection: str
    containment: Containment
    views_used: Tuple[str, ...]
    bounded: bool
    cache_key: Tuple
    containment_cached: bool = False
    reason: Optional[str] = field(default=None)
    planner: str = PLANNER_FIXED
    candidates: Tuple[CandidateCost, ...] = ()
    cost_estimate: Optional[float] = None
    cost_units: float = 0.0

    @property
    def uses_views(self) -> bool:
        """True when the plan reads view extensions (exclusively for
        MatchJoin; alongside ``G`` for hybrid rewriting)."""
        return self.strategy in (MATCHJOIN, HYBRID)

    def explain(self) -> str:
        """A human-readable rendition of the plan (CLI ``--explain``)."""
        cost = (
            f" est={self.cost_estimate * 1e3:.3f} ms"
            if self.cost_estimate is not None
            else ""
        )
        lines = [
            f"strategy : {self.strategy}"
            + (f" ({self.reason})" if self.reason else "")
            + cost,
            f"planner  : {self.planner}",
            f"selection: {self.selection}"
            + (" [cached decision]" if self.containment_cached else ""),
            f"bounded  : {self.bounded}",
        ]
        if self.uses_views:
            lines.append(f"views    : {', '.join(self.views_used) or '(none)'}")
            lines.append(
                f"lambda   : {len(self.containment.mapping)} query edges covered"
            )
        if self.strategy in (DIRECT, HYBRID):
            uncovered = sorted(self.containment.uncovered, key=repr)
            if uncovered:
                rendered = ", ".join(f"{a}->{b}" for a, b in uncovered)
                lines.append(f"uncovered: {rendered}")
        if self.candidates:
            lines.append("candidates:")
            winner = self.winning_candidate()
            for candidate in self.candidates:
                lines.append("  " + candidate.render(chosen=candidate is winner))
        return "\n".join(lines)

    def winning_candidate(self) -> Optional[CandidateCost]:
        """The candidate the plan executes (``None`` for fixed plans).

        Matched on strategy *and* selection so ``explain()`` and the
        :class:`PlanChoiceRecord` agree with the chosen plan by
        construction.
        """
        for candidate in self.candidates:
            if (
                candidate.strategy == self.strategy
                and (candidate.strategy != MATCHJOIN
                     or candidate.selection == self.selection)
            ):
                return candidate
        return None

    def __repr__(self) -> str:
        views = f", views={list(self.views_used)}" if self.uses_views else ""
        return f"QueryPlan({self.strategy!r}, selection={self.selection!r}{views})"


@lru_cache(maxsize=1024)
def fingerprint_digest(key: PatternKey) -> str:
    """A short stable digest of a pattern fingerprint.

    ``hash()`` is salted per process, so correlation across runs (and
    across the plan log, traces, and the serving protocol) uses a
    content digest instead.  Memoized: the digest is recomputed per
    answered query (the plan-choice record carries it), and a serving
    workload answers the same fingerprints over and over.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()[:12]


#: Version of the plan-choice record schema (ROADMAP item 3 trains on
#: these records; breaking layout changes bump this).  v2 adds the
#: planner mode, the per-candidate cost table and the winner's
#: estimate; every v1 field is unchanged.
PLAN_RECORD_VERSION = 2


@dataclass(frozen=True)
class PlanChoiceRecord:
    """One planner decision plus the measured inputs it was made with.

    This is the structured telemetry ROADMAP item 3 ("cost-based
    adaptive planner ... recording plan-choice telemetry") consumes:
    what the planner chose (``strategy``/``selection``/``views_used``,
    the fallback ``reason``), what it could observe (``view_sizes`` --
    the per-view extension sizes a cost model weighs, ``snapshot_kind``
    -- which backend evaluated), and what it cost (``elapsed``,
    ``cache_hit``/``containment_cached``).  Emitted once per delivered
    answer by :class:`~repro.engine.engine.QueryEngine` into its
    bounded plan log, mirrored as registry counters.

    The record agrees with :meth:`QueryPlan.explain` by construction:
    both read the same plan fields.
    """

    fingerprint: str
    strategy: str
    selection: str
    reason: Optional[str]
    views_used: Tuple[str, ...]
    view_sizes: Dict[str, int]
    bounded: bool
    containment_cached: bool
    cache_hit: bool
    snapshot_kind: str
    executor: str
    elapsed: float
    planner: str = PLANNER_FIXED
    cost_estimate: Optional[float] = None
    candidates: Tuple[CandidateCost, ...] = ()

    def to_dict(self) -> Dict:
        """JSON-ready form (the plan log and protocol surface this)."""
        return {
            "version": PLAN_RECORD_VERSION,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "selection": self.selection,
            "reason": self.reason,
            "views_used": list(self.views_used),
            "view_sizes": dict(self.view_sizes),
            "bounded": self.bounded,
            "containment_cached": self.containment_cached,
            "cache_hit": self.cache_hit,
            "snapshot_kind": self.snapshot_kind,
            "executor": self.executor,
            "elapsed_ms": self.elapsed * 1e3,
            "planner": self.planner,
            "cost_estimate_ms": (
                self.cost_estimate * 1e3
                if self.cost_estimate is not None
                else None
            ),
            "candidates": [c.to_dict() for c in self.candidates],
        }


@dataclass
class ExecutionStats:
    """Per-query execution telemetry, attached to ``MatchResult.stats``.

    ``elapsed`` is the evaluation wall time in seconds (zero for answer
    -cache hits); ``executor`` names how the query ran (``"serial"``,
    ``"thread"`` or ``"process"``); ``pid`` is the worker process id.
    ``ship_bytes`` / ``ship_seconds`` are the serialized size of the
    shared payload and the wall time spent serializing it when this
    query's batch went to a process pool (zero in-process: nothing
    ships).  Shipping happens once per batch, so every evaluated result
    of one batch reports the same figures.
    """

    strategy: str
    selection: str
    views_used: Tuple[str, ...]
    elapsed: float
    cache_hit: bool
    containment_cached: bool
    executor: str
    pid: Optional[int] = None
    ship_bytes: int = 0
    ship_seconds: float = 0.0
