"""Query plans: the inspectable outcome of the engine's planner.

The paper's pipeline (Section II-B) has three stages -- decide
``Q ⊑ V`` (Theorem 3), select views (Theorems 5/6), evaluate MatchJoin
(Fig. 2) -- and a deployment runs them for every incoming query.  The
planner factors the first two stages out into a :class:`QueryPlan` that
is computed once per (query shape, selection, view-cache version) and
can be inspected, cached, and shipped to worker processes.

A plan chooses between two strategies:

* ``"matchjoin"`` -- ``Q ⊑ V`` holds: evaluate from the materialized
  extensions only, never touching ``G`` (Theorem 1).
* ``"direct"`` -- ``Q ⋢ V`` (or the pattern has isolated nodes, which
  view extensions cannot cover): fall back to the simulation baseline
  ``Match`` on the data graph.

:func:`pattern_key` provides the structural fingerprint used as the
cache key; two queries with equal fingerprints have identical results
on every graph and view cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Hashable, Optional, Tuple

from repro.core.containment import Containment
from repro.graph.pattern import BoundedPattern, Pattern

PatternKey = Tuple[Hashable, ...]

#: Plan strategies.
MATCHJOIN = "matchjoin"
DIRECT = "direct"

#: Reasons the planner may fall back to the direct strategy.
REASON_NOT_CONTAINED = "not-contained"
REASON_ISOLATED_NODES = "isolated-nodes"


def pattern_key(query: Pattern) -> PatternKey:
    """A canonical, hashable fingerprint of a (bounded) pattern.

    Covers node identities, their search conditions (via
    ``Condition.key()``), the edge set, and -- for bounded patterns
    (Section VI) -- every edge bound.  Queries with equal keys are the
    same query, so containment decisions and answers may be shared
    between them.
    """
    bounded = isinstance(query, BoundedPattern)
    nodes = tuple(
        sorted((repr(node), repr(query.condition(node).key())) for node in query.nodes())
    )
    edges = tuple(
        sorted(
            (
                repr(edge[0]),
                repr(edge[1]),
                repr(query.bound(edge)) if bounded else "1",
            )
            for edge in query.edges()
        )
    )
    return ("bounded" if bounded else "plain", nodes, edges)


@dataclass(frozen=True)
class QueryPlan:
    """An evaluation plan for one pattern query against a view cache.

    Attributes
    ----------
    query:
        The planned :class:`Pattern` / :class:`BoundedPattern`.
    strategy:
        ``"matchjoin"`` (answer from views, Theorem 1) or ``"direct"``
        (fallback to ``Match`` on ``G``).
    selection:
        The view-selection policy the planner ran: ``"all"``
        (algorithm ``contain``), ``"minimal"`` (Fig. 5) or
        ``"minimum"`` (greedy set-cover).
    containment:
        The :class:`Containment` decision, λ mapping included.  Present
        for both strategies (for ``"direct"`` it records *why* views
        were insufficient via ``uncovered``).
    views_used:
        Names of the views MatchJoin will read; empty for ``"direct"``.
    bounded:
        Whether the bounded machinery (Section VI) is engaged -- true
        when the query or any view is bounded.
    cache_key:
        The engine's answer-cache key: ``(pattern fingerprint,
        selection, definitions version, key material)`` where the key
        material is the per-view version vector of ``views_used`` for
        MatchJoin plans and the graph's mutation version for direct
        plans -- so a maintenance update only re-keys the answers whose
        inputs it touched.  Exposed so callers can correlate plans with
        cache entries.
    containment_cached:
        True when the containment decision was served from the
        engine's decision cache rather than recomputed.
    reason:
        For ``"direct"`` plans, why MatchJoin was not applicable
        (``"not-contained"`` or ``"isolated-nodes"``); ``None`` for
        ``"matchjoin"`` plans.
    """

    query: Pattern
    strategy: str
    selection: str
    containment: Containment
    views_used: Tuple[str, ...]
    bounded: bool
    cache_key: Tuple
    containment_cached: bool = False
    reason: Optional[str] = field(default=None)

    @property
    def uses_views(self) -> bool:
        """True when the plan answers from view extensions only."""
        return self.strategy == MATCHJOIN

    def explain(self) -> str:
        """A human-readable rendition of the plan (CLI ``--explain``)."""
        lines = [
            f"strategy : {self.strategy}"
            + (f" ({self.reason})" if self.reason else ""),
            f"selection: {self.selection}"
            + (" [cached decision]" if self.containment_cached else ""),
            f"bounded  : {self.bounded}",
        ]
        if self.uses_views:
            lines.append(f"views    : {', '.join(self.views_used) or '(none)'}")
            lines.append(
                f"lambda   : {len(self.containment.mapping)} query edges covered"
            )
        else:
            uncovered = sorted(self.containment.uncovered, key=repr)
            if uncovered:
                rendered = ", ".join(f"{a}->{b}" for a, b in uncovered)
                lines.append(f"uncovered: {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        views = f", views={list(self.views_used)}" if self.uses_views else ""
        return f"QueryPlan({self.strategy!r}, selection={self.selection!r}{views})"


@lru_cache(maxsize=1024)
def fingerprint_digest(key: PatternKey) -> str:
    """A short stable digest of a pattern fingerprint.

    ``hash()`` is salted per process, so correlation across runs (and
    across the plan log, traces, and the serving protocol) uses a
    content digest instead.  Memoized: the digest is recomputed per
    answered query (the plan-choice record carries it), and a serving
    workload answers the same fingerprints over and over.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()[:12]


#: Version of the plan-choice record schema (ROADMAP item 3 trains on
#: these records; breaking layout changes bump this).
PLAN_RECORD_VERSION = 1


@dataclass(frozen=True)
class PlanChoiceRecord:
    """One planner decision plus the measured inputs it was made with.

    This is the structured telemetry ROADMAP item 3 ("cost-based
    adaptive planner ... recording plan-choice telemetry") consumes:
    what the planner chose (``strategy``/``selection``/``views_used``,
    the fallback ``reason``), what it could observe (``view_sizes`` --
    the per-view extension sizes a cost model weighs, ``snapshot_kind``
    -- which backend evaluated), and what it cost (``elapsed``,
    ``cache_hit``/``containment_cached``).  Emitted once per delivered
    answer by :class:`~repro.engine.engine.QueryEngine` into its
    bounded plan log, mirrored as registry counters.

    The record agrees with :meth:`QueryPlan.explain` by construction:
    both read the same plan fields.
    """

    fingerprint: str
    strategy: str
    selection: str
    reason: Optional[str]
    views_used: Tuple[str, ...]
    view_sizes: Dict[str, int]
    bounded: bool
    containment_cached: bool
    cache_hit: bool
    snapshot_kind: str
    executor: str
    elapsed: float

    def to_dict(self) -> Dict:
        """JSON-ready form (the plan log and protocol surface this)."""
        return {
            "version": PLAN_RECORD_VERSION,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "selection": self.selection,
            "reason": self.reason,
            "views_used": list(self.views_used),
            "view_sizes": dict(self.view_sizes),
            "bounded": self.bounded,
            "containment_cached": self.containment_cached,
            "cache_hit": self.cache_hit,
            "snapshot_kind": self.snapshot_kind,
            "executor": self.executor,
            "elapsed_ms": self.elapsed * 1e3,
        }


@dataclass
class ExecutionStats:
    """Per-query execution telemetry, attached to ``MatchResult.stats``.

    ``elapsed`` is the evaluation wall time in seconds (zero for answer
    -cache hits); ``executor`` names how the query ran (``"serial"``,
    ``"thread"`` or ``"process"``); ``pid`` is the worker process id.
    ``ship_bytes`` / ``ship_seconds`` are the serialized size of the
    shared payload and the wall time spent serializing it when this
    query's batch went to a process pool (zero in-process: nothing
    ships).  Shipping happens once per batch, so every evaluated result
    of one batch reports the same figures.
    """

    strategy: str
    selection: str
    views_used: Tuple[str, ...]
    elapsed: float
    cache_hit: bool
    containment_cached: bool
    executor: str
    pid: Optional[int] = None
    ship_bytes: int = 0
    ship_seconds: float = 0.0
