"""Directed data graphs with node labels and attributes.

A data graph (Section II-A of the paper) is a directed graph
``G = (V, E, L)`` where ``L`` assigns each node a *set* of labels drawn
from an alphabet.  We additionally let nodes carry an attribute
dictionary so that patterns may use Boolean search conditions such as
``C = "Music" and V >= 10_000`` (Fig. 7 of the paper); plain labels are
kept in a separate set for fast label-only matching.

The class is deliberately dictionary-based (adjacency sets) rather than a
wrapper over an external library: the matching engines need O(1) access
to successor/predecessor sets and cheap membership tests, and nothing
else.  Two read-path accelerators ride on top of the dictionaries:

* an incrementally-maintained **label index** (label -> node set), so
  candidate seeding in the matching engines is O(bucket) instead of a
  full-node scan;
* :meth:`freeze`, which produces an immutable
  :class:`~repro.graph.compact.CompactGraph` snapshot -- dense integer
  ids, array adjacency, per-node label/attribute tables -- for
  read-heavy serving.  Snapshots are cached against the mutation
  :attr:`version` counter, so repeated freezes of an unchanged graph
  are free.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.compact import CompactGraph

Node = Hashable
Edge = Tuple[Node, Node]


class DataGraph:
    """A directed graph whose nodes carry label sets and attributes.

    Parameters
    ----------
    nodes:
        Optional iterable of ``(node, labels, attrs)`` triples; ``labels``
        may be a single string or an iterable of strings, ``attrs`` a
        mapping or ``None``.
    edges:
        Optional iterable of ``(source, target)`` pairs.  Nodes appearing
        only in ``edges`` are created with empty labels.

    Examples
    --------
    >>> g = DataGraph()
    >>> g.add_node("Ann", labels="PM")
    >>> g.add_node("Bob", labels="DBA", attrs={"years": 4})
    >>> g.add_edge("Ann", "Bob")
    >>> sorted(g.successors("Ann"))
    ['Bob']
    >>> g.labels("Bob")
    frozenset({'DBA'})
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_labels",
        "_attrs",
        "_label_index",
        "_num_edges",
        "_version",
        "_frozen",
    )

    def __init__(
        self,
        nodes: Optional[Iterable[Tuple[Node, Any, Optional[Mapping[str, Any]]]]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._labels: Dict[Node, FrozenSet[str]] = {}
        self._attrs: Dict[Node, Dict[str, Any]] = {}
        self._label_index: Dict[str, Set[Node]] = {}
        self._num_edges = 0
        self._version = 0
        self._frozen = None
        if nodes is not None:
            for node, labels, attrs in nodes:
                self.add_node(node, labels=labels, attrs=attrs)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: Node,
        labels: Any = (),
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Add ``node`` (or update its labels/attributes if present)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._labels[node] = frozenset()
            self._attrs[node] = {}
            self._version += 1
        if labels:
            new = frozenset([labels]) if isinstance(labels, str) else frozenset(labels)
            fresh = new - self._labels[node]
            if fresh:
                self._labels[node] = self._labels[node] | fresh
                for label in fresh:
                    self._label_index.setdefault(label, set()).add(node)
                self._version += 1
        if attrs:
            self._attrs[node].update(attrs)
            self._version += 1

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``source -> target`` (idempotent)."""
        if source not in self._succ:
            self.add_node(source)
        if target not in self._succ:
            self.add_node(target)
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._num_edges += 1
            self._version += 1

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        for source, target in edges:
            self.add_edge(source, target)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``; raise ``KeyError`` if absent."""
        if source not in self._succ or target not in self._succ[source]:
            raise KeyError((source, target))
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise KeyError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        for label in self._labels[node]:
            bucket = self._label_index[label]
            bucket.discard(node)
            if not bucket:
                del self._label_index[label]
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]
        del self._attrs[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper: total number of nodes and edges."""
        return self.num_nodes + self.num_edges

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every structural, label or
        attribute change.  :meth:`freeze` snapshots carry the version
        they were taken at, so downstream caches can tell whether a
        snapshot is still current."""
        return self._version

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def has_edge(self, source: Node, target: Node) -> bool:
        targets = self._succ.get(source)
        return targets is not None and target in targets

    def successors(self, node: Node) -> Set[Node]:
        return self._succ[node]

    def predecessors(self, node: Node) -> Set[Node]:
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def labels(self, node: Node) -> FrozenSet[str]:
        return self._labels[node]

    def attrs(self, node: Node) -> Dict[str, Any]:
        return self._attrs[node]

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield all nodes carrying ``label`` (index lookup, O(bucket))."""
        return iter(self._label_index.get(label, ()))

    def label_index_stats(self) -> Dict[str, int]:
        """``{label: bucket size}`` for every indexed label."""
        return {label: len(bucket) for label, bucket in self._label_index.items()}

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def descendants_within(self, source: Node, bound: int) -> Dict[Node, int]:
        """Map each node reachable from ``source`` by a path of length in
        ``[1, bound]`` to its shortest such distance.

        The empty path does not count: ``source`` itself appears in the
        result only if it lies on a cycle of length <= ``bound``.
        """
        if bound < 1:
            return {}
        # Track what has been queued, not just what has been popped:
        # otherwise a node is appended once per in-edge and the queue
        # grows to O(|E| * bound) instead of O(|V|).
        start = self._succ[source]
        dist: Dict[Node, int] = {}
        queued = set(start)
        frontier = deque((target, 1) for target in start)
        while frontier:
            node, d = frontier.popleft()
            dist[node] = d
            if d < bound:
                for target in self._succ[node]:
                    if target not in queued:
                        queued.add(target)
                        frontier.append((target, d + 1))
        return dist

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def freeze(self) -> "CompactGraph":
        """An immutable :class:`~repro.graph.compact.CompactGraph`
        snapshot of the current state.

        The snapshot is cached: repeated calls return the same object
        until the next mutation bumps :attr:`version`.  Freeze before
        read-heavy work (batch query serving, benchmarks); stay on the
        mutable graph while maintenance updates are flowing.
        """
        from repro.graph.compact import CompactGraph

        frozen = self._frozen
        if frozen is None or frozen.snapshot_version != self._version:
            frozen = CompactGraph(self, self._version)
            self._frozen = frozen
        return frozen

    def copy(self) -> "DataGraph":
        """Return an independent deep-enough copy (attribute dicts copied)."""
        clone = DataGraph()
        for node in self._succ:
            clone._succ[node] = set(self._succ[node])
            clone._pred[node] = set(self._pred[node])
            clone._labels[node] = self._labels[node]
            clone._attrs[node] = dict(self._attrs[node])
        for label, bucket in self._label_index.items():
            clone._label_index[label] = set(bucket)
        clone._num_edges = self._num_edges
        clone._version = self._version
        return clone

    def __repr__(self) -> str:
        return f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges})"
