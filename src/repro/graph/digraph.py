"""Directed data graphs with node labels and attributes.

A data graph (Section II-A of the paper) is a directed graph
``G = (V, E, L)`` where ``L`` assigns each node a *set* of labels drawn
from an alphabet.  We additionally let nodes carry an attribute
dictionary so that patterns may use Boolean search conditions such as
``C = "Music" and V >= 10_000`` (Fig. 7 of the paper); plain labels are
kept in a separate set for fast label-only matching.

The class is deliberately dictionary-based (adjacency sets) rather than a
wrapper over an external library: the matching engines need O(1) access
to successor/predecessor sets and cheap membership tests, and nothing
else.  Two read-path accelerators ride on top of the dictionaries:

* an incrementally-maintained **label index** (label -> node set), so
  candidate seeding in the matching engines is O(bucket) instead of a
  full-node scan;
* :meth:`freeze`, which produces an immutable
  :class:`~repro.graph.compact.CompactGraph` snapshot -- dense integer
  ids, array adjacency, per-node label/attribute tables -- for
  read-heavy serving.  Snapshots are cached against the mutation
  :attr:`version` counter, so repeated freezes of an unchanged graph
  are free.

The graph additionally keeps a bounded **edge-op journal**: every edge
insertion/deletion since the journal floor, in application order.  As
long as only journal-safe mutations happened (edge churn plus brand-new
nodes), :meth:`freeze` *refreshes* the previous snapshot through
:meth:`CompactGraph.refreshed` -- unchanged adjacency rows and label
tables are reused, only the touched rows are rebuilt, and dense ids
stay stable -- instead of paying a full re-freeze.  Label/attribute
edits on existing nodes and node removals break the journal, falling
back to a full rebuild at the next freeze.  :meth:`edge_changes_since`
exposes the same journal to external snapshot consumers (the sharded
backend refreshes per-shard snapshots from it).
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.compact import CompactGraph
    from repro.views.maintenance import Delta

Node = Hashable
Edge = Tuple[Node, Node]

#: One journal entry / applied delta op: ``(op, source, target)`` with
#: ``op`` in ``{"insert", "delete"}``.
EdgeOp = Tuple[str, Node, Node]

#: Journal length past which the oldest half is dropped (raising the
#: answerable floor) -- bounds memory under unbounded churn.
_OPLOG_CAP = 65536


class DataGraph:
    """A directed graph whose nodes carry label sets and attributes.

    Parameters
    ----------
    nodes:
        Optional iterable of ``(node, labels, attrs)`` triples; ``labels``
        may be a single string or an iterable of strings, ``attrs`` a
        mapping or ``None``.
    edges:
        Optional iterable of ``(source, target)`` pairs.  Nodes appearing
        only in ``edges`` are created with empty labels.

    Examples
    --------
    >>> g = DataGraph()
    >>> g.add_node("Ann", labels="PM")
    >>> g.add_node("Bob", labels="DBA", attrs={"years": 4})
    >>> g.add_edge("Ann", "Bob")
    >>> sorted(g.successors("Ann"))
    ['Bob']
    >>> g.labels("Bob")
    frozenset({'DBA'})
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_labels",
        "_attrs",
        "_label_index",
        "_num_edges",
        "_version",
        "_frozen",
        "_oplog",
        "_oplog_floor",
    )

    def __init__(
        self,
        nodes: Optional[Iterable[Tuple[Node, Any, Optional[Mapping[str, Any]]]]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._labels: Dict[Node, FrozenSet[str]] = {}
        self._attrs: Dict[Node, Dict[str, Any]] = {}
        self._label_index: Dict[str, Set[Node]] = {}
        self._num_edges = 0
        self._version = 0
        self._frozen = None
        # Edge-op journal: (version-after, op, source, target) entries,
        # answerable back to _oplog_floor (non-edge mutations raise the
        # floor to the current version, invalidating refresh paths).
        self._oplog: List[Tuple[int, str, Node, Node]] = []
        self._oplog_floor = 0
        if nodes is not None:
            for node, labels, attrs in nodes:
                self.add_node(node, labels=labels, attrs=attrs)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: Node,
        labels: Any = (),
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Add ``node`` (or update its labels/attributes if present)."""
        is_new = node not in self._succ
        if is_new:
            self._succ[node] = set()
            self._pred[node] = set()
            self._labels[node] = frozenset()
            self._attrs[node] = {}
            self._version += 1
        if labels:
            new = frozenset([labels]) if isinstance(labels, str) else frozenset(labels)
            fresh = new - self._labels[node]
            if fresh:
                self._labels[node] = self._labels[node] | fresh
                for label in fresh:
                    self._label_index.setdefault(label, set()).add(node)
                self._version += 1
                if not is_new:
                    self._break_oplog()
        if attrs:
            self._attrs[node].update(attrs)
            self._version += 1
            if not is_new:
                self._break_oplog()

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``source -> target`` (idempotent)."""
        if source not in self._succ:
            self.add_node(source)
        if target not in self._succ:
            self.add_node(target)
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._num_edges += 1
            self._version += 1
            self._log_op("insert", source, target)

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        for source, target in edges:
            self.add_edge(source, target)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``; raise ``KeyError`` if absent."""
        if source not in self._succ or target not in self._succ[source]:
            raise KeyError((source, target))
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1
        self._version += 1
        self._log_op("delete", source, target)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise KeyError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        for label in self._labels[node]:
            bucket = self._label_index[label]
            bucket.discard(node)
            if not bucket:
                del self._label_index[label]
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]
        del self._attrs[node]
        self._version += 1
        self._break_oplog()

    # ------------------------------------------------------------------
    # Edge-op journal
    # ------------------------------------------------------------------
    def _log_op(self, op: str, source: Node, target: Node) -> None:
        log = self._oplog
        log.append((self._version, op, source, target))
        if len(log) > _OPLOG_CAP:
            half = len(log) // 2
            self._oplog_floor = log[half - 1][0]
            del log[:half]

    def _break_oplog(self) -> None:
        """A non-edge mutation happened: the journal can no longer
        explain the gap between any earlier version and now."""
        self._oplog.clear()
        self._oplog_floor = self._version

    def edge_changes_since(self, version: int) -> Optional[List[EdgeOp]]:
        """The edge insertions/deletions applied since ``version``, in
        order -- or ``None`` when the journal cannot vouch for the gap
        (label/attribute edits on existing nodes or node removals
        happened, or ``version`` predates the journal floor).

        A non-``None`` answer guarantees the *only* other changes since
        ``version`` are brand-new nodes (auto-created by ``add_edge`` or
        added explicitly), which appear after all pre-existing nodes in
        iteration order -- exactly the contract snapshot refresh paths
        (:meth:`freeze`, ``ShardedGraph.refreshed``) rely on.
        """
        if version < self._oplog_floor:
            return None
        ops: List[EdgeOp] = []
        for entry_version, op, source, target in reversed(self._oplog):
            if entry_version <= version:
                break
            ops.append((op, source, target))
        ops.reverse()
        return ops

    def apply_delta(self, delta: "Delta") -> List[EdgeOp]:
        """Apply a :class:`~repro.views.maintenance.Delta` batch.

        Ops are applied in order; already-present insertions and
        missing-edge deletions are skipped (a delta is a statement of
        intent, not a transcript).  Returns the ops actually applied.
        The journal records them, so the next :meth:`freeze` refreshes
        the cached snapshot instead of rebuilding it.
        """
        applied: List[EdgeOp] = []
        for op, source, target in delta:
            if op == "insert":
                if self.has_edge(source, target):
                    continue
                self.add_edge(source, target)
            else:
                if not self.has_edge(source, target):
                    continue
                self.remove_edge(source, target)
            applied.append((op, source, target))
        return applied

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper: total number of nodes and edges."""
        return self.num_nodes + self.num_edges

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every structural, label or
        attribute change.  :meth:`freeze` snapshots carry the version
        they were taken at, so downstream caches can tell whether a
        snapshot is still current."""
        return self._version

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def has_edge(self, source: Node, target: Node) -> bool:
        targets = self._succ.get(source)
        return targets is not None and target in targets

    def successors(self, node: Node) -> Set[Node]:
        return self._succ[node]

    def predecessors(self, node: Node) -> Set[Node]:
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def labels(self, node: Node) -> FrozenSet[str]:
        return self._labels[node]

    def attrs(self, node: Node) -> Dict[str, Any]:
        return self._attrs[node]

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield all nodes carrying ``label`` (index lookup, O(bucket))."""
        return iter(self._label_index.get(label, ()))

    def label_index_stats(self) -> Dict[str, int]:
        """``{label: bucket size}`` for every indexed label."""
        return {label: len(bucket) for label, bucket in self._label_index.items()}

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def descendants_within(self, source: Node, bound: int) -> Dict[Node, int]:
        """Map each node reachable from ``source`` by a path of length in
        ``[1, bound]`` to its shortest such distance.

        The empty path does not count: ``source`` itself appears in the
        result only if it lies on a cycle of length <= ``bound``.
        """
        if bound < 1:
            return {}
        # Track what has been queued, not just what has been popped:
        # otherwise a node is appended once per in-edge and the queue
        # grows to O(|E| * bound) instead of O(|V|).
        start = self._succ[source]
        dist: Dict[Node, int] = {}
        queued = set(start)
        frontier = deque((target, 1) for target in start)
        while frontier:
            node, d = frontier.popleft()
            dist[node] = d
            if d < bound:
                for target in self._succ[node]:
                    if target not in queued:
                        queued.add(target)
                        frontier.append((target, d + 1))
        return dist

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def freeze(self, shared: bool = False) -> "CompactGraph":
        """An immutable :class:`~repro.graph.compact.CompactGraph`
        snapshot of the current state.

        The snapshot is cached: repeated calls return the same object
        until the next mutation bumps :attr:`version`.  When the gap
        since the cached snapshot is pure edge churn (per the edge-op
        journal), the stale snapshot is *refreshed* through
        :meth:`CompactGraph.refreshed` -- unchanged adjacency rows and
        label/attribute tables are reused and node ids stay stable --
        instead of rebuilt, so the integer fast paths survive
        maintenance updates at affected-area cost.

        With ``shared=True`` the snapshot is additionally mirrored into
        a flat shared-memory segment
        (:class:`~repro.graph.flatbuf.SharedCompactGraph`), so shipping
        it to process-pool workers costs a segment handle instead of a
        full pickle.  Sharedness is sticky across the refresh chain:
        refreshing a shared snapshot keeps the base segment and carries
        the delta as a patch overlay.  In-process reads are unaffected
        (the shared form reuses the same row objects).
        """
        from repro.graph.compact import CompactGraph

        frozen = self._frozen
        if frozen is None or frozen.snapshot_version != self._version:
            ops = (
                None
                if frozen is None
                else self.edge_changes_since(frozen.snapshot_version)
            )
            # Refresh only while the touched area is small; past ~a
            # quarter of the edge set a full rebuild is no slower and
            # produces a snapshot free of journal bookkeeping.
            if ops is not None and len(ops) < max(64, self._num_edges // 4):
                # Dispatch on the cached snapshot's own class so a
                # shared snapshot refreshes into a shared one (keeping
                # its segment) and a plain one stays plain.
                frozen = type(frozen).refreshed(frozen, self, self._version, ops)
            else:
                frozen = CompactGraph(self, self._version)
            self._frozen = frozen
        if shared:
            from repro.graph.flatbuf import SharedCompactGraph

            if not isinstance(frozen, SharedCompactGraph):
                frozen = SharedCompactGraph.share(frozen)
                self._frozen = frozen
        return frozen

    def copy(self) -> "DataGraph":
        """Return an independent deep-enough copy (attribute dicts copied)."""
        clone = DataGraph()
        for node in self._succ:
            clone._succ[node] = set(self._succ[node])
            clone._pred[node] = set(self._pred[node])
            clone._labels[node] = self._labels[node]
            clone._attrs[node] = dict(self._attrs[node])
        for label, bucket in self._label_index.items():
            clone._label_index[label] = set(bucket)
        clone._num_edges = self._num_edges
        clone._version = self._version
        # The clone starts with an empty journal: it can only vouch for
        # changes applied to *it* from this point on.
        clone._oplog_floor = self._version
        return clone

    def __repr__(self) -> str:
        return f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges})"
