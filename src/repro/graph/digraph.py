"""Directed data graphs with node labels and attributes.

A data graph (Section II-A of the paper) is a directed graph
``G = (V, E, L)`` where ``L`` assigns each node a *set* of labels drawn
from an alphabet.  We additionally let nodes carry an attribute
dictionary so that patterns may use Boolean search conditions such as
``C = "Music" and V >= 10_000`` (Fig. 7 of the paper); plain labels are
kept in a separate set for fast label-only matching.

The class is deliberately dictionary-based (adjacency sets) rather than a
wrapper over an external library: the matching engines need O(1) access
to successor/predecessor sets and cheap membership tests, and nothing
else.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

Node = Hashable
Edge = Tuple[Node, Node]


class DataGraph:
    """A directed graph whose nodes carry label sets and attributes.

    Parameters
    ----------
    nodes:
        Optional iterable of ``(node, labels, attrs)`` triples; ``labels``
        may be a single string or an iterable of strings, ``attrs`` a
        mapping or ``None``.
    edges:
        Optional iterable of ``(source, target)`` pairs.  Nodes appearing
        only in ``edges`` are created with empty labels.

    Examples
    --------
    >>> g = DataGraph()
    >>> g.add_node("Ann", labels="PM")
    >>> g.add_node("Bob", labels="DBA", attrs={"years": 4})
    >>> g.add_edge("Ann", "Bob")
    >>> sorted(g.successors("Ann"))
    ['Bob']
    >>> g.labels("Bob")
    frozenset({'DBA'})
    """

    __slots__ = ("_succ", "_pred", "_labels", "_attrs", "_num_edges")

    def __init__(
        self,
        nodes: Optional[Iterable[Tuple[Node, Any, Optional[Mapping[str, Any]]]]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._labels: Dict[Node, FrozenSet[str]] = {}
        self._attrs: Dict[Node, Dict[str, Any]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node, labels, attrs in nodes:
                self.add_node(node, labels=labels, attrs=attrs)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: Node,
        labels: Any = (),
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Add ``node`` (or update its labels/attributes if present)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._labels[node] = frozenset()
            self._attrs[node] = {}
        if labels:
            new = frozenset([labels]) if isinstance(labels, str) else frozenset(labels)
            self._labels[node] = self._labels[node] | new
        if attrs:
            self._attrs[node].update(attrs)

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``source -> target`` (idempotent)."""
        if source not in self._succ:
            self.add_node(source)
        if target not in self._succ:
            self.add_node(target)
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._num_edges += 1

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        for source, target in edges:
            self.add_edge(source, target)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``; raise ``KeyError`` if absent."""
        if source not in self._succ or target not in self._succ[source]:
            raise KeyError((source, target))
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise KeyError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]
        del self._attrs[node]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper: total number of nodes and edges."""
        return self.num_nodes + self.num_edges

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def has_edge(self, source: Node, target: Node) -> bool:
        targets = self._succ.get(source)
        return targets is not None and target in targets

    def successors(self, node: Node) -> Set[Node]:
        return self._succ[node]

    def predecessors(self, node: Node) -> Set[Node]:
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def labels(self, node: Node) -> FrozenSet[str]:
        return self._labels[node]

    def attrs(self, node: Node) -> Dict[str, Any]:
        return self._attrs[node]

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield all nodes carrying ``label`` (linear scan)."""
        for node, labels in self._labels.items():
            if label in labels:
                yield node

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def descendants_within(self, source: Node, bound: int) -> Dict[Node, int]:
        """Map each node reachable from ``source`` by a path of length in
        ``[1, bound]`` to its shortest such distance.

        The empty path does not count: ``source`` itself appears in the
        result only if it lies on a cycle of length <= ``bound``.
        """
        if bound < 1:
            return {}
        dist: Dict[Node, int] = {}
        frontier = deque((target, 1) for target in self._succ[source])
        while frontier:
            node, d = frontier.popleft()
            if node in dist:
                continue
            dist[node] = d
            if d < bound:
                for target in self._succ[node]:
                    if target not in dist:
                        frontier.append((target, d + 1))
        return dist

    def copy(self) -> "DataGraph":
        """Return an independent deep-enough copy (attribute dicts copied)."""
        clone = DataGraph()
        for node in self._succ:
            clone._succ[node] = set(self._succ[node])
            clone._pred[node] = set(self._pred[node])
            clone._labels[node] = self._labels[node]
            clone._attrs[node] = dict(self._attrs[node])
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:
        return f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges})"
