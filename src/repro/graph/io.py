"""Serialization for data graphs and patterns.

Three formats are provided:

* a JSON document for :class:`~repro.graph.digraph.DataGraph` (labels,
  attributes and edges) -- lossless round trips;
* a JSON document for (bounded) patterns, including search conditions;
* a SNAP-style whitespace-separated edge list reader
  (:func:`read_snap_edges`), so the original Amazon/YouTube downloads
  can be loaded if available (comment lines starting with ``#`` are
  skipped); labels/attributes can then be attached separately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

from repro.graph.conditions import (
    Atom,
    AttributeCondition,
    Condition,
    Label,
    TrueCondition,
)
from repro.graph.digraph import DataGraph
from repro.graph.pattern import ANY, BoundedPattern, Pattern


# ----------------------------------------------------------------------
# Node identities <-> JSON
# ----------------------------------------------------------------------
def node_to_json(node: Any) -> Any:
    """Encode a node id; tuples (arbitrarily nested) become lists."""
    if isinstance(node, tuple):
        return [node_to_json(part) for part in node]
    return node


def node_from_json(node: Any) -> Any:
    """Restore a node id written by :func:`node_to_json`: lists become
    tuples again, recursively (generated queries use nested-tuple ids)."""
    if isinstance(node, list):
        return tuple(node_from_json(part) for part in node)
    return node


# ----------------------------------------------------------------------
# Conditions <-> JSON
# ----------------------------------------------------------------------
def condition_to_json(cond: Condition) -> Dict[str, Any]:
    if isinstance(cond, TrueCondition):
        return {"kind": "true"}
    if isinstance(cond, Label):
        return {"kind": "label", "name": cond.name}
    if isinstance(cond, AttributeCondition):
        return {
            "kind": "attrs",
            "label": cond.label,
            "atoms": [[a.attr, a.op, a.value] for a in cond.atoms],
        }
    raise TypeError(f"cannot serialize condition {cond!r}")


def condition_from_json(doc: Dict[str, Any]) -> Condition:
    kind = doc.get("kind")
    if kind == "true":
        return TrueCondition()
    if kind == "label":
        return Label(doc["name"])
    if kind == "attrs":
        atoms = tuple(Atom(attr, op, value) for attr, op, value in doc["atoms"])
        return AttributeCondition(atoms, label=doc.get("label", ""))
    raise ValueError(f"unknown condition kind {kind!r}")


# ----------------------------------------------------------------------
# DataGraph <-> JSON
# ----------------------------------------------------------------------
def graph_to_json(graph: DataGraph) -> Dict[str, Any]:
    nodes = []
    for node in graph.nodes():
        nodes.append(
            {
                "id": node,
                "labels": sorted(graph.labels(node)),
                "attrs": graph.attrs(node),
            }
        )
    return {"nodes": nodes, "edges": [list(edge) for edge in graph.edges()]}


def graph_from_json(doc: Dict[str, Any]) -> DataGraph:
    graph = DataGraph()
    for node_doc in doc["nodes"]:
        graph.add_node(
            node_from_json(node_doc["id"]),
            labels=node_doc.get("labels", ()),
            attrs=node_doc.get("attrs"),
        )
    for source, target in doc["edges"]:
        graph.add_edge(node_from_json(source), node_from_json(target))
    return graph


def write_graph(graph: DataGraph, path: Union[str, Path]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_json(graph), handle)


def read_graph(path: Union[str, Path]) -> DataGraph:
    with open(path, encoding="utf-8") as handle:
        return graph_from_json(json.load(handle))


# ----------------------------------------------------------------------
# Patterns <-> JSON
# ----------------------------------------------------------------------
def pattern_to_json(pattern: Pattern) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "bounded": isinstance(pattern, BoundedPattern),
        "nodes": [
            {"id": node, "condition": condition_to_json(pattern.condition(node))}
            for node in pattern.nodes()
        ],
    }
    if isinstance(pattern, BoundedPattern):
        doc["edges"] = [
            [source, target, "*" if pattern.bound((source, target)) is ANY
             else pattern.bound((source, target))]
            for source, target in pattern.edges()
        ]
    else:
        doc["edges"] = [list(edge) for edge in pattern.edges()]
    return doc


def pattern_from_json(doc: Dict[str, Any]) -> Pattern:
    bounded = doc.get("bounded", False)
    pattern: Pattern = BoundedPattern() if bounded else Pattern()
    for node_doc in doc["nodes"]:
        pattern.add_node(
            node_from_json(node_doc["id"]),
            condition_from_json(node_doc["condition"]),
        )
    for edge_doc in doc["edges"]:
        if bounded:
            source, target, bound = edge_doc
            pattern.add_edge(
                node_from_json(source),
                node_from_json(target),
                ANY if bound == "*" else bound,
            )  # type: ignore[call-arg]
        else:
            source, target = edge_doc
            pattern.add_edge(node_from_json(source), node_from_json(target))
    return pattern


def write_pattern(pattern: Pattern, path: Union[str, Path]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(pattern_to_json(pattern), handle)


def read_pattern(path: Union[str, Path]) -> Pattern:
    with open(path, encoding="utf-8") as handle:
        return pattern_from_json(json.load(handle))


# ----------------------------------------------------------------------
# SNAP edge lists
# ----------------------------------------------------------------------
def read_snap_edges(
    path: Union[str, Path], limit: int = 0, max_edges: int = 0
) -> Iterator[Tuple[str, str]]:
    """Stream a SNAP whitespace-separated edge list (``# comments``
    skipped), one ``(source, target)`` pair at a time.

    The file is never held in memory, so multi-GB downloads feed the
    out-of-core ingest path (:func:`repro.graph.ingest.ingest_snapshot`)
    directly.  ``limit`` > 0 silently truncates after that many edges
    (loading a prefix of the 1.78M-edge Amazon file on small machines);
    ``max_edges`` > 0 instead *rejects* longer inputs with a
    ``ValueError`` -- the guard for callers that would buffer what they
    read.
    """
    count = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                continue
            count += 1
            if max_edges and count > max_edges:
                raise ValueError(
                    f"{path}: edge list exceeds max_edges={max_edges}; "
                    "raise the cap, pass limit= to truncate, or stream it "
                    "through `repro ingest` for out-of-core loading"
                )
            yield (parts[0], parts[1])
            if limit and count >= limit:
                return


def graph_from_edges(
    edges: Iterable[Tuple[str, str]], labeler=None, max_edges: int = 0
) -> DataGraph:
    """Build a :class:`DataGraph` from an edge iterable.

    Fully streaming: edges are consumed one at a time and never
    buffered, so a generator (e.g. :func:`read_snap_edges`) flows
    straight into the graph.  ``labeler(node_id) -> labels`` optionally
    assigns labels; by default nodes get no labels (attach them later
    via ``add_node``).  ``max_edges`` > 0 rejects longer inputs with a
    ``ValueError`` -- an in-memory ``DataGraph`` is the wrong tool past
    a few million edges (use ``repro ingest`` instead).
    """
    graph = DataGraph()
    count = 0
    for source, target in edges:
        count += 1
        if max_edges and count > max_edges:
            raise ValueError(
                f"edge stream exceeds max_edges={max_edges}; an in-memory "
                "DataGraph cannot hold it -- use `repro ingest` / "
                "repro.graph.ingest.ingest_snapshot for out-of-core loading"
            )
        if source not in graph:
            graph.add_node(source, labels=labeler(source) if labeler else ())
        if target not in graph:
            graph.add_node(target, labels=labeler(target) if labeler else ())
        graph.add_edge(source, target)
    return graph
