"""Graph substrate: data graphs, patterns, search conditions and SCC tools.

This subpackage provides everything the matching algorithms stand on:

* :class:`~repro.graph.digraph.DataGraph` -- a directed graph whose nodes
  carry label sets and attribute dictionaries (Section II-A of the paper),
  with an incrementally-maintained label index and a mutation version
  counter.
* :class:`~repro.graph.compact.CompactGraph` -- the immutable integer-id
  snapshot produced by :meth:`DataGraph.freeze`, the read-optimized
  backend under batch serving.
* :mod:`~repro.graph.conditions` -- node search conditions ``fv`` (plain
  labels or Boolean predicates as in Fig. 7) together with a sound
  implication test used by view-match computation.
* :class:`~repro.graph.pattern.Pattern` and
  :class:`~repro.graph.pattern.BoundedPattern` -- graph pattern queries
  ``Qs`` and bounded pattern queries ``Qb``.
* :mod:`~repro.graph.scc` -- Tarjan strongly connected components and the
  edge *ranks* driving the bottom-up MatchJoin optimization (Section III).
* :mod:`~repro.graph.io` -- serialization, including a SNAP edge-list
  reader for users who have the original datasets.
"""

from repro.graph.conditions import (
    AttributeCondition,
    Condition,
    Label,
    P,
    TrueCondition,
    implies,
)
from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.flatbuf import FlatStore, SharedCompactGraph, live_segment_names
from repro.graph.pattern import ANY, BoundedPattern, Pattern

__all__ = [
    "ANY",
    "AttributeCondition",
    "BoundedPattern",
    "CompactGraph",
    "Condition",
    "DataGraph",
    "FlatStore",
    "Label",
    "P",
    "Pattern",
    "SharedCompactGraph",
    "TrueCondition",
    "implies",
    "live_segment_names",
]
