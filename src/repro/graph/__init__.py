"""Graph substrate: data graphs, patterns, search conditions and SCC tools.

This subpackage provides everything the matching algorithms stand on:

* :class:`~repro.graph.digraph.DataGraph` -- a directed graph whose nodes
  carry label sets and attribute dictionaries (Section II-A of the paper),
  with an incrementally-maintained label index and a mutation version
  counter.
* :class:`~repro.graph.compact.CompactGraph` -- the immutable integer-id
  snapshot produced by :meth:`DataGraph.freeze`, the read-optimized
  backend under batch serving.
* :mod:`~repro.graph.conditions` -- node search conditions ``fv`` (plain
  labels or Boolean predicates as in Fig. 7) together with a sound
  implication test used by view-match computation.
* :class:`~repro.graph.pattern.Pattern` and
  :class:`~repro.graph.pattern.BoundedPattern` -- graph pattern queries
  ``Qs`` and bounded pattern queries ``Qb``.
* :mod:`~repro.graph.scc` -- Tarjan strongly connected components and the
  edge *ranks* driving the bottom-up MatchJoin optimization (Section III).
* :mod:`~repro.graph.io` -- serialization, including a SNAP edge-list
  reader for users who have the original datasets.
* :mod:`~repro.graph.flatbuf` -- flat-buffer snapshot storage over
  pluggable segment backends (``shm`` | ``bytes`` | ``file``), the
  ``file`` backend being versioned, checksummed on-disk segments
  attached read-only via ``mmap``.
* :mod:`~repro.graph.snapshot` -- persistent snapshot directories:
  :class:`~repro.graph.snapshot.SnapshotStore` saves and reloads whole
  graphs (and their view catalogs) without rebuilding.
* :mod:`~repro.graph.ingest` -- streaming out-of-core ingest: build a
  sharded snapshot from an edge list of any size under a flat memory
  ceiling.
"""

from repro.graph.conditions import (
    AttributeCondition,
    Condition,
    Label,
    P,
    TrueCondition,
    implies,
)
from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.flatbuf import (
    FlatStore,
    SegmentFormatError,
    SharedCompactGraph,
    live_segment_names,
    verify_segment_file,
)
from repro.graph.ingest import IngestReport, ingest_snapshot
from repro.graph.pattern import ANY, BoundedPattern, Pattern
from repro.graph.snapshot import (
    LoadedSnapshot,
    SnapshotError,
    SnapshotStore,
)

__all__ = [
    "ANY",
    "AttributeCondition",
    "BoundedPattern",
    "CompactGraph",
    "Condition",
    "DataGraph",
    "FlatStore",
    "IngestReport",
    "Label",
    "LoadedSnapshot",
    "P",
    "Pattern",
    "SegmentFormatError",
    "SharedCompactGraph",
    "SnapshotError",
    "SnapshotStore",
    "TrueCondition",
    "implies",
    "ingest_snapshot",
    "live_segment_names",
    "verify_segment_file",
]
