"""Graph pattern queries ``Qs`` and bounded pattern queries ``Qb``.

A pattern query (Section II-A) is a directed graph ``Qs = (Vp, Ep, fv)``
whose nodes carry search conditions.  A bounded pattern query (Section
VI) additionally assigns each edge a bound ``fe(e)`` that is a positive
integer ``k`` (the edge may match any path of length <= k) or ``*``
(any nonempty path).  Plain patterns are exactly bounded patterns with
``fe(e) = 1`` everywhere, and :meth:`Pattern.bounded` performs that
promotion.

Pattern nodes are identified by arbitrary hashable ids so that queries
such as the paper's ``Qs`` in Fig. 1(c) can name nodes ``"PM"``,
``"DBA1"``, ``"PRG1"`` etc. while two distinct nodes share the label
``DBA``.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.graph.conditions import Condition, as_condition

PNode = Hashable
PEdge = Tuple[PNode, PNode]


class _Any:
    """Singleton sentinel for the unbounded edge bound ``*``."""

    _instance: Optional["_Any"] = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self) -> Tuple[Any, Tuple[Any, ...]]:
        return (_Any, ())


#: The ``*`` bound: an edge may match any nonempty path.
ANY = _Any()

Bound = Union[int, _Any]


def bound_le(small: Bound, big: Bound) -> bool:
    """Partial order on bounds: is every path allowed by ``small`` allowed
    by ``big``?  ``k <= k'`` for integers, anything ``<= *``, and ``*``
    only ``<= *``.
    """
    if big is ANY:
        return True
    if small is ANY:
        return False
    return small <= big


def check_bound(bound: Bound) -> Bound:
    if bound is ANY:
        return bound
    if isinstance(bound, bool) or not isinstance(bound, int):
        raise ValueError(f"edge bound must be a positive int or ANY, got {bound!r}")
    if bound < 1:
        raise ValueError(f"edge bound must be >= 1, got {bound}")
    return bound


class Pattern:
    """A graph pattern query ``Qs = (Vp, Ep, fv)``.

    Examples
    --------
    The paper's Fig. 1(c) query::

        q = Pattern()
        q.add_node("PM", "PM")
        q.add_node("DBA1", "DBA"); q.add_node("DBA2", "DBA")
        q.add_node("PRG1", "PRG"); q.add_node("PRG2", "PRG")
        q.add_edge("PM", "DBA1"); q.add_edge("PM", "PRG2")
        q.add_edge("DBA1", "PRG1"); q.add_edge("PRG1", "DBA2")
        q.add_edge("DBA2", "PRG2"); q.add_edge("PRG2", "DBA1")
    """

    def __init__(
        self,
        nodes: Optional[Mapping[PNode, Any]] = None,
        edges: Optional[Iterable[PEdge]] = None,
    ) -> None:
        self._cond: Dict[PNode, Condition] = {}
        self._succ: Dict[PNode, Set[PNode]] = {}
        self._pred: Dict[PNode, Set[PNode]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node, cond in nodes.items():
                self.add_node(node, cond)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: PNode, condition: Any) -> None:
        """Add a pattern node with a search condition (string = label)."""
        self._cond[node] = as_condition(condition)
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, source: PNode, target: PNode) -> None:
        """Add a pattern edge between two *existing* pattern nodes."""
        if source not in self._cond:
            raise KeyError(f"unknown pattern node {source!r}")
        if target not in self._cond:
            raise KeyError(f"unknown pattern node {target!r}")
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._num_edges += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: PNode) -> bool:
        return node in self._cond

    def __len__(self) -> int:
        return len(self._cond)

    @property
    def num_nodes(self) -> int:
        return len(self._cond)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|Qs|``: total number of nodes and edges."""
        return self.num_nodes + self._num_edges

    def nodes(self) -> Iterator[PNode]:
        return iter(self._cond)

    def edges(self) -> List[PEdge]:
        return [
            (source, target)
            for source, targets in self._succ.items()
            for target in targets
        ]

    def edge_set(self) -> FrozenSet[PEdge]:
        return frozenset(self.edges())

    def has_edge(self, source: PNode, target: PNode) -> bool:
        return source in self._succ and target in self._succ[source]

    def condition(self, node: PNode) -> Condition:
        return self._cond[node]

    def successors(self, node: PNode) -> Set[PNode]:
        return self._succ[node]

    def predecessors(self, node: PNode) -> Set[PNode]:
        return self._pred[node]

    def out_edges(self, node: PNode) -> List[PEdge]:
        return [(node, target) for target in self._succ[node]]

    def in_edges(self, node: PNode) -> List[PEdge]:
        return [(source, node) for source in self._pred[node]]

    def isolated_nodes(self) -> List[PNode]:
        """Nodes with no incident pattern edges (handled by label-only
        matching in direct evaluation; not coverable by views)."""
        return [
            node
            for node in self._cond
            if not self._succ[node] and not self._pred[node]
        ]

    def is_connected(self) -> bool:
        """Weak connectivity (the paper assumes connected patterns)."""
        if not self._cond:
            return True
        seen: Set[PNode] = set()
        stack = [next(iter(self._cond))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node] - seen)
            stack.extend(self._pred[node] - seen)
        return len(seen) == len(self._cond)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def bounded(self, default: Bound = 1) -> "BoundedPattern":
        """Promote to a :class:`BoundedPattern` with ``fe(e) = default``."""
        qb = BoundedPattern()
        for node, cond in self._cond.items():
            qb.add_node(node, cond)
        for source, target in self.edges():
            qb.add_edge(source, target, bound=default)
        return qb

    def copy(self) -> "Pattern":
        clone = Pattern()
        for node, cond in self._cond.items():
            clone.add_node(node, cond)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def subpattern(self, edges: Iterable[PEdge]) -> "Pattern":
        """The pattern induced by ``edges`` (nodes restricted to endpoints)."""
        sub = Pattern()
        edges = list(edges)
        for source, target in edges:
            if source not in self._cond or not self.has_edge(source, target):
                raise KeyError(f"{(source, target)!r} is not an edge of the pattern")
        for source, target in edges:
            if source not in sub:
                sub.add_node(source, self._cond[source])
            if target not in sub:
                sub.add_node(target, self._cond[target])
            sub.add_edge(source, target)
        return sub

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nodes={self.num_nodes}, edges={self.num_edges})"


class BoundedPattern(Pattern):
    """A bounded pattern query ``Qb = (Vp, Ep, fv, fe)`` (Section VI)."""

    def __init__(
        self,
        nodes: Optional[Mapping[PNode, Any]] = None,
        edges: Optional[Iterable[Tuple[PNode, PNode, Bound]]] = None,
    ) -> None:
        self._bound: Dict[PEdge, Bound] = {}
        super().__init__(nodes=nodes, edges=None)
        if edges is not None:
            for source, target, bound in edges:
                self.add_edge(source, target, bound)

    def add_edge(self, source: PNode, target: PNode, bound: Bound = 1) -> None:  # type: ignore[override]
        super().add_edge(source, target)
        self._bound[(source, target)] = check_bound(bound)

    def bound(self, edge: PEdge) -> Bound:
        return self._bound[edge]

    def bounds(self) -> Dict[PEdge, Bound]:
        return dict(self._bound)

    def max_finite_bound(self) -> int:
        """Largest finite edge bound (1 if all edges are ``*``)."""
        finite = [b for b in self._bound.values() if b is not ANY]
        return max(finite) if finite else 1

    def has_unbounded_edge(self) -> bool:
        return any(b is ANY for b in self._bound.values())

    def bounded(self, default: Bound = 1) -> "BoundedPattern":
        return self.copy()

    def unbounded_pattern(self) -> Pattern:
        """Drop the bounds (only meaningful when all bounds are 1)."""
        q = Pattern()
        for node in self.nodes():
            q.add_node(node, self.condition(node))
        for source, target in self.edges():
            q.add_edge(source, target)
        return q

    def copy(self) -> "BoundedPattern":
        clone = BoundedPattern()
        for node in self.nodes():
            clone.add_node(node, self.condition(node))
        for edge in self.edges():
            clone.add_edge(edge[0], edge[1], self._bound[edge])
        return clone

    def subpattern(self, edges: Iterable[PEdge]) -> "BoundedPattern":  # type: ignore[override]
        sub = BoundedPattern()
        edges = list(edges)
        for source, target in edges:
            if source not in self or not self.has_edge(source, target):
                raise KeyError(f"{(source, target)!r} is not an edge of the pattern")
        for source, target in edges:
            if source not in sub:
                sub.add_node(source, self.condition(source))
            if target not in sub:
                sub.add_node(target, self.condition(target))
            sub.add_edge(source, target, self._bound[(source, target)])
        return sub
