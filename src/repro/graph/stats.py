"""Descriptive statistics over data graphs.

Used by the dataset generators (to verify they hit their target label
and degree distributions) and by the benchmark reports (to quote the
``|V(G)| / |G|`` view-size fractions the paper reports, e.g. "the
overall size of V(G) is no more than 4% of the size of the Youtube
graph").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.graph.digraph import DataGraph


@dataclass
class GraphStats:
    """A summary of a data graph's shape."""

    num_nodes: int
    num_edges: int
    label_counts: Dict[str, int] = field(default_factory=dict)
    max_out_degree: int = 0
    max_in_degree: int = 0
    avg_out_degree: float = 0.0

    @property
    def size(self) -> int:
        return self.num_nodes + self.num_edges


def graph_stats(graph: DataGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph`` in one pass."""
    labels: Counter = Counter()
    max_out = max_in = 0
    for node in graph.nodes():
        labels.update(graph.labels(node))
        max_out = max(max_out, graph.out_degree(node))
        max_in = max(max_in, graph.in_degree(node))
    n = graph.num_nodes
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        label_counts=dict(labels),
        max_out_degree=max_out,
        max_in_degree=max_in,
        avg_out_degree=(graph.num_edges / n) if n else 0.0,
    )


def size_fraction(part_size: int, whole: DataGraph) -> float:
    """``part_size`` as a fraction of ``|G|`` (nodes + edges)."""
    whole_size = whole.size
    return part_size / whole_size if whole_size else 0.0
