"""Strongly connected components and edge ranks for the bottom-up strategy.

Section III of the paper optimizes MatchJoin by processing pattern edges
in ascending *rank* order.  Ranks are defined on the condensation
``G_SCC`` of the pattern: ``r(u) = 0`` when ``u``'s SCC is a leaf of the
condensation, otherwise ``r(u) = max(1 + r(u'))`` over SCC successors;
the rank of an edge ``(u', u)`` is ``r(u)``.

The implementation is an iterative Tarjan (no recursion, so patterns of
arbitrary depth are fine) over any object exposing ``nodes()`` and
``successors(node)`` -- both :class:`~repro.graph.digraph.DataGraph` and
:class:`~repro.graph.pattern.Pattern` qualify.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

Node = Hashable


def tarjan_scc(graph) -> List[List[Node]]:
    """Strongly connected components in reverse topological order.

    The returned list is ordered so that every SCC appears before any of
    its predecessors in the condensation (i.e. leaves first), which is
    exactly the order the rank computation wants.
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    result: List[List[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, iterator over successors).
        work: List[Tuple[Node, List[Node]]] = [(root, list(graph.successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            while successors:
                succ = successors.pop()
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, list(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def condensation(graph) -> Tuple[Dict[Node, int], List[Set[int]]]:
    """Map each node to its SCC id and return the condensation adjacency.

    SCC ids follow the reverse-topological order of :func:`tarjan_scc`
    (id 0 is a leaf).  The adjacency list contains, for each SCC id, the
    set of successor SCC ids (excluding self loops).
    """
    components = tarjan_scc(graph)
    comp_of: Dict[Node, int] = {}
    for cid, members in enumerate(components):
        for node in members:
            comp_of[node] = cid
    succ: List[Set[int]] = [set() for _ in components]
    for node in graph.nodes():
        for target in graph.successors(node):
            a, b = comp_of[node], comp_of[target]
            if a != b:
                succ[a].add(b)
    return comp_of, succ


def node_ranks(graph) -> Dict[Node, int]:
    """The rank ``r(u)`` of every node, per Section III of the paper."""
    comp_of, succ = condensation(graph)
    num_components = len(succ)
    comp_rank: List[int] = [0] * num_components
    # Components are in reverse topological order, so every successor of
    # component i has an id < i and its rank is already final.
    for cid in range(num_components):
        if succ[cid]:
            comp_rank[cid] = max(1 + comp_rank[s] for s in succ[cid])
    return {node: comp_rank[cid] for node, cid in comp_of.items()}


def edge_ranks(pattern) -> Dict[Tuple[Node, Node], int]:
    """The rank of each pattern edge ``(u', u)`` is ``r(u)``."""
    ranks = node_ranks(pattern)
    return {(source, target): ranks[target] for source, target in pattern.edges()}


def nontrivial_scc_nodes(graph) -> Set[Node]:
    """Nodes in non-singleton SCCs or on self-loops (the 'cyclic part')."""
    cyclic: Set[Node] = set()
    for component in tarjan_scc(graph):
        if len(component) > 1:
            cyclic.update(component)
        else:
            node = component[0]
            if node in graph.successors(node):
                cyclic.add(node)
    return cyclic


def is_dag(graph) -> bool:
    """True when the graph has no nontrivial SCC and no self loops."""
    return not nontrivial_scc_nodes(graph)
