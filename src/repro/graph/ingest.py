"""Streaming (out-of-core) ingest: edge list -> snapshot directory.

The in-memory pipeline -- ``graph_from_edges`` then ``freeze`` then
``ShardedGraph`` -- holds the whole graph (and a copy per shard) in RAM,
so it dies at the machine's memory ceiling long before the billion-edge
datasets of conf_icde_FanWW14's Exp-3.  :func:`ingest_snapshot` replaces
it with a two-phase, bounded-memory build:

1. **Spill.**  Edges stream (never materialized) through a
   :class:`~repro.shard.partitioner.StreamingHashPartitioner`, which
   buckets them into per-shard spill files under a byte budget.  Node
   placement uses the same stable hash as the in-memory ``hash``
   strategy, so a streamed build and ``make_partition(..., "hash")``
   agree about every node's home.
2. **Build, one shard at a time.**  For each shard, its spill file is
   replayed into a throwaway :class:`~repro.graph.digraph.DataGraph`
   (own nodes first, then edges -- the node-table invariant
   ``ShardedGraph`` relies on), frozen, flat-encoded in process-private
   memory, sealed to ``shard-NNN.seg`` on disk, and *released* before
   the next shard is touched.  Peak RSS is therefore one shard's
   working set, not the graph's.

The resulting directory carries the exact manifest
:meth:`~repro.graph.snapshot.SnapshotStore.load` expects, so an ingested
graph reloads as a fully functional mmap-backed
:class:`~repro.shard.sharded.ShardedGraph` -- cut edges and foreign
predecessors included (spilled to ``crosspred-NNN.pkl`` groups) --
without ever holding the edge set in memory.
"""

from __future__ import annotations

import gc
import json
import logging
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.graph.compact import _new_token
from repro.graph.digraph import DataGraph
from repro.graph.flatbuf import encode_snapshot
from repro.graph.snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    SnapshotError,
    _dump,
)
from repro.shard.partitioner import StreamingHashPartitioner

log = logging.getLogger(__name__)


def _rss_bytes() -> int:
    """Resident set size via ``/proc/self/status`` (0 where absent)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


@dataclass
class IngestReport:
    """What :func:`ingest_snapshot` did, JSON-ready via :meth:`to_json`.

    ``peak_rss_bytes`` is the largest resident-set growth over the
    process baseline observed at shard boundaries -- the number the
    out-of-core benchmark asserts stays flat as the edge count grows.
    """

    out_dir: str
    edges: int = 0
    nodes: int = 0
    shards: int = 0
    cut_edges: int = 0
    spill_bytes: int = 0
    on_disk_bytes: int = 0
    peak_rss_bytes: int = 0
    seconds: float = 0.0
    shard_stats: List[Dict[str, int]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "out_dir": self.out_dir,
            "edges": self.edges,
            "nodes": self.nodes,
            "shards": self.shards,
            "cut_edges": self.cut_edges,
            "spill_bytes": self.spill_bytes,
            "on_disk_bytes": self.on_disk_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "seconds": self.seconds,
            "shard_stats": self.shard_stats,
        }


def ingest_snapshot(
    edges: Iterable[Tuple[str, str]],
    out_dir,
    *,
    num_shards: int = 4,
    labeler: Optional[Callable[[str], Iterable[str]]] = None,
    budget_bytes: int = 64 << 20,
    max_edges: int = 0,
    overwrite: bool = False,
) -> IngestReport:
    """Stream ``edges`` into a sharded snapshot directory at ``out_dir``.

    ``edges`` is any ``(source, target)`` iterable -- feed it
    :func:`repro.graph.io.read_snap_edges` for SNAP downloads.  Node ids
    must be strings (tab/newline-free).  ``labeler(node) -> labels``
    optionally assigns labels (applied to ghosts too, so shard-local
    label buckets match an in-memory build).  ``budget_bytes`` caps the
    spill buffers; ``max_edges`` > 0 aborts longer streams with a
    ``ValueError``.  Duplicate edges in the stream are dropped exactly
    like an in-memory build drops them (the report and manifest count
    the deduplicated graph).  Returns an :class:`IngestReport`.

    The directory is valid for
    :meth:`~repro.graph.snapshot.SnapshotStore.load` the instant its
    ``manifest.json`` lands (written last); with ``overwrite=True`` an
    existing snapshot is replaced by a rename swap of a sibling temp
    directory, so concurrent readers never see a partial build.
    """
    final = os.fspath(out_dir)
    existing = os.path.isdir(final) and bool(os.listdir(final))
    if existing and not overwrite:
        raise SnapshotError(
            f"{final}: directory exists and is not empty "
            "(pass overwrite=True to replace it)"
        )
    if existing:
        parent = os.path.dirname(os.path.abspath(final)) or "."
        tmp = tempfile.mkdtemp(prefix=".ingest-tmp-", dir=parent)
        try:
            report = _ingest_into(
                tmp, edges, num_shards, labeler, budget_bytes, max_edges
            )
            old = tmp + ".old"
            os.rename(final, old)
            os.rename(tmp, final)
            shutil.rmtree(old, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        report.out_dir = final
        return report
    created = not os.path.isdir(final)
    os.makedirs(final, exist_ok=True)
    try:
        return _ingest_into(
            final, edges, num_shards, labeler, budget_bytes, max_edges
        )
    except BaseException:
        # Never leave a partial (manifest-less) build behind; restore a
        # pre-existing empty directory instead of deleting it.
        shutil.rmtree(final, ignore_errors=True)
        if not created:
            os.makedirs(final, exist_ok=True)
        raise


def _ingest_into(
    dirpath: str,
    edges: Iterable[Tuple[str, str]],
    num_shards: int,
    labeler,
    budget_bytes: int,
    max_edges: int,
) -> IngestReport:
    start = time.perf_counter()
    baseline = _rss_bytes()
    peak = 0
    report = IngestReport(out_dir=dirpath, shards=num_shards)

    with tempfile.TemporaryDirectory(prefix="repro-ingest-spill-") as spill_dir:
        with StreamingHashPartitioner(
            num_shards, spill_dir, budget_bytes=budget_bytes
        ) as part:
            # -- phase 1: spill -----------------------------------------
            count = 0
            for source, target in edges:
                count += 1
                if max_edges and count > max_edges:
                    raise ValueError(
                        f"edge stream exceeds max_edges={max_edges}; "
                        "raise the cap or drop it for unbounded ingest"
                    )
                part.add(source, target)
            part.flush()
            peak = max(peak, _rss_bytes() - baseline)

            # -- phase 2: build one shard at a time ---------------------
            shard_files: List[dict] = []
            cross_files: Dict[str, str] = {}
            own_counts: List[int] = []
            total_nodes = 0
            total_edges = 0  # deduplicated (the DataGraph drops repeats)
            total_cut = 0
            for i in range(num_shards):
                entry, own, stats = _build_shard(dirpath, part, i, labeler)
                shard_files.append(entry)
                own_counts.append(own)
                total_nodes += own
                total_edges += entry["meta"][1]
                sources_of: Dict[str, set] = {}
                for source, target in part.cross_preds(i):
                    sources_of.setdefault(target, set()).add(source)
                group = {t: frozenset(s) for t, s in sources_of.items()}
                total_cut += sum(len(s) for s in group.values())
                if group:
                    fname = f"crosspred-{i:03d}.pkl"
                    _dump(group, os.path.join(dirpath, fname))
                    cross_files[str(i)] = fname
                report.shard_stats.append(stats)
                gc.collect()
                peak = max(peak, _rss_bytes() - baseline)

        report.edges = total_edges
        report.cut_edges = total_cut
        report.spill_bytes = part.spill_bytes

    manifest = {
        "kind": "sharded",
        "graph": {
            "nodes": total_nodes,
            "edges": report.edges,
            "snapshot_version": 0,
            "snapshot_token": _new_token(),
            "extends_token": None,
        },
        "shards": num_shards,
        "strategy": "hash",
        "own_counts": own_counts,
        "edge_cut": report.cut_edges,
        "shard_files": shard_files,
        "cross_pred": cross_files,
        "views": {},
        "format": SNAPSHOT_FORMAT,
        "created_at": time.time(),
    }
    tmp_manifest = os.path.join(dirpath, MANIFEST_NAME + ".tmp")
    with open(tmp_manifest, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    os.replace(tmp_manifest, os.path.join(dirpath, MANIFEST_NAME))

    report.nodes = total_nodes
    report.on_disk_bytes = sum(
        os.path.getsize(os.path.join(dirpath, entry))
        for entry in os.listdir(dirpath)
        if os.path.isfile(os.path.join(dirpath, entry))
    )
    report.peak_rss_bytes = max(peak, _rss_bytes() - baseline)
    report.seconds = time.perf_counter() - start
    log.info(
        "ingest: %d edges -> %d shards at %s (%d nodes, cut %d, "
        "spill %dB, peak RSS +%dB, %.2fs)",
        report.edges, num_shards, dirpath, report.nodes, report.cut_edges,
        report.spill_bytes, report.peak_rss_bytes, report.seconds,
    )
    return report


def _build_shard(
    dirpath: str, part: StreamingHashPartitioner, shard: int, labeler
) -> Tuple[dict, int, Dict[str, int]]:
    """Replay shard ``shard``'s spill records into a sealed segment file.

    Two passes over the spill file keep the node-table invariant: pass 1
    registers every *owned* node (sources, shard-internal targets, and
    cross-edge targets announced by ``n`` records) so their compact ids
    all precede the ghosts that pass 2's edges create on the fly.
    """
    graph = DataGraph()
    own: Dict[str, None] = {}
    for kind, a, b in part.shard_records(shard):
        if kind == "e":
            own.setdefault(a)
            if part.shard_of(b) == shard:
                own.setdefault(b)
        else:
            own.setdefault(a)
    for node in own:
        graph.add_node(node, labels=labeler(node) if labeler else ())
    for kind, a, b in part.shard_records(shard):
        if kind == "e":
            graph.add_edge(a, b)
    if labeler is not None:
        for node in [n for n in graph.nodes() if n not in own]:
            graph.add_node(node, labels=labeler(node))

    frozen = graph.freeze()
    seg = f"shard-{shard:03d}.seg"
    store = encode_snapshot(frozen, backend="bytes")
    store.save(os.path.join(dirpath, seg))
    entry = {
        "segment": seg,
        "meta": [
            frozen.num_nodes,
            frozen.num_edges,
            frozen.snapshot_version,
            frozen.snapshot_token,
            frozen.extends_token,
        ],
    }
    stats = {
        "shard": shard,
        "own_nodes": len(own),
        "nodes": frozen.num_nodes,
        "edges": frozen.num_edges,
        "segment_bytes": os.path.getsize(os.path.join(dirpath, seg)),
    }
    return entry, len(own), stats
