"""Edge-labeled graphs via the paper's dummy-node transformation.

Section II, Remark (2): "Our techniques can be readily extended to
graphs and queries with edge labels.  Indeed, an edge-labeled graph can
be transformed to a node-labeled graph: for each edge e, add a 'dummy'
node carrying the edge label of e, along with two unlabeled edges."

This module implements that reduction for both data graphs and
patterns, so every algorithm in the library works on edge-labeled
inputs unchanged:

* :func:`encode_graph` turns ``(source, label, target)`` triples into a
  node-labeled :class:`~repro.graph.digraph.DataGraph` where each edge
  becomes ``source -> dummy(label) -> target``;
* :func:`encode_pattern` performs the same rewrite on an edge-labeled
  pattern specification;
* :func:`decode_edge_matches` folds a match result on the encoded graph
  back to triples over the original graph (each pattern edge's matches
  are pairs (dummy in, dummy out) stitched at the dummy node).

Dummy nodes carry the reserved label prefix ``"edge:"`` plus the edge
label, so they can never collide with ordinary node labels.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern

Node = Hashable
Triple = Tuple[Node, str, Node]

#: Reserved prefix for dummy-node labels.
EDGE_LABEL_PREFIX = "edge:"


def dummy_label(edge_label: str) -> str:
    return EDGE_LABEL_PREFIX + edge_label


def encode_graph(
    nodes: Iterable[Tuple[Node, object]],
    triples: Iterable[Triple],
) -> DataGraph:
    """Build the node-labeled encoding of an edge-labeled graph.

    ``nodes`` yields ``(node, labels)``; ``triples`` yields
    ``(source, edge_label, target)``.  Each triple becomes the two-edge
    path ``source -> ('edge', source, edge_label, target) -> target``
    whose middle node carries ``edge:<label>``.
    """
    graph = DataGraph()
    for node, labels in nodes:
        graph.add_node(node, labels=labels)
    for source, edge_label, target in triples:
        if source not in graph:
            graph.add_node(source)
        if target not in graph:
            graph.add_node(target)
        dummy = ("edge", source, edge_label, target)
        graph.add_node(dummy, labels=dummy_label(edge_label))
        graph.add_edge(source, dummy)
        graph.add_edge(dummy, target)
    return graph


def encode_pattern(
    nodes: Dict[Node, object],
    triples: Iterable[Tuple[Node, str, Node]],
) -> Tuple[Pattern, Dict[Triple, Tuple[Tuple[Node, Node], Tuple[Node, Node]]]]:
    """Encode an edge-labeled pattern.

    Returns ``(pattern, edge_map)`` where ``edge_map`` sends each
    original labeled edge to its pair of encoded pattern edges
    ``((u, dummy), (dummy, u'))`` -- the handle needed to decode match
    results.
    """
    pattern = Pattern()
    for node, condition in nodes.items():
        pattern.add_node(node, condition)
    edge_map: Dict[Triple, Tuple[Tuple[Node, Node], Tuple[Node, Node]]] = {}
    for index, (source, edge_label, target) in enumerate(triples):
        dummy = ("edge", index, edge_label)
        pattern.add_node(dummy, dummy_label(edge_label))
        pattern.add_edge(source, dummy)
        pattern.add_edge(dummy, target)
        edge_map[(source, edge_label, target)] = (
            (source, dummy),
            (dummy, target),
        )
    return pattern, edge_map


def decode_edge_matches(
    result,
    edge_map: Dict[Triple, Tuple[Tuple[Node, Node], Tuple[Node, Node]]],
) -> Dict[Triple, Set[Tuple[Node, Node]]]:
    """Fold an encoded match result back to labeled-edge matches.

    For each original edge ``(u, l, u')``, every match is a data pair
    ``(v, v')`` such that some dummy node links ``v`` to ``v'`` in the
    encoded graph: stitch the in-pairs and out-pairs of the dummy
    pattern node at their shared dummy data node.
    """
    decoded: Dict[Triple, Set[Tuple[Node, Node]]] = {}
    for triple, (in_edge, out_edge) in edge_map.items():
        into_dummy = result.edge_matches_of(in_edge)
        out_of_dummy: Dict[Node, List[Node]] = {}
        for dummy_node, target in result.edge_matches_of(out_edge):
            out_of_dummy.setdefault(dummy_node, []).append(target)
        pairs: Set[Tuple[Node, Node]] = set()
        for source, dummy_node in into_dummy:
            for target in out_of_dummy.get(dummy_node, ()):
                pairs.add((source, target))
        decoded[triple] = pairs
    return decoded
