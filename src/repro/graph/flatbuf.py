"""Flat-buffer storage core: zero-copy shared-memory snapshots.

The paper's complexity bounds (Theorems 1-3 and the MatchJoin algorithm
of Section V) assume an indexed, array-addressable graph.
:class:`~repro.graph.compact.CompactGraph` approximates that with
per-node Python tuples, which evaluate fast in-process but make process
fan-out expensive: every pool dispatch pays a full pickle of the object
graph (tuples, dicts, label sets) on the parent and a full unpickle on
every worker.

This module moves the snapshot's columns into *flat buffers*:

* CSR out/in adjacency as ``(indptr, indices)`` pairs of 64-bit ints;
* per-node label rows and per-label **sorted id buckets** as CSR pairs
  over an interned label table;
* node keys / attribute dicts as pickled blobs decoded lazily, once per
  process;

all packed into **one byte segment** behind a small header
(``{table: (kind, offset, nbytes)}``).  The segment's *backing* is
pluggable -- a backend registry selects between:

* ``shm`` -- :class:`multiprocessing.shared_memory.SharedMemory`, the
  default wherever the platform provides it (zero-copy process fan-out);
* ``bytes`` -- a plain in-process ``bytearray`` fallback (pickles ship
  the payload);
* ``file`` -- a **versioned on-disk segment** (fixed
  magic/version/checksum header, payload, then the pickled table
  directory as a trailer) attached read-only via ``mmap``, which is
  what makes snapshots durable: :meth:`FlatStore.save` writes one,
  :meth:`FlatStore.open` maps it back without rebuilding anything.

A :class:`SharedCompactGraph` built over such a
:class:`FlatStore` pickles as *segment name + header + meta*: workers
**attach** to the segment instead of unpickling the object graph, and
materialize only the rows their traversals actually touch
(:class:`_LazyRows`).  Ship cost becomes O(header), not O(|G|).

Segment lifecycle is deterministic and refcounted in-process:

* the *creator* process owns the segment; a ``weakref.finalize`` on the
  owning :class:`Segment` unlinks it when the last snapshot referencing
  it is garbage collected (refresh chains share one segment -- see
  :meth:`SharedCompactGraph.refreshed` -- so the unlink happens when the
  last generation drops);
* *attachers* (pool workers) close their mapping but never unlink, and
  are unregistered from the ``resource_tracker`` immediately -- without
  that, every worker's tracker would try to unlink the segment at exit
  (the well-known "leaked shared_memory" spam) and could destroy it
  under the creator;
* an in-process **attach cache** keyed by segment name makes repeated
  attaches (a payload of many extensions sharing one snapshot segment)
  resolve to one mapping and one lazily-decoded blob cache.

``live_segment_names()`` exposes the creator-side registry so tests can
assert clean teardown.
"""

from __future__ import annotations

import logging
import mmap
import os
import pickle
import secrets
import struct
import tempfile
import threading
import weakref
import zlib
from array import array
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.graph.compact import CompactGraph, Node

log = logging.getLogger(__name__)

try:  # pragma: no cover - platform probe
    from multiprocessing import resource_tracker, shared_memory

    _HAVE_SHM = True
except ImportError:  # pragma: no cover - exotic platforms
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    _HAVE_SHM = False

#: Prefix of every segment this module creates -- lets tests (and
#: operators) recognise our segments in ``/dev/shm``.
SEGMENT_PREFIX = "repro_flat_"

#: Environment switch selecting the segment backend (``shm`` | ``bytes``
#: | ``file``); unset picks shared memory where available.
BACKEND_ENV = "REPRO_FLAT_BACKEND"

#: Spool directory for env-selected ``file`` segments (defaults to the
#: system temp dir).  Persistent saves name their own paths and ignore it.
FILE_DIR_ENV = "REPRO_FLAT_DIR"

_ITEMSIZE = 8  # all integer tables are 64-bit ('q')

#: On-disk segment format: fixed little-endian header, then the payload
#: (8-aligned, offset == header size), then the pickled table directory
#: as a trailer (its length is only known after packing).  Fields:
#: magic, format version, flags (bit 0 = unsealed), payload bytes,
#: payload CRC32, directory CRC32, directory bytes.
SEGMENT_MAGIC = b"RFSEG\x00\x01\n"
SEGMENT_FORMAT_VERSION = 1
_FILE_HEADER = struct.Struct("<8sIIQIIQ")
_FILE_HEADER_SIZE = _FILE_HEADER.size  # 40: keeps the payload 8-aligned
_FLAG_UNSEALED = 1


class SegmentFormatError(ValueError):
    """An on-disk segment failed validation (bad magic, unsupported
    version, truncation, or checksum mismatch)."""


_BACKENDS = ("shm", "bytes", "file")


def resolve_backend(choice: Optional[str] = None) -> str:
    """The single backend-selection rule shared by create and attach.

    ``choice`` (or :data:`BACKEND_ENV` when ``None``) names one of
    ``shm`` | ``bytes`` | ``file``; unset and unrecognised values keep
    the historical default of shared memory, and ``shm`` quietly
    degrades to ``bytes`` on platforms without it.
    """
    if choice is None:
        choice = os.environ.get(BACKEND_ENV) or "shm"
    if choice not in _BACKENDS:
        choice = "shm"
    if choice == "shm" and not _HAVE_SHM:
        choice = "bytes"
    return choice


def _spool_dir() -> str:
    return os.environ.get(FILE_DIR_ENV) or tempfile.gettempdir()


# ----------------------------------------------------------------------
# Segment: one refcounted byte region (shared memory or plain bytes)
# ----------------------------------------------------------------------
_lock = threading.Lock()
#: Creator-side registry: name -> weakref to the owning Segment.  An
#: entry disappears when the segment is unlinked (finalizer or close).
_owned: Dict[str, "weakref.ref[Segment]"] = {}
#: Attach cache: name -> weakref to the attached Segment, so a payload
#: of many objects sharing one segment maps it exactly once per process.
_attached: Dict[str, "weakref.ref[Segment]"] = {}


def live_segment_names() -> List[str]:
    """Names of segments created by this process and not yet unlinked
    (test hook for the no-leak guarantee)."""
    with _lock:
        return [name for name, ref in _owned.items() if ref() is not None]


class Segment:
    """One byte region with deterministic, refcounted teardown.

    Created regions own their backing store: when the last Python
    reference drops (or :meth:`close` is called), shared memory is
    unlinked and spool files are deleted.  Attached regions only unmap
    and never delete (persistent segment files opened through
    :meth:`FlatStore.open` survive every attacher).  The plain
    ``bytes`` fallback needs no lifecycle at all but keeps the same
    interface, so every consumer is backend-agnostic.

    All three backends share one create/attach code path: the backend
    is picked by :func:`resolve_backend`, and the creator registry
    (``_owned``) and per-process attach cache (``_attached``) are keyed
    by the segment's name (its shm name or its file path) regardless of
    kind.
    """

    __slots__ = (
        "name",
        "nbytes",
        "kind",
        "_shm",
        "_bytes",
        "_mmap",
        "_path",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self) -> None:  # use the factories below
        self.name: str = ""
        self.nbytes: int = 0
        self.kind: str = "bytes"
        self._shm = None
        self._bytes: Optional[bytearray] = None
        self._mmap: Optional[mmap.mmap] = None
        self._path: Optional[str] = None
        self._finalizer = None

    # -- factories -----------------------------------------------------
    @classmethod
    def create(cls, nbytes: int, backend: Optional[str] = None) -> "Segment":
        """A fresh writable segment of ``nbytes`` bytes (owned)."""
        segment = cls()
        segment.nbytes = nbytes
        segment.kind = resolve_backend(backend)
        token = SEGMENT_PREFIX + secrets.token_hex(8)
        if segment.kind == "shm":
            segment.name = token
            shm = shared_memory.SharedMemory(
                name=segment.name, create=True, size=max(1, nbytes)
            )
            segment._shm = shm
            segment._finalizer = weakref.finalize(
                segment, _destroy_shm, shm, segment.name
            )
        elif segment.kind == "file":
            path = os.path.join(_spool_dir(), token + ".seg")
            segment.name = path
            segment._path = path
            with open(path, "w+b") as fh:
                fh.write(
                    _FILE_HEADER.pack(
                        SEGMENT_MAGIC,
                        SEGMENT_FORMAT_VERSION,
                        _FLAG_UNSEALED,
                        nbytes,
                        0,
                        0,
                        0,
                    )
                )
                fh.truncate(_FILE_HEADER_SIZE + nbytes)
                segment._mmap = mmap.mmap(
                    fh.fileno(), _FILE_HEADER_SIZE + nbytes, access=mmap.ACCESS_WRITE
                )
            segment._finalizer = weakref.finalize(
                segment, _destroy_file, segment._mmap, path
            )
        else:
            segment._bytes = bytearray(nbytes)
            log.debug(
                "shared memory unavailable/disabled: %d-byte segment "
                "falls back to in-process bytes", nbytes,
            )
        if segment.name:
            with _lock:
                _owned[segment.name] = weakref.ref(segment)
        return segment

    @classmethod
    def attach(cls, name: str, nbytes: int, kind: str = "shm") -> "Segment":
        """Map an existing named segment (worker side, never deletes).

        ``name`` is the shm name or the segment file path; both go
        through the same cache lookups, so a payload of many objects
        sharing one segment maps it exactly once per process.
        """
        with _lock:
            cached = _attached.get(name)
            segment = cached() if cached is not None else None
            if segment is not None:
                return segment
            owned = _owned.get(name)
            segment = owned() if owned is not None else None
            if segment is not None:
                # Same process as the creator: share the mapping.
                return segment
        if kind == "file":
            segment = cls._attach_file(name, nbytes)
        else:
            segment = cls._attach_shm(name, nbytes)
        with _lock:
            _attached[name] = weakref.ref(segment)
        return segment

    @classmethod
    def _attach_shm(cls, name: str, nbytes: int) -> "Segment":
        if not _HAVE_SHM:  # pragma: no cover - guarded by handle kind
            raise RuntimeError("shared memory is unavailable on this platform")
        shm = shared_memory.SharedMemory(name=name)
        # Python's resource tracker registers *attachers* too (< 3.13)
        # and would unlink the segment when this worker exits; the
        # creator owns the unlink, so take this mapping off the books.
        try:  # pragma: no cover - tracker internals vary by version
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        segment = cls()
        segment.name = name
        segment.nbytes = nbytes
        segment.kind = "shm"
        segment._shm = shm
        segment._finalizer = weakref.finalize(segment, _close_shm, shm)
        return segment

    @classmethod
    def _attach_file(cls, path: str, nbytes: int) -> "Segment":
        payload_nbytes, _, _, _ = _read_segment_header(path)
        if nbytes >= 0 and nbytes != payload_nbytes:
            raise SegmentFormatError(
                f"{path}: payload is {payload_nbytes} bytes, handle expected {nbytes}"
            )
        with open(path, "rb") as fh:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        segment = cls()
        segment.name = path
        segment.nbytes = payload_nbytes
        segment.kind = "file"
        segment._mmap = mm
        segment._path = path
        segment._finalizer = weakref.finalize(segment, _close_mmap, mm)
        return segment

    @classmethod
    def wrap(cls, payload: bytes) -> "Segment":
        """Adopt a plain byte string (the unpickled fallback handle)."""
        segment = cls()
        segment.nbytes = len(payload)
        segment.kind = "bytes"
        segment._bytes = bytearray(payload)
        return segment

    # -- access --------------------------------------------------------
    @property
    def backend(self) -> str:
        return self.kind

    @property
    def buf(self) -> memoryview:
        if self._shm is not None:
            return self._shm.buf[: self.nbytes]
        if self._mmap is not None:
            return memoryview(self._mmap)[
                _FILE_HEADER_SIZE : _FILE_HEADER_SIZE + self.nbytes
            ]
        return memoryview(self._bytes)

    @property
    def on_disk_bytes(self) -> int:
        """File footprint (header + payload + directory); 0 unless the
        segment is file-backed."""
        if self._path is None:
            return 0
        try:
            return os.path.getsize(self._path)
        except OSError:  # pragma: no cover - racing deletion
            return 0

    def handle(self) -> Tuple[str, object]:
        """The picklable identity of this segment: ``("shm", name)`` or
        ``("file", path)`` for named backends, ``("bytes", payload)``
        for the fallback."""
        if self.kind == "bytes":
            return ("bytes", bytes(self._bytes))
        return (self.kind, self.name)

    @classmethod
    def from_handle(cls, kind: str, value, nbytes: int) -> "Segment":
        if kind in ("shm", "file"):
            return cls.attach(value, nbytes, kind)
        return cls.wrap(value)

    def seal(self, table_header: Dict[str, Tuple[str, int, int]]) -> None:
        """Finish a writable file segment: append the pickled table
        directory, compute checksums, and mark the header sealed.

        A no-op for ``shm``/``bytes`` backends, so :meth:`FlatStore.pack`
        can call it unconditionally.  Attaching an unsealed file raises
        :class:`SegmentFormatError` (the writer crashed mid-pack).
        """
        if self.kind != "file" or self._path is None:
            return
        dir_blob = pickle.dumps(table_header, protocol=pickle.HIGHEST_PROTOCOL)
        payload = self.buf
        header = _FILE_HEADER.pack(
            SEGMENT_MAGIC,
            SEGMENT_FORMAT_VERSION,
            0,
            self.nbytes,
            zlib.crc32(payload),
            zlib.crc32(dir_blob),
            len(dir_blob),
        )
        payload.release()
        with open(self._path, "ab") as fh:
            fh.write(dir_blob)
        self._mmap[:_FILE_HEADER_SIZE] = header
        self._mmap.flush()

    def close(self) -> None:
        """Tear down eagerly (idempotent): unlink/delete if owned, unmap."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._shm = None
        self._bytes = None
        self._mmap = None

    def __repr__(self) -> str:
        return f"Segment({self.name or '<bytes>'}, {self.nbytes}B, {self.backend})"


def _destroy_shm(shm, name: str) -> None:
    """Creator-side finalizer: unlink *then* unmap.

    Unlink first so the name disappears even if exported memoryviews
    (rows handed to long-lived results) keep the mapping alive; POSIX
    keeps the memory valid for existing maps after unlink.
    """
    with _lock:
        _owned.pop(name, None)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double close
        pass
    _close_shm(shm)


def _close_shm(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # Exported row views are still alive, so the mapping must
        # outlive this handle.  Detach it (fd closed, mmap reference
        # dropped) so SharedMemory.__del__ does not retry the close and
        # raise unraisably; the map itself is reclaimed when the last
        # view dies or the process exits.
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            shm._fd = -1
        shm._mmap = None
        shm._buf = None


def _close_mmap(mm) -> None:
    try:
        mm.close()
    except BufferError:
        # Exported row views keep the mapping alive; it is reclaimed
        # when the last view dies or the process exits.
        pass


def _destroy_file(mm, path: str) -> None:
    """Creator-side finalizer for spool files: delete *then* unmap
    (POSIX keeps the pages valid for existing maps after unlink)."""
    with _lock:
        _owned.pop(path, None)
    try:
        os.unlink(path)
    except FileNotFoundError:  # pragma: no cover - double close
        pass
    _close_mmap(mm)


def _read_segment_header(path) -> Tuple[int, int, Dict[str, Tuple[str, int, int]], int]:
    """Validate a segment file's fixed header and table directory.

    Returns ``(payload_nbytes, payload_crc, table_header, file_size)``;
    raises :class:`SegmentFormatError` on any structural problem.  The
    payload CRC is *not* verified here -- that would force a full read
    of a file the caller is about to lazily mmap; use
    :func:`verify_segment_file` for the deep check.
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            raw = fh.read(_FILE_HEADER_SIZE)
            if len(raw) < _FILE_HEADER_SIZE:
                raise SegmentFormatError(f"{path}: truncated segment header")
            magic, version, flags, payload_nbytes, payload_crc, dir_crc, dir_nbytes = (
                _FILE_HEADER.unpack(raw)
            )
            if magic != SEGMENT_MAGIC:
                raise SegmentFormatError(f"{path}: not a repro segment file (bad magic)")
            if version != SEGMENT_FORMAT_VERSION:
                raise SegmentFormatError(
                    f"{path}: unsupported segment format version {version} "
                    f"(this build reads version {SEGMENT_FORMAT_VERSION})"
                )
            if flags & _FLAG_UNSEALED:
                raise SegmentFormatError(
                    f"{path}: segment was never sealed (writer crashed mid-pack?)"
                )
            if size < _FILE_HEADER_SIZE + payload_nbytes + dir_nbytes:
                raise SegmentFormatError(
                    f"{path}: truncated segment ({size} bytes, header promises "
                    f"{_FILE_HEADER_SIZE + payload_nbytes + dir_nbytes})"
                )
            fh.seek(_FILE_HEADER_SIZE + payload_nbytes)
            dir_blob = fh.read(dir_nbytes)
        if zlib.crc32(dir_blob) != dir_crc:
            raise SegmentFormatError(f"{path}: table directory checksum mismatch")
        table_header = pickle.loads(dir_blob) if dir_nbytes else {}
    except OSError as exc:
        raise SegmentFormatError(f"{path}: cannot read segment file ({exc})") from exc
    return payload_nbytes, payload_crc, table_header, size


def verify_segment_file(path) -> int:
    """Deep-verify a segment file (full payload CRC pass).

    Returns the payload byte count; raises :class:`SegmentFormatError`
    on corruption.  Reads the file in chunks, so it never maps or holds
    the payload in memory.
    """
    path = os.fspath(path)
    payload_nbytes, payload_crc, _, _ = _read_segment_header(path)
    crc = 0
    remaining = payload_nbytes
    with open(path, "rb") as fh:
        fh.seek(_FILE_HEADER_SIZE)
        while remaining:
            chunk = fh.read(min(remaining, 4 << 20))
            if not chunk:  # pragma: no cover - length checked above
                raise SegmentFormatError(f"{path}: truncated segment payload")
            crc = zlib.crc32(chunk, crc)
            remaining -= len(chunk)
    if crc != payload_crc:
        raise SegmentFormatError(f"{path}: payload checksum mismatch")
    return payload_nbytes


def _release_views(arrays: Dict[str, memoryview]) -> None:
    for view in arrays.values():
        try:
            view.release()
        except (ValueError, BufferError):  # pragma: no cover
            pass
    arrays.clear()


# ----------------------------------------------------------------------
# FlatStore: named tables + blobs in one segment behind a small header
# ----------------------------------------------------------------------
class FlatStore:
    """Named flat tables packed into one :class:`Segment`.

    Two table kinds: ``"q"`` -- an ``array('q')`` of 64-bit ints,
    8-byte aligned, exposed as a zero-copy memoryview -- and ``"blob"``
    -- an opaque byte string (usually a pickle) decoded at most once
    per process via :meth:`obj`.

    The header (``{name: (kind, offset, nbytes)}``) is deliberately
    *not* written into the segment: it travels inside the pickle of
    whatever object owns the store, which is exactly the "ships segment
    names + header" contract -- a worker needs nothing but the pickle
    bytes to address every table.
    """

    __slots__ = ("segment", "header", "_arrays", "_objs", "__weakref__")

    def __init__(self, segment: Segment, header: Dict[str, Tuple[str, int, int]]):
        self.segment = segment
        self.header = header
        self._arrays: Dict[str, memoryview] = {}
        self._objs: Dict[str, object] = {}
        # Cached table views keep the mapping "exported"; release them
        # before the segment finalizer closes the mapping (finalizers
        # run LIFO, and this one is created after the segment's).
        weakref.finalize(self, _release_views, self._arrays)

    @classmethod
    def pack(
        cls,
        arrays: Dict[str, array],
        blobs: Dict[str, bytes],
        backend: Optional[str] = None,
    ) -> "FlatStore":
        """Lay the tables out in one fresh segment."""
        header: Dict[str, Tuple[str, int, int]] = {}
        offset = 0
        for name, arr in arrays.items():
            nbytes = len(arr) * _ITEMSIZE
            header[name] = ("q", offset, nbytes)
            offset += nbytes  # arrays first: offsets stay 8-aligned
        for name, blob in blobs.items():
            header[name] = ("blob", offset, len(blob))
            offset += len(blob)
        segment = Segment.create(offset, backend)
        buf = segment.buf
        for name, arr in arrays.items():
            _, start, nbytes = header[name]
            if nbytes:
                buf[start : start + nbytes] = memoryview(arr).cast("B")
        for name, blob in blobs.items():
            _, start, nbytes = header[name]
            if nbytes:
                buf[start : start + nbytes] = blob
        del buf
        segment.seal(header)
        return cls(segment, header)

    # -- durable segments ----------------------------------------------
    def save(self, path) -> int:
        """Write this store as a sealed segment file; returns the file
        size.  The table directory rides in the file (trailer), so
        :meth:`open` needs nothing but the path."""
        path = os.fspath(path)
        dir_blob = pickle.dumps(self.header, protocol=pickle.HIGHEST_PROTOCOL)
        payload = self.segment.buf
        header = _FILE_HEADER.pack(
            SEGMENT_MAGIC,
            SEGMENT_FORMAT_VERSION,
            0,
            self.segment.nbytes,
            zlib.crc32(payload),
            zlib.crc32(dir_blob),
            len(dir_blob),
        )
        with open(path, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.write(dir_blob)
        payload.release()
        return os.path.getsize(path)

    @classmethod
    def open(cls, path, verify: bool = False) -> "FlatStore":
        """Attach a saved segment file read-only via ``mmap``.

        Header structure and directory checksum are always validated;
        ``verify=True`` additionally runs the full payload CRC pass
        (reads every byte -- skip it when you want lazy loading).
        Attaches are cached per process, like shm attaches.
        """
        path = os.fspath(path)
        if verify:
            verify_segment_file(path)
        _, _, table_header, _ = _read_segment_header(path)
        return _attach_store("file", path, -1, table_header)

    # -- pickling: segment handle + header, never the payload ----------
    def __reduce__(self):
        kind, value = self.segment.handle()
        return (_attach_store, (kind, value, self.segment.nbytes, self.header))

    # -- table access --------------------------------------------------
    def ints(self, name: str) -> memoryview:
        """Zero-copy 64-bit view of an integer table."""
        view = self._arrays.get(name)
        if view is None:
            _, start, nbytes = self.header[name]
            view = self.segment.buf[start : start + nbytes].cast("q")
            self._arrays[name] = view
        return view

    def blob(self, name: str) -> memoryview:
        _, start, nbytes = self.header[name]
        return self.segment.buf[start : start + nbytes]

    def obj(self, name: str):
        """Unpickle a blob table (memoized per process)."""
        value = self._objs.get(name)
        if value is None:
            value = pickle.loads(self.blob(name))
            self._objs[name] = value
        return value

    def table_bytes(self) -> Dict[str, int]:
        """Per-table byte footprint (the ``repro stats`` memory section)."""
        return {name: nbytes for name, (_, _, nbytes) in self.header.items()}

    @property
    def total_bytes(self) -> int:
        return self.segment.nbytes

    @property
    def backend(self) -> str:
        return self.segment.backend

    @property
    def on_disk_bytes(self) -> int:
        return self.segment.on_disk_bytes

    def __repr__(self) -> str:
        return (
            f"FlatStore({len(self.header)} tables, {self.total_bytes}B, "
            f"{self.backend})"
        )


#: Attach cache for stores: one FlatStore (and thus one decoded-blob
#: cache) per segment per process, however many payload objects
#: reference it.  Keyed by ``(kind, name)`` -- both named backends
#: (``shm`` and ``file``) share the code path.
_stores: Dict[Tuple[str, str], "weakref.ref[FlatStore]"] = {}


def _attach_store(kind, value, nbytes, header) -> FlatStore:
    key = (kind, value) if kind in ("shm", "file") else None
    if key is not None:
        with _lock:
            cached = _stores.get(key)
            store = cached() if cached is not None else None
        if store is not None:
            return store
    segment = Segment.from_handle(kind, value, nbytes)
    store = FlatStore(segment, header)
    if key is not None:
        with _lock:
            _stores[key] = weakref.ref(store)
    return store


# ----------------------------------------------------------------------
# CSR packing helpers
# ----------------------------------------------------------------------
def _pack_csr(rows) -> Tuple[array, array]:
    """``rows`` (iterable of int iterables) -> (indptr, indices)."""
    indptr = array("q", [0])
    indices = array("q")
    total = 0
    for row in rows:
        indices.extend(row)
        total += len(row)
        indptr.append(total)
    return indptr, indices


# ----------------------------------------------------------------------
# Lazy decoders over a store (worker-side structures)
# ----------------------------------------------------------------------
class _LazyRows:
    """Adjacency rows decoded on first touch.

    Python-list protocol over the CSR pair: ``rows[i]`` materializes
    ``tuple(indices[indptr[i]:indptr[i+1]])`` exactly once (a C-level
    slice copy, no pickle machinery) and caches it, so the per-process
    cost is proportional to the rows a traversal actually visits, and
    hot loops see plain tuples after first touch.  ``overrides`` (the
    refresh patch) substitutes rebuilt rows; ids at or past the base
    snapshot's node count default to empty rows (appended nodes).
    """

    __slots__ = ("_indptr", "_indices", "_cache", "_overrides", "_base")

    def __init__(
        self,
        store: FlatStore,
        kind: str,
        total: int,
        overrides: Optional[Dict[int, tuple]] = None,
    ) -> None:
        self._indptr = store.ints(kind + "_indptr")
        self._indices = store.ints(kind + "_indices")
        self._base = len(self._indptr) - 1
        self._cache: List[Optional[tuple]] = [None] * total
        self._overrides = overrides or {}

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, i: int) -> tuple:
        row = self._cache[i]
        if row is None:
            row = self._overrides.get(i)
            if row is None:
                if i < self._base:
                    row = tuple(self._indices[self._indptr[i] : self._indptr[i + 1]])
                else:
                    row = ()
            self._cache[i] = row
        return row

    def __iter__(self) -> Iterator[tuple]:
        for i in range(len(self._cache)):
            yield self[i]


class _LazyNodeTable:
    """The id -> node key decode table, unpickled on first use."""

    __slots__ = ("_store", "_appended", "_table")

    def __init__(self, store: FlatStore, appended: Optional[List[Node]] = None):
        self._store = store
        self._appended = appended
        self._table: Optional[List[Node]] = None

    def _load(self) -> List[Node]:
        table = self._table
        if table is None:
            table = self._store.obj("nodes")
            if self._appended:
                table = list(table) + list(self._appended)
            self._table = table
        return table

    def __len__(self) -> int:
        return len(self._load())

    def __getitem__(self, i):
        return self._load()[i]

    def __iter__(self):
        return iter(self._load())

    def __add__(self, other):
        return list(self._load()) + list(other)


class _LazyIds(dict):
    """node key -> id, built in one pass on first miss.

    A real ``dict`` subclass so every read path (`[]`, ``get``, ``in``)
    works; population happens at most once per process.
    """

    __slots__ = ("_nodes", "_ready")

    def __init__(self, nodes) -> None:
        super().__init__()
        self._nodes = nodes
        self._ready = False

    def _ensure(self) -> None:
        if not self._ready:
            self.update({node: i for i, node in enumerate(self._nodes)})
            self._ready = True

    def __missing__(self, key):
        if self._ready:
            raise KeyError(key)
        self._ensure()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._ensure()
        return dict.get(self, key, default)

    def __contains__(self, key) -> bool:
        self._ensure()
        return dict.__contains__(self, key)

    def __len__(self) -> int:
        self._ensure()
        return dict.__len__(self)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)


class _LazyLabelTable:
    """Per-node label frozensets decoded from the interned label CSR."""

    __slots__ = ("_store", "_cache", "_appended_start", "_appended")

    def __init__(
        self,
        store: FlatStore,
        total: int,
        appended: Optional[List[FrozenSet[str]]] = None,
    ) -> None:
        self._store = store
        self._cache: List[Optional[FrozenSet[str]]] = [None] * total
        self._appended_start = len(store.ints("label_row_indptr")) - 1
        self._appended = appended or []

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, i: int) -> FrozenSet[str]:
        labels = self._cache[i]
        if labels is None:
            if i >= self._appended_start:
                labels = self._appended[i - self._appended_start]
            else:
                store = self._store
                names = store.obj("labels")
                indptr = store.ints("label_row_indptr")
                row = store.ints("label_row_indices")[indptr[i] : indptr[i + 1]]
                labels = frozenset(names[j] for j in row)
            self._cache[i] = labels
        return labels

    def __iter__(self):
        for i in range(len(self._cache)):
            yield self[i]


class _LazyAttrTable:
    """Per-node attribute dicts, unpickled as one blob on first use."""

    __slots__ = ("_store", "_appended", "_table", "_total")

    def __init__(
        self, store: FlatStore, total: int, appended: Optional[List[dict]] = None
    ) -> None:
        self._store = store
        self._appended = appended
        self._table: Optional[List[dict]] = None
        self._total = total

    def _load(self) -> List[dict]:
        table = self._table
        if table is None:
            blob = self._store.blob("attrs")
            if len(blob) == 0:
                table = [{} for _ in range(self._total)]
            else:
                table = list(self._store.obj("attrs"))
                if self._appended:
                    table.extend(self._appended)
            self._table = table
        return table

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, i: int) -> dict:
        return self._load()[i]

    def __iter__(self):
        return iter(self._load())


class _LazyBuckets(dict):
    """label -> sorted id tuple, decoded per label on first lookup.

    The flat form stores every bucket as a **sorted id slice** of one
    indices array; a lookup materializes just that label's slice.
    ``extra`` carries the refresh patch: ids of appended nodes per
    label, concatenated after the base slice (appended ids exceed every
    base id, so the bucket stays sorted).
    """

    __slots__ = ("_store", "_extra", "_ready")

    def __init__(self, store: FlatStore, extra: Optional[Dict[str, tuple]] = None):
        super().__init__()
        self._store = store
        self._extra = extra or {}
        self._ready = False

    def _decode(self, label: str) -> Optional[tuple]:
        store = self._store
        slot = store.obj("label_slots").get(label)
        extra = self._extra.get(label, ())
        if slot is None:
            return tuple(extra) if extra else None
        indptr = store.ints("bucket_indptr")
        bucket = tuple(store.ints("bucket_indices")[indptr[slot] : indptr[slot + 1]])
        return bucket + tuple(extra) if extra else bucket

    def _ensure_all(self) -> None:
        if not self._ready:
            for label in self._store.obj("label_slots"):
                self.get(label)
            for label in self._extra:
                self.get(label)
            self._ready = True

    def __missing__(self, key):
        bucket = self._decode(key)
        if bucket is None:
            raise KeyError(key)
        dict.__setitem__(self, key, bucket)
        return bucket

    def get(self, key, default=None):
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        bucket = self._decode(key)
        if bucket is None:
            return default
        dict.__setitem__(self, key, bucket)
        return bucket

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def items(self):
        self._ensure_all()
        return dict.items(self)

    def keys(self):
        self._ensure_all()
        return dict.keys(self)

    def values(self):
        self._ensure_all()
        return dict.values(self)

    def __iter__(self):
        self._ensure_all()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._ensure_all()
        return dict.__len__(self)


# ----------------------------------------------------------------------
# Snapshot encoding
# ----------------------------------------------------------------------
def encode_snapshot(graph: CompactGraph, backend: Optional[str] = None) -> FlatStore:
    """Pack a snapshot's columns into one flat segment."""
    labels = sorted({label for labels in graph._labels for label in labels})
    slot_of = {label: i for i, label in enumerate(labels)}
    succ_indptr, succ_indices = _pack_csr(graph._succ)
    pred_indptr, pred_indices = _pack_csr(graph._pred)
    label_row_indptr, label_row_indices = _pack_csr(
        sorted(slot_of[l] for l in row) for row in graph._labels
    )
    bucket_indptr, bucket_indices = _pack_csr(
        graph._label_ids.get(label, ()) for label in labels
    )
    attrs_blob = (
        b""
        if not any(graph._attrs)
        else pickle.dumps(list(graph._attrs), protocol=pickle.HIGHEST_PROTOCOL)
    )
    return FlatStore.pack(
        arrays={
            "succ_indptr": succ_indptr,
            "succ_indices": succ_indices,
            "pred_indptr": pred_indptr,
            "pred_indices": pred_indices,
            "label_row_indptr": label_row_indptr,
            "label_row_indices": label_row_indices,
            "bucket_indptr": bucket_indptr,
            "bucket_indices": bucket_indices,
        },
        blobs={
            "labels": pickle.dumps(tuple(labels), protocol=pickle.HIGHEST_PROTOCOL),
            "label_slots": pickle.dumps(slot_of, protocol=pickle.HIGHEST_PROTOCOL),
            "nodes": pickle.dumps(list(graph._nodes), protocol=pickle.HIGHEST_PROTOCOL),
            "attrs": attrs_blob,
        },
        backend=backend,
    )


# ----------------------------------------------------------------------
# SharedCompactGraph
# ----------------------------------------------------------------------
class SharedCompactGraph(CompactGraph):
    """A :class:`CompactGraph` whose columns live in a flat segment.

    In the *creator* process the instance shares the source snapshot's
    materialized lists (same read performance as a plain snapshot) and
    additionally owns a :class:`FlatStore` mirror of them.  Pickling
    ships only the store handle, a small meta tuple and -- after
    refreshes -- the patch overlay, so a process-pool worker *attaches*
    and decodes lazily rather than unpickling ``O(|G|)`` objects.

    The snapshot token is part of the meta, so extensions shipped
    alongside the snapshot keep recognising its id space, and the
    MatchJoin fast paths engage in workers exactly as in the parent.
    """

    __slots__ = ("_flat", "_patch")

    # -- construction --------------------------------------------------
    @classmethod
    def share(cls, graph: CompactGraph) -> "SharedCompactGraph":
        """The shared form of ``graph`` (idempotent for shared inputs)."""
        if isinstance(graph, SharedCompactGraph):
            return graph
        store = encode_snapshot(graph)
        shared = cls.__new__(cls)
        for slot in CompactGraph.__slots__:
            setattr(shared, slot, getattr(graph, slot))
        shared._flat = store
        shared._patch = None
        return shared

    @property
    def flat_store(self) -> FlatStore:
        """The backing store (segment + header)."""
        return self._flat

    def flat_table_bytes(self) -> Dict[str, int]:
        """Per-table byte footprint of the flat layout."""
        return self._flat.table_bytes()

    # -- zero-copy pickling --------------------------------------------
    def __reduce__(self):
        meta = (
            self.num_nodes,
            self._num_edges,
            self.snapshot_version,
            self.snapshot_token,
            self.extends_token,
        )
        return (_attach_snapshot, (self._flat, self._patch, meta))

    # -- refresh: keep the base segment, ship a patch overlay ----------
    @classmethod
    def refreshed(
        cls, old: "SharedCompactGraph", graph, version: int, ops
    ) -> CompactGraph:
        """Refresh a shared snapshot without re-encoding the segment.

        The plain refresh runs first (unchanged row objects stay
        shared, ids stay stable); the delta against the *base segment*
        -- rebuilt adjacency rows, appended node columns, per-label
        bucket growth -- is folded into the patch overlay that rides in
        the pickle.  One segment therefore serves the whole refresh
        chain, and it is unlinked only when the last generation
        referencing it is dropped.  When the accumulated patch stops
        being small relative to the base, the chain re-encodes into a
        fresh segment instead (the patch would otherwise grow past the
        ship-cost win the segment exists for).
        """
        plain = CompactGraph.refreshed(old, graph, version, ops)
        base_n = len(old._flat.ints("succ_indptr")) - 1
        previous = old._patch or _EMPTY_PATCH
        ids = plain._ids
        succ_over = dict(previous["succ"])
        pred_over = dict(previous["pred"])
        for node in {s for _, s, _ in ops}:
            i = ids[node]
            succ_over[i] = plain._succ[i]
        for node in {t for _, _, t in ops}:
            i = ids[node]
            pred_over[i] = plain._pred[i]
        appended_nodes = list(plain._nodes[base_n:])
        patch = {
            "succ": succ_over,
            "pred": pred_over,
            "nodes": appended_nodes,
            "labels": [plain._labels[i] for i in range(base_n, plain.num_nodes)],
            "attrs": [plain._attrs[i] for i in range(base_n, plain.num_nodes)],
            "buckets": {
                label: tuple(i for i in bucket if i >= base_n)
                for label, bucket in plain._label_ids.items()
                if bucket and bucket[-1] >= base_n
            },
        }
        patch_rows = len(succ_over) + len(pred_over) + len(appended_nodes)
        if patch_rows > max(64, base_n // 4):
            return cls.share(plain)  # re-encode: patch outgrew the base
        shared = cls.__new__(cls)
        for slot in CompactGraph.__slots__:
            setattr(shared, slot, getattr(plain, slot))
        shared._flat = old._flat
        shared._patch = patch
        return shared


_EMPTY_PATCH = {"succ": {}, "pred": {}, "nodes": [], "labels": [], "attrs": [], "buckets": {}}


def _attach_snapshot(store: FlatStore, patch, meta) -> SharedCompactGraph:
    """Worker-side reconstruction: attach and decode lazily."""
    num_nodes, num_edges, version, token, extends = meta
    patch = patch or _EMPTY_PATCH
    shared = SharedCompactGraph.__new__(SharedCompactGraph)
    nodes = _LazyNodeTable(store, patch["nodes"] or None)
    shared._nodes = nodes
    shared._ids = _LazyIds(nodes)
    shared._succ = _LazyRows(store, "succ", num_nodes, patch["succ"])
    shared._pred = _LazyRows(store, "pred", num_nodes, patch["pred"])
    shared._labels = _LazyLabelTable(store, num_nodes, patch["labels"] or None)
    shared._attrs = _LazyAttrTable(store, num_nodes, patch["attrs"] or None)
    shared._label_ids = _LazyBuckets(store, patch["buckets"] or None)
    shared._succ_sets = [None] * num_nodes
    shared._pred_sets = [None] * num_nodes
    shared._num_edges = num_edges
    shared.snapshot_version = version
    shared.snapshot_token = token
    shared.extends_token = extends
    shared._flat = store
    shared._patch = patch if patch is not _EMPTY_PATCH else None
    return shared
