"""Persistent snapshot directories: save/load mmap-backed graph state.

``DataGraph.freeze(shared=True)`` produces a zero-copy, attachable
snapshot whose columns live in one flat segment -- but the segment dies
with the process.  :class:`SnapshotStore` gives that snapshot a durable
sibling: :meth:`SnapshotStore.save` writes a *snapshot directory* of
sealed segment files (see :mod:`repro.graph.flatbuf` for the on-disk
format) plus a ``manifest.json``, and :meth:`SnapshotStore.load` maps
it back read-only via ``mmap`` -- no edge list is re-read, no CSR is
rebuilt, and the lazy decode structures mean a reload touches only the
pages a query actually visits.

Directory layout::

    snapshot/
      manifest.json            # kind, counts, tokens, file map (written last)
      graph.seg                # compact: the snapshot's flat segment
      patch.pkl                # compact: refreshed() overlay (optional)
      shard-000.seg ...        # sharded: one sealed segment per shard
      patch-000.pkl ...        # sharded: per-shard patch overlays (optional)
      crosspred-000.pkl ...    # sharded: cross-shard predecessors by home shard
      view-000.seg/.pkl ...    # FlatExtension view packs (compact snapshots)
      view-000.view ...        # plain pickled views (sharded snapshots)

The manifest is written *last*, so a directory without one is never
mistaken for a valid snapshot (a crashed save leaves garbage, not a
half-snapshot).  Provenance survives the round trip: ``snapshot_token``
/ ``extends_token`` and any ``refreshed()`` patch overlay are persisted
verbatim, so a reloaded snapshot still rebinds extensions and engages
the MatchJoin id-space fast paths exactly like its in-memory origin.

Sharded snapshots reload with the composite bookkeeping rebuilt from
the per-shard node tables (O(V + boundary)); the cross-shard
predecessor table and the partition's cut-edge list stay on disk until
first touched (:class:`_LazyCrossPred` / :class:`_LazyCrossEdges`).
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import shutil
import tempfile
import time
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.flatbuf import (
    FlatStore,
    SharedCompactGraph,
    _attach_snapshot,
    verify_segment_file,
)

log = logging.getLogger(__name__)

Node = Hashable

MANIFEST_NAME = "manifest.json"
SNAPSHOT_FORMAT = 1


class SnapshotError(ValueError):
    """A snapshot directory is missing, malformed, or would be
    clobbered without ``overwrite=True``."""


# ----------------------------------------------------------------------
# Lazy boundary tables (sharded reload)
# ----------------------------------------------------------------------
class _LazyCrossPred(dict):
    """``{node: frozenset(cross-shard predecessors)}`` loaded per home
    shard on first miss.

    A real ``dict`` subclass so ``predecessors()`` keeps its one
    ``get()`` call; a lookup for a node homed in shard ``i`` loads only
    ``crosspred-i.pkl``.  Whole-table iteration loads everything.
    """

    __slots__ = ("_dir", "_files", "_home", "_loaded")

    def __init__(self, dirpath: str, files: Dict[int, str], home: Dict[Node, int]):
        super().__init__()
        self._dir = dirpath
        self._files = files
        self._home = home
        self._loaded: set = set()

    def _load_for(self, node) -> None:
        shard = self._home.get(node)
        if shard is None or shard in self._loaded:
            return
        self._loaded.add(shard)
        fname = self._files.get(shard)
        if fname is not None:
            with open(os.path.join(self._dir, fname), "rb") as fh:
                self.update(pickle.load(fh))

    def _load_all(self) -> None:
        for shard, fname in self._files.items():
            if shard not in self._loaded:
                self._loaded.add(shard)
                with open(os.path.join(self._dir, fname), "rb") as fh:
                    self.update(pickle.load(fh))

    def __missing__(self, key):
        self._load_for(key)
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        raise KeyError(key)

    def get(self, key, default=None):
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        self._load_for(key)
        return dict.get(self, key, default)

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def items(self):
        self._load_all()
        return dict.items(self)

    def keys(self):
        self._load_all()
        return dict.keys(self)

    def values(self):
        self._load_all()
        return dict.values(self)

    def __iter__(self):
        self._load_all()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._load_all()
        return dict.__len__(self)


class _LazyCrossEdges:
    """The partition's cut-edge tuple, streamed from the cross-pred
    pickles only if something actually iterates it (``refreshed()``
    does; plain serving never will).  ``len()`` answers from the
    manifest without touching disk."""

    __slots__ = ("_dir", "_files", "_count", "_cache")

    def __init__(self, dirpath: str, files: Dict[int, str], count: int):
        self._dir = dirpath
        self._files = files
        self._count = count
        self._cache: Optional[Tuple[Tuple[Node, Node], ...]] = None

    def _load(self) -> Tuple[Tuple[Node, Node], ...]:
        edges = self._cache
        if edges is None:
            collected: List[Tuple[Node, Node]] = []
            for fname in self._files.values():
                with open(os.path.join(self._dir, fname), "rb") as fh:
                    group = pickle.load(fh)
                for target, sources in group.items():
                    collected.extend((source, target) for source in sources)
            edges = self._cache = tuple(collected)
        return edges

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[Node, Node]]:
        return iter(self._load())

    def __contains__(self, edge) -> bool:
        return edge in self._load()

    def __getitem__(self, index):
        return self._load()[index]


# ----------------------------------------------------------------------
# LoadedSnapshot
# ----------------------------------------------------------------------
class LoadedSnapshot:
    """The product of :meth:`SnapshotStore.load`.

    ``graph`` is a :class:`SharedCompactGraph` or
    :class:`~repro.shard.sharded.ShardedGraph` whose columns are
    mmap-backed; ``views`` maps view names to reloaded materialized
    views.  :meth:`viewset` assembles both into a ready
    :class:`~repro.views.storage.ViewSet`.
    """

    __slots__ = ("path", "graph", "views", "manifest")

    def __init__(self, path: str, graph, views: Dict[str, Any], manifest: dict):
        self.path = path
        self.graph = graph
        self.views = views
        self.manifest = manifest

    def viewset(self):
        """A ViewSet holding the persisted definitions and extensions."""
        from repro.views.storage import ViewSet

        views = ViewSet(view.definition for view in self.views.values())
        for view in self.views.values():
            views.set_extension(view)
        return views

    def __repr__(self) -> str:
        return (
            f"LoadedSnapshot({self.path!r}, kind={self.manifest.get('kind')!r}, "
            f"views={len(self.views)})"
        )


# ----------------------------------------------------------------------
# SnapshotStore
# ----------------------------------------------------------------------
class SnapshotStore:
    """Save/load/inspect persistent snapshot directories."""

    # -- save ----------------------------------------------------------
    @staticmethod
    def save(path, snapshot, views=None, overwrite: bool = False) -> dict:
        """Persist ``snapshot`` (and optionally its views) under ``path``.

        ``snapshot`` may be a live :class:`DataGraph` (frozen shared
        here), a :class:`CompactGraph` (shared here), a
        :class:`SharedCompactGraph`, or a
        :class:`~repro.shard.sharded.ShardedGraph` (each shard shared
        in place).  ``views`` is a ViewSet or ``{name: MaterializedView}``
        mapping; views whose payload is a FlatExtension bound to this
        exact snapshot are saved as attachable segment files, everything
        else falls back to a plain pickle.

        With ``overwrite=True`` an existing snapshot is replaced via a
        sibling temp directory and rename swap, so readers never see a
        half-written directory.  Returns the manifest.
        """
        snapshot = _as_saveable(snapshot)
        extensions = _as_extensions(views)
        final = os.fspath(path)
        existing = os.path.isdir(final) and bool(os.listdir(final))
        if existing and not overwrite:
            raise SnapshotError(
                f"{final}: directory exists and is not empty "
                "(pass overwrite=True to replace it)"
            )
        if existing:
            parent = os.path.dirname(os.path.abspath(final)) or "."
            tmp = tempfile.mkdtemp(prefix=".snapshot-tmp-", dir=parent)
            try:
                manifest = _write_snapshot(tmp, snapshot, extensions)
                old = tmp + ".old"
                os.rename(final, old)
                os.rename(tmp, final)
                shutil.rmtree(old, ignore_errors=True)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
            return manifest
        os.makedirs(final, exist_ok=True)
        return _write_snapshot(final, snapshot, extensions)

    # -- load ----------------------------------------------------------
    @staticmethod
    def load(path, verify: bool = False) -> LoadedSnapshot:
        """Reload a snapshot directory via read-only ``mmap``.

        Header structure and table-directory checksums are always
        validated; ``verify=True`` additionally CRCs every segment
        payload (reads all bytes -- use for integrity audits, not
        serving boots).  Raises :class:`SnapshotError` on a missing or
        malformed directory and
        :class:`~repro.graph.flatbuf.SegmentFormatError` on a corrupt
        segment file.
        """
        final = os.fspath(path)
        manifest = _read_manifest(final)
        kind = manifest.get("kind")
        if kind == "compact":
            graph = _load_compact(final, manifest, verify)
        elif kind == "sharded":
            graph = _load_sharded(final, manifest, verify)
        else:
            raise SnapshotError(f"{final}: unknown snapshot kind {kind!r}")
        views = _load_views(final, manifest, graph, verify)
        return LoadedSnapshot(final, graph, views, manifest)

    # -- info ----------------------------------------------------------
    @staticmethod
    def info(path, verify: bool = False) -> dict:
        """Manifest plus on-disk footprint, without attaching payloads.

        ``verify=True`` runs the full payload CRC pass over every
        segment file (still without mapping them).
        """
        final = os.fspath(path)
        manifest = _read_manifest(final)
        files: Dict[str, int] = {}
        total = 0
        for entry in sorted(os.listdir(final)):
            full = os.path.join(final, entry)
            if os.path.isfile(full):
                size = os.path.getsize(full)
                files[entry] = size
                total += size
                if verify and entry.endswith(".seg"):
                    verify_segment_file(full)
        return dict(manifest, path=final, files=files, on_disk_bytes=total)


def snapshot_on_disk_bytes(path) -> int:
    """Total byte footprint of a snapshot directory (0 if absent)."""
    final = os.fspath(path)
    if not os.path.isdir(final):
        return 0
    return sum(
        os.path.getsize(os.path.join(final, entry))
        for entry in os.listdir(final)
        if os.path.isfile(os.path.join(final, entry))
    )


# ----------------------------------------------------------------------
# Save internals
# ----------------------------------------------------------------------
def _as_saveable(snapshot):
    """Normalize any graph form into a shared (segment-backed) snapshot."""
    from repro.shard.sharded import ShardedGraph

    if isinstance(snapshot, DataGraph):
        snapshot = snapshot.freeze(shared=True)
    if isinstance(snapshot, ShardedGraph):
        return snapshot.share()
    if isinstance(snapshot, CompactGraph):
        return SharedCompactGraph.share(snapshot)
    raise SnapshotError(
        f"cannot snapshot object of type {type(snapshot).__name__}"
    )


def _as_extensions(views) -> Dict[str, Any]:
    if views is None:
        return {}
    if hasattr(views, "extensions"):
        return views.extensions()
    return dict(views)


def _dump(obj, path) -> None:
    with open(path, "wb") as fh:
        pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)


def _write_snapshot(dirpath: str, snapshot, extensions: Dict[str, Any]) -> dict:
    from repro.shard.sharded import ShardedGraph

    if isinstance(snapshot, ShardedGraph):
        manifest = _write_sharded(dirpath, snapshot)
        flat_token = None  # sharded views have no attachable segment form
    else:
        manifest = _write_compact(dirpath, snapshot)
        flat_token = snapshot.snapshot_token
    manifest["views"] = _write_views(dirpath, snapshot, extensions, flat_token)
    manifest["format"] = SNAPSHOT_FORMAT
    manifest["created_at"] = time.time()
    tmp_manifest = os.path.join(dirpath, MANIFEST_NAME + ".tmp")
    with open(tmp_manifest, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    os.replace(tmp_manifest, os.path.join(dirpath, MANIFEST_NAME))
    return manifest


def _graph_meta(snapshot) -> dict:
    return {
        "nodes": snapshot.num_nodes,
        "edges": snapshot.num_edges,
        "snapshot_version": snapshot.snapshot_version,
        "snapshot_token": snapshot.snapshot_token,
        "extends_token": snapshot.extends_token,
    }


def _write_compact(dirpath: str, snapshot: SharedCompactGraph) -> dict:
    files = {"segment": "graph.seg"}
    snapshot.flat_store.save(os.path.join(dirpath, "graph.seg"))
    if snapshot._patch:
        _dump(snapshot._patch, os.path.join(dirpath, "patch.pkl"))
        files["patch"] = "patch.pkl"
    return {"kind": "compact", "graph": _graph_meta(snapshot), "files": files}


def _write_sharded(dirpath: str, sharded) -> dict:
    k = sharded.num_shards
    shard_files: List[dict] = []
    for i, shard in enumerate(sharded._shards):
        seg = f"shard-{i:03d}.seg"
        shard.flat_store.save(os.path.join(dirpath, seg))
        entry = {
            "segment": seg,
            "meta": [
                shard.num_nodes,
                shard.num_edges,
                shard.snapshot_version,
                shard.snapshot_token,
                shard.extends_token,
            ],
        }
        if shard._patch:
            patch = f"patch-{i:03d}.pkl"
            _dump(shard._patch, os.path.join(dirpath, patch))
            entry["patch"] = patch
        shard_files.append(entry)
    # Cross-shard predecessors, grouped by the *target's* home shard so
    # a reload can fault in exactly the group a lookup needs.
    groups: List[Dict[Node, Any]] = [{} for _ in range(k)]
    for target, sources in sharded._cross_pred.items():
        groups[sharded._home[target]][target] = sources
    cross_files: Dict[str, str] = {}
    for i, group in enumerate(groups):
        if group:
            fname = f"crosspred-{i:03d}.pkl"
            _dump(group, os.path.join(dirpath, fname))
            cross_files[str(i)] = fname
    return {
        "kind": "sharded",
        "graph": _graph_meta(sharded),
        "shards": k,
        "strategy": sharded.partition.strategy,
        "own_counts": list(sharded._own_counts),
        "edge_cut": sharded.partition.edge_cut,
        "shard_files": shard_files,
        "cross_pred": cross_files,
    }


def _write_views(
    dirpath: str, snapshot, extensions: Dict[str, Any], flat_token
) -> Dict[str, dict]:
    from repro.views.flatpack import FlatExtension

    out: Dict[str, dict] = {}
    for idx, name in enumerate(sorted(extensions)):
        view = extensions[name]
        payload = getattr(view, "compact", None)
        definition = getattr(view, "definition", None)
        if definition is None:
            log.warning("snapshot save: view %r has no definition; skipped", name)
            continue
        if isinstance(payload, FlatExtension) and payload.token == flat_token:
            seg = f"view-{idx:03d}.seg"
            meta = f"view-{idx:03d}.pkl"
            payload.store.save(os.path.join(dirpath, seg))
            _dump(
                {
                    "definition": definition,
                    "nodes_extra": payload.nodes_extra,
                    "edge_order": payload.edge_order,
                    "token": payload.token,
                    "version": payload.version,
                    "bounded": payload.distances is not None,
                },
                os.path.join(dirpath, meta),
            )
            out[name] = {"kind": "flat", "segment": seg, "meta": meta}
        else:
            fname = f"view-{idx:03d}.view"
            _dump(view, os.path.join(dirpath, fname))
            out[name] = {"kind": "pickle", "pickle": fname}
    return out


# ----------------------------------------------------------------------
# Load internals
# ----------------------------------------------------------------------
def _read_manifest(dirpath: str) -> dict:
    manifest_path = os.path.join(dirpath, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise SnapshotError(
            f"{dirpath}: not a snapshot directory (no {MANIFEST_NAME})"
        )
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"{dirpath}: unreadable manifest ({exc})") from exc
    fmt = manifest.get("format")
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{dirpath}: unsupported snapshot format {fmt!r} "
            f"(this build reads format {SNAPSHOT_FORMAT})"
        )
    return manifest


def _load_pickle(dirpath: str, fname: str):
    with open(os.path.join(dirpath, fname), "rb") as fh:
        return pickle.load(fh)


def _load_compact(dirpath: str, manifest: dict, verify: bool) -> SharedCompactGraph:
    files = manifest["files"]
    store = FlatStore.open(os.path.join(dirpath, files["segment"]), verify=verify)
    patch = _load_pickle(dirpath, files["patch"]) if "patch" in files else None
    g = manifest["graph"]
    meta = (
        g["nodes"],
        g["edges"],
        g["snapshot_version"],
        g["snapshot_token"],
        g["extends_token"],
    )
    return _attach_snapshot(store, patch, meta)


def _load_sharded(dirpath: str, manifest: dict, verify: bool):
    from repro.shard.partitioner import Partition
    from repro.shard.sharded import ShardedGraph

    k = manifest["shards"]
    own_counts = list(manifest["own_counts"])
    shard_graphs: List[SharedCompactGraph] = []
    for entry in manifest["shard_files"]:
        store = FlatStore.open(
            os.path.join(dirpath, entry["segment"]), verify=verify
        )
        patch = _load_pickle(dirpath, entry["patch"]) if "patch" in entry else None
        shard_graphs.append(_attach_snapshot(store, patch, tuple(entry["meta"])))

    # Composite bookkeeping, rebuilt from the decoded per-shard node
    # tables: own nodes first (local ids below own_count), ghosts after
    # -- the same invariant ShardedGraph.__init__ establishes.
    assignment: Dict[Node, int] = {}
    shard_nodes: List[List[Node]] = []
    ghost_sets: List[Any] = []
    node_table: List[Node] = []
    all_names: List[List[Node]] = []
    for i, snap in enumerate(shard_graphs):
        names = list(snap.node_table)
        own = own_counts[i]
        all_names.append(names)
        shard_nodes.append(names[:own])
        ghost_sets.append(frozenset(names[own:]))
        node_table.extend(names[:own])
        for node in names[:own]:
            assignment[node] = i

    g = manifest["graph"]
    cross_files = {int(i): fname for i, fname in manifest["cross_pred"].items()}
    partition = Partition.__new__(Partition)
    partition.strategy = manifest["strategy"]
    partition.num_shards = k
    partition._assignment = assignment
    partition._shards = shard_nodes
    partition._ghosts = tuple(ghost_sets)
    partition._num_edges = g["edges"]
    partition._internal_edges = g["edges"] - manifest["edge_cut"]
    partition._cross = _LazyCrossEdges(dirpath, cross_files, manifest["edge_cut"])

    new = ShardedGraph.__new__(ShardedGraph)
    new.partition = partition
    new._shards = tuple(shard_graphs)
    new._own_counts = tuple(own_counts)
    offsets: List[int] = []
    total = 0
    for count in own_counts:
        offsets.append(total)
        total += count
    new._offsets = tuple(offsets)
    new._home = assignment
    new._node_table = node_table

    global_rows: List[List[int]] = []
    ghost_ids: List[Dict[Node, int]] = []
    for i, snap in enumerate(shard_graphs):
        row: List[int] = []
        ghosts: Dict[Node, int] = {}
        own = own_counts[i]
        for local_id, node in enumerate(all_names[i]):
            home = assignment[node]
            row.append(offsets[home] + shard_graphs[home].id_of(node))
            if local_id >= own:
                ghosts[node] = local_id
        global_rows.append(row)
        ghost_ids.append(ghosts)
    new._global_rows = tuple(global_rows)
    new._ghost_ids = tuple(ghost_ids)

    ghost_shards: Dict[Node, List[int]] = {}
    for i, ghosts in enumerate(ghost_ids):
        for node in ghosts:
            ghost_shards.setdefault(node, []).append(i)
    new._ghost_shards = {
        node: tuple(holders) for node, holders in ghost_shards.items()
    }
    bridges: List[List[Tuple[int, Any, Dict[int, int]]]] = [[] for _ in range(k)]
    for holder, ghosts in enumerate(ghost_ids):
        per_owner: Dict[int, Dict[int, int]] = {}
        for node, ghost_id in ghosts.items():
            owner = assignment[node]
            per_owner.setdefault(owner, {})[
                shard_graphs[owner].id_of(node)
            ] = ghost_id
        for owner, mapping in per_owner.items():
            bridges[owner].append((holder, frozenset(mapping), mapping))
    new._bridges = tuple(tuple(entries) for entries in bridges)
    new._cross_pred = _LazyCrossPred(dirpath, cross_files, assignment)

    label_nodes: Dict[str, List[Node]] = {}
    for i, snap in enumerate(shard_graphs):
        own = own_counts[i]
        names = all_names[i]
        for label, bucket in snap._label_ids.items():
            acc = label_nodes.setdefault(label, [])
            acc.extend(names[j] for j in bucket if j < own)
    new._label_nodes = {
        label: tuple(nodes) for label, nodes in label_nodes.items()
    }

    new._num_edges = g["edges"]
    new.snapshot_version = g["snapshot_version"]
    new.snapshot_token = g["snapshot_token"]
    new.extends_token = g["extends_token"]
    return new


def _load_views(dirpath: str, manifest: dict, graph, verify: bool) -> Dict[str, Any]:
    entries = manifest.get("views") or {}
    if not entries:
        return {}
    from repro.views.flatpack import _attach_extension, _attach_view

    views: Dict[str, Any] = {}
    for name, entry in entries.items():
        if entry.get("kind") == "pickle":
            views[name] = _load_pickle(dirpath, entry["pickle"])
            continue
        store = FlatStore.open(
            os.path.join(dirpath, entry["segment"]), verify=verify
        )
        meta = _load_pickle(dirpath, entry["meta"])
        flat = _attach_extension(
            store,
            graph.flat_store,
            meta["nodes_extra"],
            meta["edge_order"],
            meta["token"],
            meta["version"],
            meta["bounded"],
        )
        views[name] = _attach_view(meta["definition"], flat)
    return views
