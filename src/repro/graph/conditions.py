"""Node search conditions and a sound implication test.

Pattern nodes carry a search condition ``fv(u)`` (Section II-A).  In the
basic setting this is a single label; the paper remarks that ``fv`` "can
be readily extended to specify search conditions in terms of Boolean
predicates" and its YouTube views (Fig. 7) use conjunctions such as
``C = "Music" and V >= 10K``.  Both forms are supported here:

* :class:`Label` -- matches a data node iff the label is in the node's
  label set.
* :class:`AttributeCondition` -- a conjunction of comparison atoms over
  node attributes, built with the :class:`P` helper::

      cond = (P("C") == "Music") & (P("V") >= 10_000)

Two operations are needed by the algorithms:

* ``condition.matches(labels, attrs)`` -- does a data node satisfy the
  condition?  Used when evaluating patterns on data graphs.
* :func:`implies` -- does *every* node satisfying ``sub`` also satisfy
  ``sup``?  Used when computing view matches, where a pattern node ``u``
  may be matched by a view node ``x`` only if ``fv(u)`` guarantees
  ``fv(x)`` (evaluating ``V`` over ``Qs`` treated as a data graph).

The implication test is *sound but not complete*: it only recognizes
implications derivable per-atom (interval reasoning on comparisons,
label equality).  Incompleteness only ever makes containment checking
more conservative -- a view is never used unsoundly.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Tuple

__all__ = [
    "Atom",
    "AttributeCondition",
    "Condition",
    "Label",
    "P",
    "TrueCondition",
    "implies",
]

_OPS = ("==", "!=", "<=", ">=", "<", ">")


class Condition:
    """Base class for node search conditions."""

    def matches(self, labels: FrozenSet[str], attrs: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def key(self) -> Any:
        """A hashable normal form used for equality and hashing."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class TrueCondition(Condition):
    """The always-true condition (wildcard node)."""

    def matches(self, labels: FrozenSet[str], attrs: Mapping[str, Any]) -> bool:
        return True

    def key(self) -> Any:
        return ("true",)

    def __repr__(self) -> str:
        return "TrueCondition()"


class Label(Condition):
    """Membership of a single label in the node's label set."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(f"label must be a non-empty string, got {name!r}")
        self.name = name

    def matches(self, labels: FrozenSet[str], attrs: Mapping[str, Any]) -> bool:
        return self.name in labels

    def key(self) -> Any:
        return ("label", self.name)

    def __repr__(self) -> str:
        return f"Label({self.name!r})"


class Atom:
    """A single comparison ``attr op value``."""

    __slots__ = ("attr", "op", "value")

    def __init__(self, attr: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}; expected one of {_OPS}")
        self.attr = attr
        self.op = op
        self.value = value

    def holds(self, attrs: Mapping[str, Any]) -> bool:
        if self.attr not in attrs:
            return False
        actual = attrs[self.attr]
        try:
            if self.op == "==":
                return bool(actual == self.value)
            if self.op == "!=":
                return bool(actual != self.value)
            if self.op == "<=":
                return bool(actual <= self.value)
            if self.op == ">=":
                return bool(actual >= self.value)
            if self.op == "<":
                return bool(actual < self.value)
            return bool(actual > self.value)
        except TypeError:
            return False

    def key(self) -> Tuple[str, str, Any]:
        return (self.attr, self.op, self.value)

    def __repr__(self) -> str:
        return f"P({self.attr!r}) {self.op} {self.value!r}"


def _atom_implies(a: Atom, b: Atom) -> bool:
    """Sound test: does ``a`` (on the same attribute) guarantee ``b``?"""
    if a.attr != b.attr:
        return False
    av, bv = a.value, b.value
    try:
        if a.op == "==":
            if b.op == "==":
                return bool(av == bv)
            if b.op == "!=":
                return bool(av != bv)
            if b.op == "<=":
                return bool(av <= bv)
            if b.op == ">=":
                return bool(av >= bv)
            if b.op == "<":
                return bool(av < bv)
            if b.op == ">":
                return bool(av > bv)
        if a.op == "<=":
            if b.op == "<=":
                return bool(av <= bv)
            if b.op == "<":
                return bool(av < bv)
        if a.op == "<":
            if b.op == "<=":
                return bool(av <= bv)
            if b.op == "<":
                return bool(av <= bv)
            if b.op == "!=":
                return bool(av <= bv)
        if a.op == ">=":
            if b.op == ">=":
                return bool(av >= bv)
            if b.op == ">":
                return bool(av > bv)
        if a.op == ">":
            if b.op == ">=":
                return bool(av >= bv)
            if b.op == ">":
                return bool(av >= bv)
            if b.op == "!=":
                return bool(av >= bv)
        if a.op == "!=" and b.op == "!=":
            return bool(av == bv)
    except TypeError:
        return False
    return False


class AttributeCondition(Condition):
    """A conjunction of comparison atoms over node attributes.

    An optional ``label`` restricts the node's label set as well, so one
    can express "a Video node with category Music": ``AttributeCondition
    ([...], label="video")``.
    """

    __slots__ = ("atoms", "label")

    def __init__(self, atoms: Tuple[Atom, ...], label: str = "") -> None:
        self.atoms = tuple(atoms)
        self.label = label

    def matches(self, labels: FrozenSet[str], attrs: Mapping[str, Any]) -> bool:
        if self.label and self.label not in labels:
            return False
        return all(atom.holds(attrs) for atom in self.atoms)

    def key(self) -> Any:
        return ("attrs", self.label, tuple(sorted(a.key() for a in self.atoms)))

    def __and__(self, other: "AttributeCondition") -> "AttributeCondition":
        if not isinstance(other, AttributeCondition):
            return NotImplemented
        if self.label and other.label and self.label != other.label:
            raise ValueError(
                f"cannot conjoin conditions with distinct labels "
                f"{self.label!r} and {other.label!r}"
            )
        return AttributeCondition(
            self.atoms + other.atoms, label=self.label or other.label
        )

    def with_label(self, label: str) -> "AttributeCondition":
        return AttributeCondition(self.atoms, label=label)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.atoms]
        if self.label:
            parts.insert(0, f"label={self.label!r}")
        return "AttributeCondition(" + " & ".join(parts) + ")"


class P:
    """Attribute-predicate builder: ``P("rate") >= 4`` etc."""

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def _make(self, op: str, value: Any) -> AttributeCondition:
        return AttributeCondition((Atom(self.attr, op, value),))

    def __eq__(self, value: object) -> AttributeCondition:  # type: ignore[override]
        return self._make("==", value)

    def __ne__(self, value: object) -> AttributeCondition:  # type: ignore[override]
        return self._make("!=", value)

    def __le__(self, value: Any) -> AttributeCondition:
        return self._make("<=", value)

    def __ge__(self, value: Any) -> AttributeCondition:
        return self._make(">=", value)

    def __lt__(self, value: Any) -> AttributeCondition:
        return self._make("<", value)

    def __gt__(self, value: Any) -> AttributeCondition:
        return self._make(">", value)

    def __hash__(self) -> int:
        return hash(("P", self.attr))


def as_condition(value: Any) -> Condition:
    """Coerce ``value`` into a :class:`Condition` (strings become labels)."""
    if isinstance(value, Condition):
        return value
    if isinstance(value, str):
        return Label(value)
    raise TypeError(f"cannot interpret {value!r} as a node condition")


def implies(sub: Condition, sup: Condition) -> bool:
    """Sound test that every node satisfying ``sub`` satisfies ``sup``.

    Used for node compatibility in view-match computation: a view node
    with condition ``sup`` may simulate a pattern node with condition
    ``sub`` only when this holds, because then each data-graph match of
    the pattern node is guaranteed to appear in the view's extension.
    """
    if isinstance(sup, TrueCondition):
        return True
    if isinstance(sub, TrueCondition):
        return False
    if isinstance(sub, Label) and isinstance(sup, Label):
        return sub.name == sup.name
    if isinstance(sub, AttributeCondition) and isinstance(sup, Label):
        return sub.label == sup.name
    if isinstance(sub, Label) and isinstance(sup, AttributeCondition):
        return not sup.atoms and sup.label == sub.name
    if isinstance(sub, AttributeCondition) and isinstance(sup, AttributeCondition):
        if sup.label and sup.label != sub.label:
            return False
        return all(
            any(_atom_implies(a, b) for a in sub.atoms) for b in sup.atoms
        )
    return False
