"""Immutable, read-optimized snapshots of data graphs.

A :class:`CompactGraph` is a frozen CSR-style copy of a
:class:`~repro.graph.digraph.DataGraph`: nodes are renumbered to dense
integer ids ``0..n-1``, adjacency is stored as per-node tuples of ids
(one flat row per node, no hash sets), labels and attributes live in
id-indexed tables, and every label maps to the sorted id array of the
nodes carrying it.  The matching engines exploit this layout twice over:

* **seeding** -- candidate sets come straight from the label index
  instead of a full-node condition scan, the dominant cost of the
  ``O(|Qs||G|)`` term in the paper's simulation bound (Theorems 1-3 of
  conf_icde_FanWW14 assume exactly this kind of index);
* **refinement** -- witness counting intersects candidate sets with
  adjacency rows at C speed (``set.intersection`` over an id tuple)
  rather than chasing per-element hash lookups in Python.

Snapshots are identified by two integers: :attr:`snapshot_version`, the
source graph's mutation counter at freeze time, and
:attr:`snapshot_token`, a random 64-bit id that is unique across
processes as well.  Together they let
downstream caches (materialized view extensions, the query engine)
recognise that two id spaces are the same and safely exchange raw
integer ids; see ``MaterializedView.compact`` and the MatchJoin fast
path.

A snapshot can also be *refreshed* (:meth:`CompactGraph.refreshed`)
after a batch of edge updates: unchanged adjacency rows, label buckets
and attribute tables are shared with the predecessor snapshot, only the
touched rows are rebuilt, and -- crucially -- every pre-existing node
keeps its dense id (new nodes append at the end).  The refreshed
snapshot mints a fresh :attr:`snapshot_token` (its *content* differs)
but records the predecessor's token in :attr:`extends_token`, which is
the maintenance pipeline's licence to re-stamp extensions of unchanged
views onto the new token without recomputing them.

The public read API mirrors :class:`DataGraph` (``nodes()``,
``successors``, ``labels``, ``descendants_within`` ...) over the
*original node keys*, so every generic engine -- plain, dual, strong and
bounded simulation -- runs on a snapshot unchanged.  The id-space API
(``out_ids``, ``label_ids``, ``node_of`` ...) is what the dedicated fast
paths use.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
)

Node = Hashable
Edge = Tuple[Node, Node]

def _new_token() -> int:
    """A fresh snapshot token: 64 random bits, so tokens minted in
    *different* processes cannot collide either (extensions frozen on
    separate workers may meet in one MatchJoin call).  Tokens survive
    pickling -- they are plain ints -- so extensions shipped to pool
    workers still recognise each other's id space."""
    return int.from_bytes(os.urandom(8), "big") | 1


class CompactGraph:
    """A frozen, integer-id snapshot of a :class:`DataGraph`.

    Build one with :meth:`DataGraph.freeze`, not directly.  The snapshot
    is immutable: there are no mutation methods, and the underlying
    arrays are shared freely by everything derived from it.
    """

    __slots__ = (
        "_nodes",
        "_ids",
        "_succ",
        "_pred",
        "_labels",
        "_attrs",
        "_label_ids",
        "_succ_sets",
        "_pred_sets",
        "_num_edges",
        "snapshot_version",
        "snapshot_token",
        "extends_token",
    )

    def __init__(self, graph, version: int) -> None:
        nodes: List[Node] = list(graph.nodes())
        ids: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        self._nodes = nodes
        self._ids = ids
        self._succ: List[Tuple[int, ...]] = [
            tuple(ids[w] for w in graph.successors(v)) for v in nodes
        ]
        self._pred: List[Tuple[int, ...]] = [
            tuple(ids[w] for w in graph.predecessors(v)) for v in nodes
        ]
        self._labels: List[FrozenSet[str]] = [graph.labels(v) for v in nodes]
        self._attrs: List[Dict[str, Any]] = [
            dict(graph.attrs(v)) if graph.attrs(v) else {} for v in nodes
        ]
        buckets: Dict[str, List[int]] = {}
        for i, labels in enumerate(self._labels):
            for label in labels:
                buckets.setdefault(label, []).append(i)
        self._label_ids: Dict[str, Tuple[int, ...]] = {
            label: tuple(bucket) for label, bucket in buckets.items()
        }
        # Node-key adjacency frozensets, built lazily for the generic
        # engines (dual/strong/bounded) that want set semantics.
        self._succ_sets: List[Optional[FrozenSet[Node]]] = [None] * len(nodes)
        self._pred_sets: List[Optional[FrozenSet[Node]]] = [None] * len(nodes)
        self._num_edges = graph.num_edges
        self.snapshot_version = version
        self.snapshot_token = _new_token()
        self.extends_token = None

    @classmethod
    def refreshed(
        cls, old: "CompactGraph", graph, version: int, ops
    ) -> "CompactGraph":
        """A new snapshot of ``graph`` built by patching ``old``.

        ``ops`` is the ordered edge-op batch (``(op, source, target)``
        triples) separating ``old`` from the current graph state; the
        caller (``DataGraph.freeze`` via the edge-op journal) guarantees
        the only other changes are appended nodes.  Adjacency rows of
        untouched nodes, the label buckets and the attribute tables are
        shared with ``old``; every pre-existing node keeps its id, and
        new nodes take the next ids in graph order -- so id-space
        consumers of ``old`` remain valid in the result (recorded via
        :attr:`extends_token`).  Cost: O(|V|) pointer copies plus the
        touched adjacency, not O(|V| + |E|) reconstruction.
        """
        from itertools import islice

        new = cls.__new__(cls)
        n_old = len(old._nodes)
        appended = list(islice(graph.nodes(), n_old, None))
        touched_out = {s for _, s, _ in ops}
        touched_in = {t for _, _, t in ops}
        if appended:
            nodes = old._nodes + appended
            ids = dict(old._ids)
            labels = list(old._labels)
            attrs = list(old._attrs)
            label_ids = dict(old._label_ids)
            for i, node in enumerate(appended, start=n_old):
                ids[node] = i
                node_labels = graph.labels(node)
                node_attrs = graph.attrs(node)
                labels.append(node_labels)
                attrs.append(dict(node_attrs) if node_attrs else {})
                for label in node_labels:
                    # New ids exceed every old id, so appending keeps
                    # the bucket sorted.
                    label_ids[label] = label_ids.get(label, ()) + (i,)
        else:
            nodes = old._nodes
            ids = old._ids
            labels = old._labels
            attrs = old._attrs
            label_ids = old._label_ids
        succ = list(old._succ)
        pred = list(old._pred)
        succ_sets: List[Optional[FrozenSet[Node]]] = list(old._succ_sets)
        pred_sets: List[Optional[FrozenSet[Node]]] = list(old._pred_sets)
        for node in appended:
            succ.append(())
            pred.append(())
            succ_sets.append(None)
            pred_sets.append(None)
        for node in touched_out:
            i = ids[node]
            succ[i] = tuple(ids[w] for w in graph.successors(node))
            succ_sets[i] = None
        for node in touched_in:
            i = ids[node]
            pred[i] = tuple(ids[w] for w in graph.predecessors(node))
            pred_sets[i] = None
        new._nodes = nodes
        new._ids = ids
        new._succ = succ
        new._pred = pred
        new._labels = labels
        new._attrs = attrs
        new._label_ids = label_ids
        new._succ_sets = succ_sets
        new._pred_sets = pred_sets
        new._num_edges = graph.num_edges
        new.snapshot_version = version
        new.snapshot_token = _new_token()
        new.extends_token = old.snapshot_token
        return new

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def freeze(self) -> "CompactGraph":
        """Snapshots are already frozen; return ``self`` (idempotence)."""
        return self

    @property
    def version(self) -> int:
        """Mutation-counter alias: a snapshot *is* its version (so a
        snapshot can stand in for a live graph, e.g. an engine booted
        from a saved snapshot directory, where ``graph.version ==
        snapshot.snapshot_version`` means "no refresh needed")."""
        return self.snapshot_version

    # ------------------------------------------------------------------
    # Integer-id API (the fast paths)
    # ------------------------------------------------------------------
    def id_of(self, node: Node) -> int:
        """The dense id of ``node`` (KeyError if absent)."""
        return self._ids[node]

    def node_of(self, i: int) -> Node:
        """The original node key behind id ``i``."""
        return self._nodes[i]

    @property
    def node_table(self) -> List[Node]:
        """The id -> node key decode table (shared, do not mutate)."""
        return self._nodes

    def out_ids(self, i: int) -> Tuple[int, ...]:
        """Successor ids of node id ``i`` (the CSR row)."""
        return self._succ[i]

    def in_ids(self, i: int) -> Tuple[int, ...]:
        """Predecessor ids of node id ``i``."""
        return self._pred[i]

    @property
    def succ_rows(self) -> List[Tuple[int, ...]]:
        """All successor rows, indexed by id (shared, do not mutate)."""
        return self._succ

    @property
    def pred_rows(self) -> List[Tuple[int, ...]]:
        """All predecessor rows, indexed by id (shared, do not mutate)."""
        return self._pred

    def label_ids(self, label: str) -> Tuple[int, ...]:
        """Ids of every node carrying ``label`` (empty tuple if none)."""
        return self._label_ids.get(label, ())

    def labels_of(self, i: int) -> FrozenSet[str]:
        """Label set of node id ``i``."""
        return self._labels[i]

    def attrs_of(self, i: int) -> Dict[str, Any]:
        """Attribute dict of node id ``i``."""
        return self._attrs[i]

    def label_index_stats(self) -> Dict[str, int]:
        """``{label: bucket size}`` for every indexed label."""
        return {label: len(ids) for label, ids in self._label_ids.items()}

    # ------------------------------------------------------------------
    # DataGraph-compatible read API (original node keys)
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._ids

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper: total number of nodes and edges."""
        return self.num_nodes + self._num_edges

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def edges(self) -> Iterator[Edge]:
        for i, row in enumerate(self._succ):
            source = self._nodes[i]
            for j in row:
                yield (source, self._nodes[j])

    def has_edge(self, source: Node, target: Node) -> bool:
        i = self._ids.get(source)
        if i is None:
            return False
        j = self._ids.get(target)
        return j is not None and j in self._succ[i]

    def successors(self, node: Node) -> FrozenSet[Node]:
        i = self._ids[node]
        cached = self._succ_sets[i]
        if cached is None:
            nodes = self._nodes
            cached = frozenset(nodes[j] for j in self._succ[i])
            self._succ_sets[i] = cached
        return cached

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        i = self._ids[node]
        cached = self._pred_sets[i]
        if cached is None:
            nodes = self._nodes
            cached = frozenset(nodes[j] for j in self._pred[i])
            self._pred_sets[i] = cached
        return cached

    def out_degree(self, node: Node) -> int:
        return len(self._succ[self._ids[node]])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[self._ids[node]])

    def labels(self, node: Node) -> FrozenSet[str]:
        return self._labels[self._ids[node]]

    def attrs(self, node: Node) -> Dict[str, Any]:
        return self._attrs[self._ids[node]]

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield all nodes carrying ``label`` (index lookup, O(bucket))."""
        nodes = self._nodes
        return (nodes[i] for i in self._label_ids.get(label, ()))

    # ------------------------------------------------------------------
    # Id-space traversal primitives (the bounded fast paths)
    # ------------------------------------------------------------------
    def descendants_within_ids(self, i: int, bound: int) -> Dict[int, int]:
        """``{id: distance}`` for every node reachable from id ``i`` by a
        nonempty path of length in ``[1, bound]`` (shortest distances).

        Level-synchronous BFS over the CSR rows: each frontier expands
        with C-level ``set.update`` against adjacency tuples, which is
        what makes the bounded engines competitive on snapshots.
        """
        if bound < 1:
            return {}
        succ = self._succ
        dist: Dict[int, int] = {}
        frontier = set(succ[i])
        depth = 1
        while frontier:
            dist.update(dict.fromkeys(frontier, depth))
            if depth >= bound:
                break
            frontier = set().union(
                *map(succ.__getitem__, frontier)
            ).difference(dist)
            depth += 1
        return dist

    def reachable_ids(self, i: int) -> set:
        """All ids reachable from id ``i`` by a nonempty path."""
        succ = self._succ
        seen: set = set()
        stack = list(succ[i])
        while stack:
            j = stack.pop()
            if j in seen:
                continue
            seen.add(j)
            stack.extend(succ[j])
        return seen

    def reverse_within_ids(self, targets, bound: int) -> set:
        """Ids with a nonempty path of length <= ``bound`` *into* any of
        the target ids -- the multi-source reverse bounded BFS at the
        heart of the BMatch refinement, in id space."""
        pred = self._pred
        seen: set = set()
        frontier = set().union(*map(pred.__getitem__, targets))
        depth = 1
        while frontier:
            seen |= frontier
            if depth >= bound:
                break
            frontier = set().union(
                *map(pred.__getitem__, frontier)
            ).difference(seen)
            depth += 1
        return seen

    def reverse_reachable_ids(self, targets) -> set:
        """Ids with *any* nonempty path into any of the target ids."""
        pred = self._pred
        seen: set = set()
        stack: List[int] = []
        for t in targets:
            stack.extend(pred[t])
        while stack:
            j = stack.pop()
            if j in seen:
                continue
            seen.add(j)
            stack.extend(pred[j])
        return seen

    # ------------------------------------------------------------------
    # Traversal helpers (same contract as DataGraph)
    # ------------------------------------------------------------------
    def descendants_within(self, source: Node, bound: int) -> Dict[Node, int]:
        """Map each node reachable from ``source`` by a path of length in
        ``[1, bound]`` to its shortest such distance (id-space BFS)."""
        nodes = self._nodes
        return {
            nodes[i]: d
            for i, d in self.descendants_within_ids(
                self._ids[source], bound
            ).items()
        }

    def __repr__(self) -> str:
        return (
            f"CompactGraph(nodes={self.num_nodes}, edges={self._num_edges}, "
            f"snapshot={self.snapshot_version})"
        )
