"""The asyncio serving layer: concurrent reads over swapped epochs.

:class:`QueryServer` is the front door the ROADMAP's "millions of
users" story needs: a long-running service answering pattern queries
*while the graph keeps changing*.  The concurrency model:

* **readers never block on maintenance.**  A query pins the current
  :class:`~repro.serve.epoch.Epoch` (an immutable
  :class:`~repro.engine.engine.EngineCheckpoint` -- frozen snapshot +
  materialized extensions + version stamps) and evaluates against it in
  a thread pool.  Maintenance builds the next epoch concurrently; the
  reader finishes on the one it pinned.
* **updates are epoch swaps, not stop-the-world.**  :meth:`update`
  applies a :class:`~repro.views.Delta` through
  :meth:`QueryEngine.apply_delta` and captures
  :meth:`QueryEngine.checkpoint` in a dedicated maintenance thread,
  then atomically swaps the registry pointer.  The superseded epoch
  drains as its in-flight readers complete.
* **identical in-flight queries coalesce.**  Requests are keyed exactly
  like the engine's answer cache -- (query fingerprint, selection,
  definitions version, plan-relevant view version vector) -- so M
  concurrent arrivals of one query cost one evaluation; later arrivals
  at the same versions hit the server's answer LRU outright.
* **admission control sheds, never queues unboundedly.**  At most
  ``max_inflight`` evaluations run with ``max_queue`` waiters; past
  that, requests fail fast with the retriable
  :class:`~repro.errors.ServerOverloadedError`.

All bookkeeping (counters, coalescing map, answer LRU) is touched only
from the event loop; only pin/release refcounts and the engine itself
are shared with executor threads, and both are locked.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, NamedTuple, Optional, Tuple

from repro.engine.cache import LRUCache
from repro.engine.engine import QueryEngine
from repro.engine.executor import EvaluationSpec, evaluate_spec
from repro.engine.plan import DIRECT, MATCHJOIN, QueryPlan
from repro.errors import ServerClosedError, ServerOverloadedError
from repro.graph.pattern import Pattern
from repro.serve.epoch import Epoch, SnapshotRegistry
from repro.simulation.result import MatchResult
from repro.views.maintenance import Delta, DeltaReport


class ServedAnswer(NamedTuple):
    """One served query: the result plus serving provenance."""

    result: MatchResult
    epoch: int
    cache_hit: bool
    coalesced: bool
    elapsed: float


class UpdateOutcome(NamedTuple):
    """One applied maintenance batch: the view-layer report plus the
    epoch id the batch published."""

    report: DeltaReport
    epoch: int


class QueryServer:
    """Serve pattern queries concurrently with maintenance updates.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.engine.QueryEngine` with a data graph.
        Attach an :class:`~repro.views.maintenance.IncrementalViewSet`
        (``engine.attach_maintenance``) before serving if :meth:`update`
        will be used.
    max_inflight:
        Concurrent evaluations (also the reader thread-pool width).
    max_queue:
        Admitted requests allowed to wait for an evaluation slot; a
        request arriving with ``max_inflight + max_queue`` already
        admitted is shed with :class:`ServerOverloadedError`.
    answer_cache_size:
        Capacity of the server's answer LRU (version-stamp keyed, so
        entries from superseded epochs are stranded, never wrong).
        ``0`` disables it; coalescing still applies.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        max_inflight: int = 8,
        max_queue: int = 64,
        answer_cache_size: int = 1024,
    ) -> None:
        if engine.graph is None:
            raise ValueError("QueryServer requires an engine with a data graph")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self._engine = engine
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._registry = SnapshotRegistry()
        self._answers = LRUCache(answer_cache_size)
        self._coalescing: Dict[Tuple, asyncio.Future] = {}
        self._counters = {
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "coalesced": 0,
            "evaluated": 0,
            "cache_hits": 0,
            "deltas": 0,
            "ops_applied": 0,
            "ops_skipped": 0,
        }
        self._active = 0
        self._started = False
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._update_lock: Optional[asyncio.Lock] = None
        self._idle: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._maint_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build and publish epoch 0, then open admission."""
        if self._started:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self._max_inflight)
        self._update_lock = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_inflight, thread_name_prefix="repro-serve-read"
        )
        self._maint_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-maint"
        )
        checkpoint = await self._loop.run_in_executor(
            self._maint_pool, self._engine.checkpoint
        )
        self._registry.swap(checkpoint)
        self._started = True

    async def stop(self) -> None:
        """Clean shutdown: refuse new requests, drain in-flight ones,
        release the thread pools.  Idempotent."""
        self._closing = True
        if not self._started:
            return
        await self._idle.wait()
        # wait=False: the pools are idle by now (every request drained),
        # and the event loop must not block on thread joins.
        self._pool.shutdown(wait=False)
        self._maint_pool.shutdown(wait=False)
        self._started = False

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def engine(self) -> QueryEngine:
        """The engine this server fronts."""
        return self._engine

    @property
    def current_epoch(self) -> int:
        """The id of the epoch new readers pin right now."""
        return self._registry.current_id

    @property
    def closing(self) -> bool:
        """Whether shutdown has begun (new requests are refused)."""
        return self._closing

    def _require_open(self) -> None:
        if self._closing or not self._started:
            raise ServerClosedError(
                "server is not accepting requests"
                + (" (shutting down)" if self._closing else " (not started)")
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def query(
        self, pattern: Pattern, selection: Optional[str] = None
    ) -> ServedAnswer:
        """Answer one query against the current epoch.

        Sheds immediately (retriable
        :class:`~repro.errors.ServerOverloadedError`) when admission is
        full; raises :class:`~repro.errors.ServerClosedError` during
        shutdown.  The returned :class:`ServedAnswer` names the epoch
        the answer was computed on -- the snapshot-consistency contract
        is *per epoch*, not "latest": a reader racing an update may be
        served from the epoch it pinned at admission.
        """
        self._require_open()
        if self._active >= self._max_inflight + self._max_queue:
            self._counters["shed"] += 1
            raise ServerOverloadedError(
                f"admission full: {self._active} requests in flight "
                f"(max_inflight={self._max_inflight}, "
                f"max_queue={self._max_queue}); retry after backoff"
            )
        self._counters["admitted"] += 1
        self._active += 1
        self._idle.clear()
        try:
            async with self._slots:
                epoch = self._registry.pin()
                try:
                    answer = await self._answer_pinned(pattern, selection, epoch)
                finally:
                    epoch.release()
            self._counters["completed"] += 1
            return answer
        except BaseException:
            self._counters["failed"] += 1
            raise
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _answer_pinned(
        self, pattern: Pattern, selection: Optional[str], epoch: Epoch
    ) -> ServedAnswer:
        # Planning takes the engine lock (it may wait out a maintenance
        # batch), so it must not run on the event loop.
        plan = await self._loop.run_in_executor(
            self._pool, self._engine.plan, pattern, selection
        )
        key = self._answer_key(plan, epoch)
        if key is not None:
            hit = self._answers.get(key)
            if hit is not None:
                self._counters["cache_hits"] += 1
                return ServedAnswer(hit, epoch.epoch_id, True, False, 0.0)
            pending = self._coalescing.get(key)
            if pending is not None:
                self._counters["coalesced"] += 1
                result = await asyncio.shield(pending)
                return ServedAnswer(result, epoch.epoch_id, False, True, 0.0)
            future: asyncio.Future = self._loop.create_future()
            self._coalescing[key] = future
        spec = self._spec_from(plan)
        try:
            result, elapsed = await self._loop.run_in_executor(
                self._pool, self._evaluate, spec, epoch
            )
        except BaseException as err:
            if key is not None:
                self._coalescing.pop(key, None)
                if not future.done():
                    future.set_exception(err)
                    future.exception()  # mark retrieved: followers rethrow
            raise
        self._counters["evaluated"] += 1
        if key is not None:
            self._answers.put(key, result)
            self._coalescing.pop(key, None)
            if not future.done():
                future.set_result(result)
        return ServedAnswer(result, epoch.epoch_id, False, False, elapsed)

    def _answer_key(self, plan: QueryPlan, epoch: Epoch) -> Optional[Tuple]:
        """The answer/coalescing key of ``plan`` *on this epoch* --
        same material as the engine's answer cache, but stamped from
        the epoch's checkpoint so concurrent epochs never share an
        entry unless their inputs are truly identical."""
        checkpoint = epoch.checkpoint
        fingerprint, selection, definitions_version, _ = plan.cache_key
        if definitions_version != checkpoint.definitions_version:
            # The catalog's definitions moved between checkpoint and
            # plan (not possible through Delta maintenance; only via
            # out-of-band catalog edits): bypass caching rather than
            # risk keying across incompatible plans.
            return None
        return (
            fingerprint,
            selection,
            definitions_version,
            checkpoint.key_material(plan.strategy, plan.views_used),
        )

    def _spec_from(self, plan: QueryPlan) -> EvaluationSpec:
        """A picklable spec for ``plan`` -- no materialization: every
        epoch's checkpoint already carries every extension."""
        if plan.strategy == DIRECT:
            return EvaluationSpec(
                kind=DIRECT,
                query=plan.query,
                containment=None,
                needed=(),
                bounded=plan.bounded,
                optimized=self._engine.optimized,
            )
        return EvaluationSpec(
            kind=MATCHJOIN,
            query=plan.query,
            containment=plan.containment,
            needed=plan.views_used,
            bounded=plan.bounded,
            optimized=self._engine.optimized,
        )

    def _evaluate(self, spec: EvaluationSpec, epoch: Epoch):
        """Synchronous evaluation against a pinned epoch (runs in the
        reader pool; tests wrap this to control interleavings)."""
        checkpoint = epoch.checkpoint
        started = perf_counter()
        result = evaluate_spec(
            spec,
            checkpoint.extensions,
            checkpoint.snapshot if spec.kind == DIRECT else None,
        )
        return result, perf_counter() - started

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    async def update(self, delta: Delta) -> UpdateOutcome:
        """Apply a maintenance batch and publish the next epoch.

        Serialized (one batch at a time); the apply + checkpoint runs
        in the dedicated maintenance thread, so readers keep being
        admitted and evaluated throughout.  Readers pinned to the old
        epoch drain on it; readers admitted after the swap see the new
        one.
        """
        self._require_open()
        async with self._update_lock:
            report, checkpoint = await self._loop.run_in_executor(
                self._maint_pool, self._apply_sync, delta
            )
            epoch = self._registry.swap(checkpoint)
            self._counters["deltas"] += 1
            self._counters["ops_applied"] += report.applied
            self._counters["ops_skipped"] += report.skipped
            return UpdateOutcome(report, epoch.epoch_id)

    def _apply_sync(self, delta: Delta):
        report = self._engine.apply_delta(delta)
        return report, self._engine.checkpoint()

    # ------------------------------------------------------------------
    # Introspection (the /stats view)
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """A JSON-ready report: epoch lifecycle, request/admission
        counters, cache counters, payload-shipping totals, and
        per-view ``ViewStats``."""
        current = self._registry.current
        tracker = self._engine.maintenance
        return {
            "epoch": dict(
                self._registry.drain_stats(),
                current=self._registry.current_id,
                active_readers=current.readers if current is not None else 0,
            ),
            "requests": dict(
                self._counters,
                inflight=self._active,
                max_inflight=self._max_inflight,
                max_queue=self._max_queue,
            ),
            "caches": dict(
                self._engine.cache_stats(),
                served_answers=self._answers.stats.snapshot(),
            ),
            "shipping": self._engine.ship_stats(),
            "views": (
                {
                    name: stats.snapshot()
                    for name, stats in tracker.stats().items()
                }
                if tracker is not None
                else {}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"QueryServer(epoch={self._registry.current_id}, "
            f"inflight={self._active}/{self._max_inflight}+{self._max_queue}, "
            f"{'closing' if self._closing else 'open'})"
        )
