"""The asyncio serving layer: concurrent reads over swapped epochs.

:class:`QueryServer` is the front door the ROADMAP's "millions of
users" story needs: a long-running service answering pattern queries
*while the graph keeps changing*.  The concurrency model:

* **readers never block on maintenance.**  A query pins the current
  :class:`~repro.serve.epoch.Epoch` (an immutable
  :class:`~repro.engine.engine.EngineCheckpoint` -- frozen snapshot +
  materialized extensions + version stamps) and evaluates against it in
  a thread pool.  Maintenance builds the next epoch concurrently; the
  reader finishes on the one it pinned.
* **updates are epoch swaps, not stop-the-world.**  :meth:`update`
  applies a :class:`~repro.views.Delta` through
  :meth:`QueryEngine.apply_delta` and captures
  :meth:`QueryEngine.checkpoint` in a dedicated maintenance thread,
  then atomically swaps the registry pointer.  The superseded epoch
  drains as its in-flight readers complete.
* **identical in-flight queries coalesce.**  Requests are keyed exactly
  like the engine's answer cache -- (query fingerprint, selection,
  definitions version, plan-relevant view version vector) -- so M
  concurrent arrivals of one query cost one evaluation; later arrivals
  at the same versions hit the server's answer LRU outright.
* **admission control sheds, never queues unboundedly.**  At most
  ``max_inflight`` evaluations run with ``max_queue`` waiters; past
  that, requests fail fast with the retriable
  :class:`~repro.errors.ServerOverloadedError`.

All bookkeeping (counters, coalescing map, answer LRU) is touched only
from the event loop; only pin/release refcounts and the engine itself
are shared with executor threads, and both are locked.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, NamedTuple, Optional, Tuple

from repro.engine.cache import LRUCache
from repro.engine.engine import QueryEngine
from repro.engine.executor import EvaluationSpec, evaluate_spec
from repro.engine.plan import DIRECT, HYBRID, MATCHJOIN, QueryPlan
from repro.errors import ServerClosedError, ServerOverloadedError
from repro.graph.pattern import Pattern
from repro.obs import trace
from repro.obs.metrics import DURATION_BUCKETS
from repro.obs.trace import TraceCollector
from repro.serve.epoch import Epoch, SnapshotRegistry
from repro.simulation.result import MatchResult
from repro.views.maintenance import Delta, DeltaReport

log = logging.getLogger(__name__)

#: Completed request traces retained for ``repro trace`` / the
#: ``slowlog`` protocol op (ring buffer; slowest kept separately).
TRACE_CAPACITY = 256
SLOW_CAPACITY = 32


class ServedAnswer(NamedTuple):
    """One served query: the result plus serving provenance."""

    result: MatchResult
    epoch: int
    cache_hit: bool
    coalesced: bool
    elapsed: float


class UpdateOutcome(NamedTuple):
    """One applied maintenance batch: the view-layer report plus the
    epoch id the batch published."""

    report: DeltaReport
    epoch: int


class QueryServer:
    """Serve pattern queries concurrently with maintenance updates.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.engine.QueryEngine` with a data graph.
        Attach an :class:`~repro.views.maintenance.IncrementalViewSet`
        (``engine.attach_maintenance``) before serving if :meth:`update`
        will be used.
    max_inflight:
        Concurrent evaluations (also the reader thread-pool width).
    max_queue:
        Admitted requests allowed to wait for an evaluation slot; a
        request arriving with ``max_inflight + max_queue`` already
        admitted is shed with :class:`ServerOverloadedError`.
    answer_cache_size:
        Capacity of the server's answer LRU (version-stamp keyed, so
        entries from superseded epochs are stranded, never wrong).
        ``0`` disables it; coalescing still applies.
    advise_interval:
        Seconds between periodic :class:`WorkloadAdvisor` ticks (the
        engine must have been built with ``auto_materialize``).  Each
        tick runs on the maintenance thread under the update lock and
        publishes a fresh epoch, so readers only ever see the advisor's
        decisions through an atomic epoch swap.  ``None`` disables
        periodic ticks (the engine's own per-answer cadence still
        applies when its advisor is configured).
    persist_path:
        Snapshot directory to persist every published epoch into (via
        :meth:`~repro.graph.snapshot.SnapshotStore.save` with
        ``overwrite=True`` -- an atomic rename swap, so a crashed write
        never corrupts the last good snapshot on disk).  Epoch 0 is
        persisted at :meth:`start`, then every maintenance / advisor
        epoch after its swap, all on the maintenance thread.  Pair it
        with an engine booted from the same directory
        (``QueryEngine(snapshot_path=...)``) for serve-restart-serve
        durability.  A failed persist is logged and counted
        (``persist_failures``), never fatal to serving.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        max_inflight: int = 8,
        max_queue: int = 64,
        answer_cache_size: int = 1024,
        advise_interval: Optional[float] = None,
        persist_path=None,
    ) -> None:
        if engine.graph is None and engine.snapshot_path is None:
            raise ValueError(
                "QueryServer requires an engine with a data graph "
                "(or one booted from a snapshot directory)"
            )
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if advise_interval is not None:
            if advise_interval <= 0:
                raise ValueError(
                    f"advise_interval must be > 0, got {advise_interval}"
                )
            if engine.advisor is None:
                raise ValueError(
                    "advise_interval requires an engine built with "
                    "auto_materialize"
                )
        self._engine = engine
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._advise_interval = advise_interval
        self._persist_path = persist_path
        self._advise_task: Optional[asyncio.Task] = None
        self._registry = SnapshotRegistry()
        self._answers = LRUCache(answer_cache_size)
        self._coalescing: Dict[Tuple, asyncio.Future] = {}
        self._counters = {
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "shed_inflight_full": 0,
            "shed_queue_full": 0,
            "coalesced": 0,
            "coalesce_owners": 0,
            "evaluated": 0,
            "cache_hits": 0,
            "deltas": 0,
            "ops_applied": 0,
            "ops_skipped": 0,
            "advisor_ticks": 0,
            "snapshots_persisted": 0,
            "persist_failures": 0,
        }
        # stats() may be called from any thread (the metrics endpoint
        # runs outside the event loop); counter *mutation* stays on the
        # loop, but snapshots take this lock for a consistent read.
        self._counters_lock = threading.Lock()
        self._traces = TraceCollector(
            capacity=TRACE_CAPACITY, slow_capacity=SLOW_CAPACITY
        )
        self._active = 0
        self._started = False
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._update_lock: Optional[asyncio.Lock] = None
        self._idle: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._maint_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build and publish epoch 0, then open admission."""
        if self._started:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self._max_inflight)
        self._update_lock = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_inflight, thread_name_prefix="repro-serve-read"
        )
        self._maint_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-maint"
        )
        checkpoint = await self._loop.run_in_executor(
            self._maint_pool, self._checkpoint_sync
        )
        self._registry.swap(checkpoint)
        self._started = True
        if self._advise_interval is not None:
            self._advise_task = self._loop.create_task(self._advise_loop())

    async def stop(self) -> None:
        """Clean shutdown: refuse new requests, drain in-flight ones,
        release the thread pools.  Idempotent."""
        self._closing = True
        if not self._started:
            return
        if self._advise_task is not None:
            self._advise_task.cancel()
            try:
                await self._advise_task
            except asyncio.CancelledError:
                pass
            self._advise_task = None
        await self._idle.wait()
        # wait=False: the pools are idle by now (every request drained),
        # and the event loop must not block on thread joins.
        self._pool.shutdown(wait=False)
        self._maint_pool.shutdown(wait=False)
        self._started = False

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def engine(self) -> QueryEngine:
        """The engine this server fronts."""
        return self._engine

    @property
    def current_epoch(self) -> int:
        """The id of the epoch new readers pin right now."""
        return self._registry.current_id

    @property
    def closing(self) -> bool:
        """Whether shutdown has begun (new requests are refused)."""
        return self._closing

    def _require_open(self) -> None:
        if self._closing or not self._started:
            raise ServerClosedError(
                "server is not accepting requests"
                + (" (shutting down)" if self._closing else " (not started)")
            )

    def _count(self, key: str, n: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += n

    @property
    def traces(self) -> TraceCollector:
        """Completed request span trees (ring buffer + slow log)."""
        return self._traces

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def query(
        self, pattern: Pattern, selection: Optional[str] = None
    ) -> ServedAnswer:
        """Answer one query against the current epoch.

        Sheds immediately (retriable
        :class:`~repro.errors.ServerOverloadedError`) when admission is
        full; raises :class:`~repro.errors.ServerClosedError` during
        shutdown.  The returned :class:`ServedAnswer` names the epoch
        the answer was computed on -- the snapshot-consistency contract
        is *per epoch*, not "latest": a reader racing an update may be
        served from the epoch it pinned at admission.
        """
        self._require_open()
        if self._active >= self._max_inflight + self._max_queue:
            # Which limit actually turned the request away: with no
            # queue configured the inflight cap itself is the wall;
            # otherwise admission got past it and the queue was full.
            reason = "queue-full" if self._max_queue > 0 else "inflight-full"
            self._count("shed")
            self._count(
                "shed_queue_full"
                if reason == "queue-full"
                else "shed_inflight_full"
            )
            self._engine.registry.counter(
                "repro_server_shed_total", reason=reason
            ).inc()
            log.debug(
                "shed request (%s): %d in flight", reason, self._active
            )
            raise ServerOverloadedError(
                f"admission full: {self._active} requests in flight "
                f"(max_inflight={self._max_inflight}, "
                f"max_queue={self._max_queue}); retry after backoff"
            )
        self._count("admitted")
        self._active += 1
        self._idle.clear()
        admitted_at = perf_counter()
        with trace.root_span(
            "server.query", collector=self._traces
        ) as root:
            try:
                async with self._slots:
                    queue_wait = perf_counter() - admitted_at
                    epoch = self._registry.pin()
                    root.set(
                        epoch=epoch.epoch_id,
                        queue_wait_ms=round(queue_wait * 1e3, 3),
                    )
                    self._engine.registry.histogram(
                        "repro_server_queue_wait_seconds", DURATION_BUCKETS
                    ).observe(queue_wait)
                    try:
                        answer = await self._answer_pinned(
                            pattern, selection, epoch
                        )
                    finally:
                        epoch.release()
                self._count("completed")
                self._engine.registry.counter(
                    "repro_server_requests_total", outcome="completed"
                ).inc()
                return answer
            except BaseException as err:
                root.set(error=type(err).__name__)
                self._count("failed")
                self._engine.registry.counter(
                    "repro_server_requests_total", outcome="failed"
                ).inc()
                raise
            finally:
                self._active -= 1
                if self._active == 0:
                    self._idle.set()

    async def _answer_pinned(
        self, pattern: Pattern, selection: Optional[str], epoch: Epoch
    ) -> ServedAnswer:
        # Planning takes the engine lock (it may wait out a maintenance
        # batch), so it must not run on the event loop.  The request's
        # root span lives in this task's context; executor threads do
        # not inherit it, so it is carried over explicitly.
        parent = trace.current_span()
        plan = await self._loop.run_in_executor(
            self._pool, self._attached, parent, self._engine.plan,
            pattern, selection,
        )
        # The spec is derived from the plan *and the pinned epoch*: a
        # plan needing an extension the advisor has since evicted is
        # degraded to direct evaluation against the epoch's snapshot.
        # The answer/coalescing key uses the spec's effective strategy,
        # so a degraded answer never poisons the view-keyed entry.
        spec = self._spec_from(plan, epoch)
        key = self._answer_key(plan, spec, epoch)
        if key is not None:
            hit = self._answers.get(key)
            if hit is not None:
                self._count("cache_hits")
                if parent is not None:
                    parent.set(outcome="cache-hit")
                self._engine.registry.counter(
                    "repro_server_answers_total", outcome="cache-hit"
                ).inc()
                self._engine.record_plan_choice(
                    plan, elapsed=0.0, cache_hit=True
                )
                return ServedAnswer(hit, epoch.epoch_id, True, False, 0.0)
            pending = self._coalescing.get(key)
            if pending is not None:
                self._count("coalesced")
                if parent is not None:
                    parent.set(outcome="coalesced-follower")
                self._engine.registry.counter(
                    "repro_server_answers_total", outcome="coalesced"
                ).inc()
                result = await asyncio.shield(pending)
                self._engine.record_plan_choice(
                    plan, elapsed=0.0, cache_hit=True
                )
                return ServedAnswer(result, epoch.epoch_id, False, True, 0.0)
            self._count("coalesce_owners")
            future: asyncio.Future = self._loop.create_future()
            self._coalescing[key] = future
        if parent is not None:
            parent.set(outcome="evaluated")
        try:
            result, elapsed = await self._loop.run_in_executor(
                self._pool, self._attached, parent, self._evaluate,
                spec, epoch,
            )
        except BaseException as err:
            if key is not None:
                self._coalescing.pop(key, None)
                if not future.done():
                    future.set_exception(err)
                    future.exception()  # mark retrieved: followers rethrow
            raise
        self._count("evaluated")
        self._engine.registry.counter(
            "repro_server_answers_total", outcome="evaluated"
        ).inc()
        self._engine.record_plan_choice(
            plan, elapsed=elapsed, cache_hit=False
        )
        if key is not None:
            self._answers.put(key, result)
            self._coalescing.pop(key, None)
            if not future.done():
                future.set_result(result)
        return ServedAnswer(result, epoch.epoch_id, False, False, elapsed)

    @staticmethod
    def _attached(parent, fn, *args):
        """Run ``fn`` in a pool thread under the request's span."""
        with trace.attach(parent):
            return fn(*args)

    def _answer_key(
        self, plan: QueryPlan, spec: EvaluationSpec, epoch: Epoch
    ) -> Optional[Tuple]:
        """The answer/coalescing key of ``plan`` *on this epoch* --
        same material as the engine's answer cache, but stamped from
        the epoch's checkpoint so concurrent epochs never share an
        entry unless their inputs are truly identical.  Keyed on the
        spec's *effective* strategy: a view plan degraded to direct
        (extension evicted) keys like any other direct answer."""
        checkpoint = epoch.checkpoint
        fingerprint, selection, definitions_version, _ = plan.cache_key
        if definitions_version != checkpoint.definitions_version:
            # The catalog's definitions moved between checkpoint and
            # plan (not possible through Delta maintenance; only via
            # out-of-band catalog edits): bypass caching rather than
            # risk keying across incompatible plans.
            return None
        return (
            fingerprint,
            selection,
            definitions_version,
            checkpoint.key_material(spec.kind, spec.needed),
        )

    def _spec_from(self, plan: QueryPlan, epoch: Epoch) -> EvaluationSpec:
        """A picklable spec for ``plan`` on ``epoch`` -- no
        materialization.  A matchjoin/hybrid plan whose needed
        extension is absent from the epoch's checkpoint (the advisor
        evicted it after the plan's containment was cached) degrades
        to direct evaluation against the epoch's frozen snapshot."""
        strategy = plan.strategy
        needed = plan.views_used
        containment = plan.containment
        if strategy in (MATCHJOIN, HYBRID):
            extensions = epoch.checkpoint.extensions
            if any(name not in extensions for name in needed):
                strategy, needed, containment = DIRECT, (), None
        if strategy == DIRECT:
            return EvaluationSpec(
                kind=DIRECT,
                query=plan.query,
                containment=None,
                needed=(),
                bounded=plan.bounded,
                optimized=self._engine.optimized,
                trace_id=trace.current_span_id(),
            )
        return EvaluationSpec(
            kind=strategy,
            query=plan.query,
            containment=containment,
            needed=needed,
            bounded=plan.bounded,
            optimized=self._engine.optimized,
            trace_id=trace.current_span_id(),
        )

    def _evaluate(self, spec: EvaluationSpec, epoch: Epoch):
        """Synchronous evaluation against a pinned epoch (runs in the
        reader pool; tests wrap this to control interleavings)."""
        checkpoint = epoch.checkpoint
        started = perf_counter()
        with trace.span("evaluate", kind=spec.kind) as current:
            result = evaluate_spec(
                spec,
                checkpoint.extensions,
                checkpoint.snapshot
                if spec.kind in (DIRECT, HYBRID)
                else None,
            )
            if current is not None:
                current.set(pairs=result.result_size)
        return result, perf_counter() - started

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    async def update(self, delta: Delta) -> UpdateOutcome:
        """Apply a maintenance batch and publish the next epoch.

        Serialized (one batch at a time); the apply + checkpoint runs
        in the dedicated maintenance thread, so readers keep being
        admitted and evaluated throughout.  Readers pinned to the old
        epoch drain on it; readers admitted after the swap see the new
        one.
        """
        self._require_open()
        async with self._update_lock:
            with trace.root_span(
                "server.update", collector=self._traces, ops=len(delta.ops)
            ) as root:
                parent = trace.current_span()
                report, checkpoint = await self._loop.run_in_executor(
                    self._maint_pool, self._attached, parent,
                    self._apply_sync, delta,
                )
                epoch = self._registry.swap(checkpoint)
                root.set(
                    epoch=epoch.epoch_id,
                    applied=report.applied,
                    skipped=report.skipped,
                )
            self._count("deltas")
            self._count("ops_applied", report.applied)
            self._count("ops_skipped", report.skipped)
            self._engine.registry.counter("repro_server_epoch_swaps_total").inc()
            log.info(
                "epoch %d published: %d ops applied, %d skipped",
                epoch.epoch_id, report.applied, report.skipped,
            )
            return UpdateOutcome(report, epoch.epoch_id)

    def _apply_sync(self, delta: Delta):
        report = self._engine.apply_delta(delta)
        return report, self._checkpoint_sync()

    def _checkpoint_sync(self):
        """Checkpoint the engine and persist the epoch (maintenance
        thread only; persistence rides the same thread so epoch N's
        snapshot directory never interleaves with epoch N+1's)."""
        checkpoint = self._engine.checkpoint()
        self._persist(checkpoint)
        return checkpoint

    def _persist(self, checkpoint) -> None:
        if self._persist_path is None:
            return
        from repro.graph.snapshot import SnapshotStore

        try:
            SnapshotStore.save(
                self._persist_path,
                checkpoint.snapshot,
                views=checkpoint.extensions,
                overwrite=True,
            )
        except Exception:
            # Durability is best-effort per epoch: a full disk must not
            # take serving down, and the previous snapshot (rename
            # swap) is still intact for the next boot.
            self._count("persist_failures")
            log.exception(
                "failed to persist epoch snapshot to %r", self._persist_path
            )
        else:
            self._count("snapshots_persisted")
            self._engine.registry.counter(
                "repro_server_snapshots_persisted_total"
            ).inc()

    # ------------------------------------------------------------------
    # Advisor ticks
    # ------------------------------------------------------------------
    async def advise_tick(self) -> int:
        """Run one :class:`~repro.engine.advisor.WorkloadAdvisor` tick
        and publish the resulting epoch.

        Serialized with :meth:`update` on the update lock; the tick
        (materializations + evictions) and the fresh checkpoint run on
        the maintenance thread, then the registry pointer swaps
        atomically.  Readers pinned to the old epoch keep its
        extensions alive until they drain; readers admitted after the
        swap see the advisor's cache.  Returns the published epoch id.
        """
        async with self._update_lock:
            with trace.root_span(
                "server.advise", collector=self._traces
            ) as root:
                parent = trace.current_span()
                report, checkpoint = await self._loop.run_in_executor(
                    self._maint_pool, self._attached, parent,
                    self._advise_sync,
                )
                epoch = self._registry.swap(checkpoint)
                root.set(
                    epoch=epoch.epoch_id,
                    materialized=len(report.materialized),
                    evicted=len(report.evicted),
                    used_bytes=report.used_bytes,
                )
            self._count("advisor_ticks")
            self._engine.registry.counter("repro_server_epoch_swaps_total").inc()
            if report.materialized or report.evicted:
                log.info(
                    "advisor epoch %d: +%s -%s (%d/%d bytes)",
                    epoch.epoch_id, report.materialized, report.evicted,
                    report.used_bytes, report.budget_bytes,
                )
            return epoch.epoch_id

    def _advise_sync(self):
        report = self._engine.advisor.tick()
        return report, self._checkpoint_sync()

    async def _advise_loop(self) -> None:
        while not self._closing:
            try:
                await asyncio.sleep(self._advise_interval)
                if self._closing:
                    return
                await self.advise_tick()
            except asyncio.CancelledError:
                return
            except Exception:  # pragma: no cover - defensive
                log.exception("advisor tick failed")

    # ------------------------------------------------------------------
    # Introspection (the /stats view)
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """A JSON-ready report: epoch lifecycle, request/admission
        counters (shed and coalescing outcomes broken down), cache
        counters, payload-shipping totals, per-view ``ViewStats``, and
        the engine registry's versioned metrics snapshot."""
        current = self._registry.current
        tracker = self._engine.maintenance
        with self._counters_lock:
            counters = dict(self._counters)
        return {
            "epoch": dict(
                self._registry.drain_stats(),
                current=self._registry.current_id,
                active_readers=current.readers if current is not None else 0,
            ),
            "requests": dict(
                counters,
                inflight=self._active,
                max_inflight=self._max_inflight,
                max_queue=self._max_queue,
            ),
            "metrics": self._engine.registry.snapshot(),
            "caches": dict(
                self._engine.cache_stats(),
                served_answers=self._answers.stats.snapshot(),
            ),
            "shipping": self._engine.ship_stats(),
            "views": (
                {
                    name: stats.snapshot()
                    for name, stats in tracker.stats().items()
                }
                if tracker is not None
                else {}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"QueryServer(epoch={self._registry.current_id}, "
            f"inflight={self._active}/{self._max_inflight}+{self._max_queue}, "
            f"{'closing' if self._closing else 'open'})"
        )
