"""Epoch-based snapshot lifecycle for the serving layer.

The serving model is the paper's premise made operational: readers
evaluate against an *immutable* frozen snapshot plus materialized view
extensions, while maintenance keeps running.  An :class:`Epoch` is one
such immutable generation -- an
:class:`~repro.engine.engine.EngineCheckpoint` plus a reader refcount --
and the :class:`SnapshotRegistry` is the single atomically-swapped
pointer to the current one:

* a reader **pins** the current epoch before evaluating and releases it
  after; pinning is O(1) and never blocks on maintenance;
* maintenance builds epoch ``N+1`` off the event loop (``apply_delta``
  + snapshot refresh + stale-view rematerialization, all inside
  :meth:`QueryEngine.checkpoint`), then **swaps** the registry pointer;
* the superseded epoch is *retired*: in-flight readers drain on it at
  their own pace, and when the last one releases, it is **drained** --
  the measurable guarantee that a swap is never stop-the-world.

Refcounting uses a plain lock (pin/release/swap are each a few
instructions), so epochs are safe to touch from the event loop and from
executor threads alike.
"""

from __future__ import annotations

import logging
import threading
from typing import List, Optional

from repro.engine.engine import EngineCheckpoint

log = logging.getLogger(__name__)


class Epoch:
    """One immutable serving generation, with a reader refcount.

    ``checkpoint`` carries everything evaluation needs (snapshot,
    extensions, version stamps); ``epoch_id`` is the generation number
    (0 for the initial build, +1 per applied maintenance batch).
    """

    __slots__ = ("epoch_id", "checkpoint", "_lock", "_readers", "_retired", "_drained")

    def __init__(self, epoch_id: int, checkpoint: EngineCheckpoint) -> None:
        self.epoch_id = epoch_id
        self.checkpoint = checkpoint
        self._lock = threading.Lock()
        self._readers = 0
        self._retired = False
        self._drained = threading.Event()

    @property
    def readers(self) -> int:
        """Number of in-flight readers currently pinning this epoch."""
        return self._readers

    @property
    def retired(self) -> bool:
        """Whether a newer epoch has superseded this one."""
        return self._retired

    @property
    def drained(self) -> bool:
        """Whether this epoch is retired *and* its last reader left."""
        return self._drained.is_set()

    def acquire(self) -> None:
        """Pin the epoch (one more in-flight reader)."""
        with self._lock:
            self._readers += 1

    def release(self) -> None:
        """Unpin the epoch; the final release of a retired epoch marks
        it drained."""
        with self._lock:
            self._readers -= 1
            if self._readers < 0:
                raise RuntimeError(
                    f"epoch {self.epoch_id} released more times than acquired"
                )
            if self._retired and self._readers == 0:
                self._drained.set()

    def retire(self) -> None:
        """Mark the epoch superseded (idempotent); drains immediately
        when no reader holds it."""
        with self._lock:
            self._retired = True
            if self._readers == 0:
                self._drained.set()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until drained (for tests and shutdown accounting)."""
        return self._drained.wait(timeout)

    def __repr__(self) -> str:
        state = "drained" if self.drained else (
            "retired" if self._retired else "current"
        )
        return f"Epoch(id={self.epoch_id}, readers={self._readers}, {state})"


class SnapshotRegistry:
    """The atomically-swapped pointer to the current :class:`Epoch`.

    ``pin()`` hands a reader the current epoch with its refcount already
    taken -- the pointer read and the acquire happen under one lock, so
    a concurrent swap can never retire an epoch between a reader seeing
    it and pinning it.  ``swap()`` publishes the next generation and
    retires the previous one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Epoch] = None
        self._swaps = 0
        # Retired-but-not-yet-drained epochs only: drained epochs are
        # pruned (their checkpoints freed) and tallied, so a
        # long-running server never accumulates old generations.
        self._draining: List[Epoch] = []
        self._drained_count = 0

    @property
    def current(self) -> Optional[Epoch]:
        """The current epoch (``None`` before the first publish)."""
        return self._current

    @property
    def current_id(self) -> int:
        """The current epoch id (``-1`` before the first publish)."""
        epoch = self._current
        return epoch.epoch_id if epoch is not None else -1

    @property
    def swaps(self) -> int:
        """Number of epoch swaps (publishes after the first)."""
        return self._swaps

    def pin(self) -> Epoch:
        """Atomically read-and-acquire the current epoch."""
        with self._lock:
            epoch = self._current
            if epoch is None:
                raise RuntimeError("no epoch published yet")
            epoch.acquire()
            return epoch

    def swap(self, checkpoint: EngineCheckpoint) -> Epoch:
        """Publish ``checkpoint`` as the next epoch, retiring the
        current one (which drains as its readers finish)."""
        with self._lock:
            previous = self._current
            epoch = Epoch(
                (previous.epoch_id + 1) if previous is not None else 0,
                checkpoint,
            )
            self._current = epoch
            if previous is not None:
                self._swaps += 1
                self._draining.append(previous)
            self._prune_locked()
        if previous is not None:
            # Outside the registry lock: retire() takes the epoch lock,
            # and drained bookkeeping should not block pinners.
            previous.retire()
            log.debug(
                "epoch %d published; epoch %d retired with %d readers",
                epoch.epoch_id, previous.epoch_id, previous.readers,
            )
        return epoch

    def _prune_locked(self) -> None:
        still = [epoch for epoch in self._draining if not epoch.drained]
        self._drained_count += len(self._draining) - len(still)
        self._draining = still

    def drain_stats(self) -> dict:
        """Counters for ``/stats``: swaps, retired epochs still holding
        readers, and fully drained epochs."""
        with self._lock:
            self._prune_locked()
            return {
                "swaps": self._swaps,
                "draining": len(self._draining),
                "drained": self._drained_count,
            }
