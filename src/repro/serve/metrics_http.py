"""A minimal Prometheus-style text endpoint for the metrics registry.

``repro serve --metrics-port N`` exposes the engine's
:class:`~repro.obs.metrics.MetricsRegistry` as ``GET /metrics`` in the
Prometheus text exposition format (plus ``GET /stats`` as JSON for
humans without a scraper).  Stdlib-only: a :class:`ThreadingHTTPServer`
on its own daemon thread, reading the registry through the same locks
every other consumer uses -- no event-loop involvement, so a slow
scraper never stalls query serving.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

log = logging.getLogger(__name__)


class MetricsServer:
    """Serve ``/metrics`` (Prometheus text) and ``/stats`` (JSON).

    Parameters
    ----------
    render:
        Zero-argument callable returning the exposition text (usually
        ``registry.render_prometheus``).
    stats:
        Optional zero-argument callable returning a JSON-ready dict
        (usually ``QueryServer.stats``); 404 when absent.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        off :attr:`address`).
    """

    def __init__(
        self,
        render: Callable[[], str],
        stats: Optional[Callable[[], dict]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = outer._render().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/stats" and outer._stats is not None:
                    body = json.dumps(outer._stats(), default=str).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args) -> None:
                log.debug("metrics http: " + fmt, *args)

        self._render = render
        self._stats = stats
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
            log.info("metrics endpoint on %s:%d", *self.address)
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join its thread."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()
