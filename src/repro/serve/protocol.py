"""A JSON-lines TCP front-end for :class:`~repro.serve.server.QueryServer`.

``repro serve`` speaks newline-delimited JSON over a plain socket --
deliberately stdlib-only, trivially scriptable (``nc``, a five-line
client, a load generator), and shaped like the in-process API:

Request (one JSON object per line)::

    {"op": "query",  "pattern": {<pattern JSON>}, "selection": "minimal"?}
    {"op": "update", "ops": [["insert", u, v], ["delete", u, v], ...]}
    {"op": "stats"}
    {"op": "metrics"}                  # registry snapshot (counters/histograms)
    {"op": "slowlog", "limit": N?}     # slowest request span trees
    {"op": "traces",  "limit": N?}     # most recent request span trees
    {"op": "plans",   "limit": N?}     # recent plan-choice records
    {"op": "ping"}

Response (one JSON object per line)::

    {"ok": true, "epoch": N, ...}                      # op-specific payload
    {"ok": false, "error": "...", "retriable": bool}   # failures

A shed request answers ``retriable: true`` (back off and resend); every
other error answers ``retriable: false``.  Pattern and node encodings
are exactly the :mod:`repro.graph.io` JSON formats, so pattern files
written by ``repro generate`` can be sent verbatim.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional

from repro.errors import ReproError

log = logging.getLogger(__name__)
from repro.graph.io import node_from_json, node_to_json, pattern_from_json
from repro.serve.server import QueryServer, ServedAnswer
from repro.simulation.result import MatchResult
from repro.views.maintenance import DELETE, INSERT, Delta


def _encode_result(result: MatchResult) -> Dict[str, Any]:
    return {
        "pairs": result.result_size,
        "node_matches": {
            str(node): sorted((node_to_json(v) for v in values), key=repr)
            for node, values in result.node_matches.items()
        },
        "edge_matches": {
            f"{edge[0]}->{edge[1]}": sorted(
                ([node_to_json(u), node_to_json(v)] for u, v in pairs),
                key=repr,
            )
            for edge, pairs in result.edge_matches.items()
        },
    }


def _encode_answer(answer: ServedAnswer) -> Dict[str, Any]:
    return {
        "ok": True,
        "epoch": answer.epoch,
        "cache_hit": answer.cache_hit,
        "coalesced": answer.coalesced,
        "elapsed_ms": answer.elapsed * 1e3,
        "result": _encode_result(answer.result),
    }


def _parse_delta(ops: Any) -> Delta:
    delta = Delta()
    for entry in ops:
        op, source, target = entry
        if op == "+":
            op = INSERT
        elif op == "-":
            op = DELETE
        if op == INSERT:
            delta.insert(node_from_json(source), node_from_json(target))
        elif op == DELETE:
            delta.delete(node_from_json(source), node_from_json(target))
        else:
            raise ValueError(
                f"unknown update op {op!r}; expected '+', '-', "
                f"{INSERT!r} or {DELETE!r}"
            )
    return delta


async def _dispatch(server: QueryServer, request: Dict[str, Any]) -> Dict[str, Any]:
    op = request.get("op")
    if op == "query":
        pattern = pattern_from_json(request["pattern"])
        answer = await server.query(pattern, request.get("selection"))
        return _encode_answer(answer)
    if op == "update":
        outcome = await server.update(_parse_delta(request.get("ops", [])))
        return {
            "ok": True,
            "epoch": outcome.epoch,
            "applied": outcome.report.applied,
            "skipped": outcome.report.skipped,
            "changed_views": list(outcome.report.changed_views),
            "stale_bounded": list(outcome.report.stale_bounded),
        }
    if op == "stats":
        return {"ok": True, "epoch": server.current_epoch, "stats": server.stats()}
    if op == "metrics":
        return {
            "ok": True,
            "epoch": server.current_epoch,
            "metrics": server.engine.registry.snapshot(),
        }
    if op == "slowlog":
        limit = int(request.get("limit", 10))
        return {
            "ok": True,
            "epoch": server.current_epoch,
            "slowlog": server.traces.slowest(limit),
        }
    if op == "traces":
        limit = int(request.get("limit", 10))
        return {
            "ok": True,
            "epoch": server.current_epoch,
            "traces": server.traces.recent(limit),
        }
    if op == "plans":
        limit = int(request.get("limit", 10))
        return {
            "ok": True,
            "epoch": server.current_epoch,
            "plans": [r.to_dict() for r in server.engine.plan_log(limit)],
        }
    if op == "ping":
        return {"ok": True, "epoch": server.current_epoch, "pong": True}
    raise ValueError(f"unknown op {op!r}")


async def handle_connection(
    server: QueryServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client: read JSON lines until EOF, answer each."""
    peer = writer.get_extra_info("peername")
    log.debug("connection from %s", peer)
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                response = await _dispatch(server, request)
            except ReproError as err:
                response = {
                    "ok": False,
                    "error": str(err),
                    "retriable": bool(getattr(err, "retriable", False)),
                }
            except (KeyError, TypeError, ValueError) as err:
                log.warning("bad request from %s: %s", peer, err)
                response = {
                    "ok": False,
                    "error": f"bad request: {err}",
                    "retriable": False,
                }
            writer.write(json.dumps(response, default=str).encode() + b"\n")
            await writer.drain()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass  # client vanished mid-request; nothing to answer
    finally:
        # close() without wait_closed(): awaiting here keeps the
        # handler task alive into server shutdown, where its
        # cancellation is logged as a spurious error by asyncio.
        writer.close()


async def serve_tcp(
    server: QueryServer,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Open the TCP front door (``port=0`` picks an ephemeral port;
    read the bound address off ``.sockets[0].getsockname()``).  The
    returned server is not yet serving forever -- callers own its
    lifecycle (``async with``, or ``serve_forever()``)."""

    async def _handler(reader, writer):
        await handle_connection(server, reader, writer)

    return await asyncio.start_server(_handler, host=host, port=port)
