"""The serving layer: ``repro serve`` and its in-process machinery.

Public surface:

* :class:`~repro.serve.server.QueryServer` -- asyncio service over a
  :class:`~repro.engine.engine.QueryEngine`: concurrent readers on
  immutable epochs, epoch-based snapshot swap on maintenance, request
  coalescing, admission control, a ``stats()`` view;
* :class:`~repro.serve.epoch.Epoch` /
  :class:`~repro.serve.epoch.SnapshotRegistry` -- the refcounted epoch
  lifecycle (pin -> evaluate -> release; swap -> retire -> drain);
* :func:`~repro.serve.protocol.serve_tcp` -- the JSON-lines TCP front
  end the ``repro serve`` CLI subcommand exposes;
* :class:`~repro.serve.metrics_http.MetricsServer` -- the optional
  Prometheus-style ``/metrics`` endpoint (``repro serve
  --metrics-port``).
"""

from repro.serve.epoch import Epoch, SnapshotRegistry
from repro.serve.metrics_http import MetricsServer
from repro.serve.protocol import handle_connection, serve_tcp
from repro.serve.server import QueryServer, ServedAnswer, UpdateOutcome

__all__ = [
    "Epoch",
    "MetricsServer",
    "QueryServer",
    "ServedAnswer",
    "SnapshotRegistry",
    "UpdateOutcome",
    "handle_connection",
    "serve_tcp",
]
