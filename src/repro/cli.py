"""Command-line interface: the view-cache workflow end to end.

Subcommands::

    python -m repro generate  --dataset amazon --nodes 10000 --edges 30000 \
                              --out graph.json [--views views.json]
    python -m repro materialize --graph graph.json --views views.json
    python -m repro contain   --query query.json --views views.json [--strategy minimum]
    python -m repro query     --query query.json --views views.json \
                              [--graph graph.json] [--strategy minimal]
    python -m repro engine    --queries q1.json q2.json --views views.json \
                              [--graph graph.json] [--executor process] \
                              [--planner adaptive] [--workers 4] \
                              [--repeat 2] [--explain]
    python -m repro advise    --queries q1.json q2.json --views views.json \
                              --graph graph.json [--repeat 3] \
                              [--budget-fraction 0.15] [--apply] \
                              [--format json]
    python -m repro shard     --graph graph.json --shards 4 \
                              [--strategy hash|label|bfs] [--format json]
    python -m repro maintain  --graph graph.json --views views.json \
                              --updates stream.txt [--batch 50] \
                              [--budget N] [--verify] [--format json]
    python -m repro serve     --graph graph.json --views views.json \
                              [--host 127.0.0.1] [--port 7677] \
                              [--strategy minimal] [--budget N] \
                              [--planner adaptive] \
                              [--auto-materialize 0.15] \
                              [--advise-interval 30] \
                              [--max-inflight 8] [--max-queue 64] \
                              [--metrics-port 9090] [--log-level info]
    python -m repro trace     --query query.json --views views.json \
                              --graph graph.json [--format json]
    python -m repro stats     --graph graph.json [--views views.json] \
                              [--shards 4] [--partitioner hash] \
                              [--format json]
    python -m repro stats     --snapshot snapdir [--format json]
    python -m repro ingest    --edges edges.txt --out snapdir \
                              [--shards 4] [--labels 10] [--budget-mb 64] \
                              [--max-edges N] [--overwrite] [--format json]
    python -m repro snapshot  save --graph graph.json --out snapdir \
                              [--views views.json] [--shards N] \
                              [--partitioner hash] [--overwrite]
    python -m repro snapshot  load snapdir [--verify] [--query query.json]
    python -m repro snapshot  info snapdir [--verify] [--format json]

``generate`` writes a dataset stand-in (and optionally its standard view
suite); ``materialize`` caches extensions into the views file;
``contain`` reports containment / view selection; ``query`` answers the
query from the cached extensions (exactly the MatchJoin pipeline --
pass ``--graph`` only if extensions still need materializing);
``engine`` batch-answers many queries through the planned/cached
:class:`~repro.engine.engine.QueryEngine` (``--repeat`` demonstrates
the warm answer cache, ``--explain`` prints plans without executing,
``--planner adaptive`` engages the cost-based planner); ``advise``
replays a workload through the adaptive engine and reports which views
the :class:`~repro.engine.advisor.WorkloadAdvisor` would materialize
or evict under the byte budget (``--apply`` actually does it);
``shard`` partitions the graph and reports cut quality and per-shard
size/label histograms for each strategy; ``maintain`` replays an edge
update stream (``+ u v`` / ``- u v`` lines) through the delta-driven
maintenance pipeline in batches, reporting per-layer refresh statistics
-- per-view incremental/recompute/irrelevant counts, snapshot
refresh-vs-rebuild counts, and how many batches left each view's
cached answers retainable (``--verify`` additionally asserts every
checkpoint against a from-scratch rematerialization); ``serve`` runs
the long-running asyncio service (:mod:`repro.serve`): concurrent
readers over immutable epoch snapshots, epoch swap on maintenance,
request coalescing and admission control, speaking newline-delimited
JSON over TCP (``{"op": "query"|"update"|"stats"|"metrics"|"slowlog"|
"traces"|"plans"|"ping", ...}``, see :mod:`repro.serve.protocol`),
optionally exposing a Prometheus-style ``/metrics`` endpoint
(``--metrics-port``) and structured stderr logging (``--log-level``);
``trace`` answers one query through an in-process server and prints the
request's span tree -- plan, cache lookup, evaluation, per-task kernel
work -- plus the planner's plan-choice record (``--format json`` emits
both machine-readably); ``stats`` prints
size accounting -- with ``--format json`` it emits a machine-readable report
including the label histogram and the snapshot / label-index statistics
of the compact graph backend (each flat segment labelled with its
``backend`` kind and on-disk byte count), a ``selection`` section
(per-view size / staleness / maintenance-cost rows, the advisor's
scoring input) when ``--views`` is passed, plus a ``partition`` section
when ``--shards N`` is passed; with ``--snapshot DIR`` it instead
inspects a persistent snapshot directory without rebuilding anything.

The out-of-core workflow (:mod:`repro.graph.snapshot` /
:mod:`repro.graph.ingest`): ``ingest`` streams an edge list (SNAP
format) of any size into a sharded on-disk snapshot directory, spilling
shard-partitioned runs to disk under a byte budget and building one
shard at a time so peak memory stays flat; ``snapshot save`` persists
an in-memory graph (optionally sharded, optionally with its view
catalog) as versioned, checksummed segment files; ``snapshot load``
reattaches a directory via read-only ``mmap`` -- no rebuild -- and can
answer a query straight off the cached view packs; ``snapshot info``
prints the manifest and per-file accounting (``--verify`` runs a full
payload CRC audit).  ``serve --snapshot DIR`` boots the service from
such a directory, and ``serve --persist [DIR]`` writes each published
epoch back out, so a restart resumes from the latest maintained state.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Optional, Sequence

from repro.core.answer import answer_with_views
from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.containment import contains
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.datasets import (
    amazon_graph,
    amazon_views,
    citation_graph,
    citation_views,
    random_graph,
    youtube_graph,
    youtube_views,
)
from repro.datasets.patterns import generate_views
from repro.engine import QueryEngine
from repro.errors import NotContainedError
from repro.graph.io import read_graph, read_pattern, write_graph
from repro.graph.pattern import BoundedPattern
from repro.graph.stats import graph_stats
from repro.views.io import read_viewset, write_viewset

_DATASETS = {
    "amazon": (amazon_graph, amazon_views),
    "citation": (citation_graph, citation_views),
    "youtube": (youtube_graph, lambda: youtube_views()),
    "synthetic": (random_graph, None),
}


def _cmd_generate(args) -> int:
    if args.dataset == "synthetic":
        graph = random_graph(args.nodes, args.edges, seed=args.seed)
        views = generate_views(
            tuple(f"l{i}" for i in range(10)), 22, seed=args.seed
        )
    else:
        graph_fn, views_fn = _DATASETS[args.dataset]
        graph = graph_fn(args.nodes, args.edges, seed=args.seed)
        views = views_fn() if views_fn else None
    write_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    if args.views and views is not None:
        write_viewset(views, args.views)
        print(f"wrote {views.cardinality} view definitions to {args.views}")
    return 0


def _cmd_materialize(args) -> int:
    graph = read_graph(args.graph)
    views = read_viewset(args.views)
    views.materialize(graph)
    write_viewset(views, args.views)
    fraction = views.extension_fraction(graph)
    print(
        f"materialized {views.cardinality} views "
        f"({views.extension_size} items, {fraction:.1%} of |G|)"
    )
    return 0


def _select(query, views, strategy):
    bounded = isinstance(query, BoundedPattern) or any(d.is_bounded for d in views)
    table = {
        "all": (contains, bounded_contains),
        "minimal": (minimal_views, bounded_minimal_views),
        "minimum": (minimum_views, bounded_minimum_views),
    }
    return table[strategy][1 if bounded else 0](query, views)


def _cmd_contain(args) -> int:
    query = read_pattern(args.query)
    views = read_viewset(args.views)
    containment = _select(query, views, args.strategy)
    if containment.holds:
        print(f"contained: yes ({args.strategy} selection)")
        print(f"views used: {', '.join(containment.views_used())}")
        for edge, refs in sorted(containment.mapping.items(), key=repr):
            targets = ", ".join(f"{name}:{ve[0]}->{ve[1]}" for name, ve in refs)
            print(f"  {edge[0]} -> {edge[1]}  <=  {targets}")
        return 0
    print("contained: no")
    for edge in sorted(containment.uncovered, key=repr):
        print(f"  uncovered: {edge[0]} -> {edge[1]}")
    return 1


def _cmd_query(args) -> int:
    query = read_pattern(args.query)
    views = read_viewset(args.views)
    graph = read_graph(args.graph) if args.graph else None
    try:
        answer = answer_with_views(
            query, views, graph=graph, selection=args.strategy
        )
    except NotContainedError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(f"views used: {', '.join(answer.views_used)}")
    print(f"result pairs: {answer.result.result_size}")
    print(answer.result.pretty())
    if args.out:
        rows = {
            f"{edge[0]}->{edge[1]}": sorted(map(list, pairs))
            for edge, pairs in answer.result.edge_matches.items()
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, default=str)
        print(f"result written to {args.out}")
    return 0


def _cmd_engine(args) -> int:
    try:
        queries = [read_pattern(path) for path in args.queries]
        views = read_viewset(args.views)
        graph = read_graph(args.graph) if args.graph else None
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    try:
        engine = QueryEngine(
            views,
            graph=graph,
            selection=args.strategy,
            executor=args.executor,
            workers=args.workers,
            planner=args.planner,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.explain:
        for path, query in zip(args.queries, queries):
            print(f"-- {path}")
            print(engine.plan(query).explain())
        return 0
    for round_index in range(args.repeat):
        try:
            results = engine.answer_batch(queries)
        except NotContainedError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        total = sum(r.stats.elapsed for r in results)
        label = "cold" if round_index == 0 else f"warm #{round_index}"
        print(f"[{label}] {len(results)} queries in {total * 1e3:.2f} ms")
        for path, result in zip(args.queries, results):
            stats = result.stats
            provenance = "cache" if stats.cache_hit else stats.strategy
            print(
                f"  {path}: {result.result_size} pairs via {provenance} "
                f"({stats.elapsed * 1e3:.2f} ms)"
            )
    caches = engine.cache_stats()
    for which, counters in caches.items():
        print(
            f"{which} cache: {counters['hits']} hits / "
            f"{counters['misses']} misses"
        )
    return 0


def _cmd_advise(args) -> int:
    """Replay a workload through the adaptive engine, then report (or
    apply) the advisor's materialize/evict plan for the byte budget."""
    from repro.engine.advisor import WorkloadAdvisor

    try:
        queries = [read_pattern(path) for path in args.queries]
        views = read_viewset(args.views)
        graph = read_graph(args.graph)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    engine = QueryEngine(
        views, graph=graph, selection=args.strategy, planner="adaptive"
    )
    advisor = WorkloadAdvisor(
        engine,
        budget_fraction=args.budget_fraction,
        budget_bytes=args.budget_bytes,
    )
    for _ in range(max(1, args.repeat)):
        for query in queries:
            engine.answer(query)
    report = advisor.tick() if args.apply else advisor.advise()
    if args.apply and args.out:
        write_viewset(views, args.out)
    if args.format == "json":
        payload = dict(
            report.to_dict(), cost_model=engine.cost_model.snapshot()
        )
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    budget_share = (
        report.budget_bytes / report.graph_bytes if report.graph_bytes else 0.0
    )
    print(
        f"workload: {len(queries)} queries x {max(1, args.repeat)} rounds; "
        f"budget {report.budget_bytes} bytes "
        f"({budget_share:.1%} of {report.graph_bytes}-byte graph)"
    )
    markers = {"materialize": "+", "evict": "-", "keep": "=", "none": " "}
    for score in report.scores:
        state = "materialized" if score.materialized else "cold"
        print(
            f"  {markers[score.action]} {score.name}: "
            f"score={score.score:.3g} hits={score.hits} "
            f"benefit={score.benefit * 1e3:.2f}ms "
            f"bytes={score.bytes} maint={score.maintenance_cost:.0f} "
            f"[{state}]"
        )
    verb = "applied" if report.applied else "plan"
    print(
        f"{verb}: materialize {report.materialized or 'nothing'}, "
        f"evict {report.evicted or 'nothing'}; "
        f"cache {report.used_bytes} bytes "
        f"({report.budget_fraction_used:.1%} of budget)"
        + ("" if report.applied else "  (use --apply to execute)")
    )
    return 0


def _cmd_shard(args) -> int:
    from repro.shard import ShardedGraph, make_partition

    graph = read_graph(args.graph)
    partition = make_partition(graph, args.shards, args.strategy)
    sharded = ShardedGraph(graph, partition)
    per_shard = []
    for i in range(partition.num_shards):
        snapshot = sharded.shard(i)
        own = sharded.own_count(i)
        histogram: dict = {}
        for local_id in range(own):
            for label in snapshot.labels_of(local_id):
                histogram[label] = histogram.get(label, 0) + 1
        per_shard.append(
            {
                "nodes": own,
                "edges": snapshot.num_edges,
                "ghosts": len(sharded.ghost_ids(i)),
                "labels": dict(
                    sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
                ),
            }
        )
    if args.format == "json":
        payload = {"partition": partition.stats(), "per_shard": per_shard}
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(
        f"{partition.strategy} partition: {partition.num_shards} shards, "
        f"cut {partition.edge_cut}/{graph.num_edges} edges "
        f"({partition.edge_cut_fraction:.1%}), "
        f"{len(partition.boundary_nodes)} boundary nodes, "
        f"balance {partition.balance:.2f}"
    )
    for i, row in enumerate(per_shard):
        top = ", ".join(
            f"{label}:{count}" for label, count in list(row["labels"].items())[:5]
        )
        print(
            f"  shard {i}: {row['nodes']} nodes, {row['edges']} edges "
            f"({row['ghosts']} ghosts)  {top}"
        )
    return 0


def _cmd_maintain(args) -> int:
    from repro.views.maintenance import Delta
    from repro.views.view import materialize as _materialize

    graph = read_graph(args.graph)
    views = read_viewset(args.views)
    try:
        with open(args.updates, encoding="utf-8") as handle:
            delta = Delta.parse(handle)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    with warnings.catch_warnings():
        # The skipped-bounded warning is surfaced in the report instead.
        warnings.simplefilter("ignore", UserWarning)
        tracker = views.track(graph, budget=args.budget)
    # Engage the snapshot layer so the report can show refresh-vs-
    # rebuild behaviour of the frozen graph under the same stream.
    previous = tracker.graph.freeze()
    batch_size = max(1, args.batch)
    ops = delta.ops
    batches = [
        Delta(ops[start : start + batch_size])
        for start in range(0, len(ops), batch_size)
    ]
    snapshot_refreshes = snapshot_rebuilds = 0
    retained_batches = {name: 0 for name in tracker.names()}
    applied = skipped = 0
    stale_bounded: set = set()
    for batch in batches:
        report = views.apply_delta(batch)
        applied += report.applied
        skipped += report.skipped
        stale_bounded.update(report.stale_bounded)
        for name in tracker.names():
            if name not in report.changed_views:
                retained_batches[name] += 1
        refreshed = tracker.graph.freeze()
        if refreshed is not previous:
            if refreshed.extends_token == previous.snapshot_token:
                snapshot_refreshes += 1
            else:
                snapshot_rebuilds += 1
            previous = refreshed
        if args.verify:
            for name in tracker.names():
                fresh = _materialize(tracker.definition(name), tracker.graph)
                if tracker.extension(name).edge_matches != fresh.edge_matches:
                    print(
                        f"error: view {name!r} diverged from "
                        "rematerialization",
                        file=sys.stderr,
                    )
                    return 1
    per_view = {
        name: stats.snapshot() for name, stats in tracker.stats().items()
    }
    payload = {
        "updates": {
            "total": len(ops),
            "applied": applied,
            "skipped": skipped,
            "batches": len(batches),
            "batch_size": batch_size,
        },
        "views": {
            name: dict(
                counters,
                retained_batches=retained_batches[name],
            )
            for name, counters in per_view.items()
        },
        "snapshot": {
            "refreshes": snapshot_refreshes,
            "rebuilds": snapshot_rebuilds,
        },
        "stale_bounded": sorted(stale_bounded, key=str),
        "verified": bool(args.verify),
    }
    if args.format == "json":
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(
        f"replayed {applied} updates ({skipped} skipped) in "
        f"{len(batches)} batches of <= {batch_size}"
    )
    print(
        f"graph snapshot: {snapshot_refreshes} incremental refreshes, "
        f"{snapshot_rebuilds} full rebuilds"
    )
    for name, counters in per_view.items():
        print(
            f"  view {name}: {counters['incremental_inserts']} incremental / "
            f"{counters['recomputes']} recomputed / "
            f"{counters['irrelevant_inserts']} irrelevant inserts, "
            f"{counters['deletions']} deletions "
            f"({counters['removed_pairs']} pairs pruned, "
            f"{counters['revived_pairs']} revived); "
            f"cached answers retainable through "
            f"{retained_batches[name]}/{len(batches)} batches"
        )
    if stale_bounded:
        print(
            "stale bounded views (not maintained incrementally, "
            "rematerialize before reading): "
            + ", ".join(sorted(stale_bounded, key=str))
        )
    if args.verify:
        print("verified: maintained extensions == rematerialization "
              "at every batch checkpoint")
    return 0


def _cmd_ingest(args) -> int:
    """Stream an edge list into a sharded on-disk snapshot directory."""
    import zlib

    from repro.graph.ingest import ingest_snapshot
    from repro.graph.io import read_snap_edges

    labeler = None
    if args.labels:
        buckets = args.labels

        def labeler(node, _k=buckets):
            return (f"l{zlib.crc32(repr(node).encode()) % _k}",)

    try:
        report = ingest_snapshot(
            read_snap_edges(args.edges),
            args.out,
            num_shards=args.shards,
            labeler=labeler,
            budget_bytes=args.budget_mb << 20,
            max_edges=args.max_edges,
            overwrite=args.overwrite,
        )
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.format == "json":
        json.dump(report.to_json(), sys.stdout, indent=2)
        print()
        return 0
    print(
        f"ingested {report.edges} edges / {report.nodes} nodes into "
        f"{report.shards} shards at {report.out_dir} "
        f"({report.cut_edges} cut edges, "
        f"{report.on_disk_bytes / (1 << 20):.1f} MiB on disk) "
        f"in {report.seconds:.2f}s"
    )
    print(
        f"  spill traffic {report.spill_bytes / (1 << 20):.1f} MiB, "
        f"peak builder RSS growth {report.peak_rss_bytes / (1 << 20):.1f} MiB"
    )
    return 0


def _cmd_snapshot_save(args) -> int:
    from repro.graph.snapshot import SnapshotStore

    try:
        graph = read_graph(args.graph)
        views = read_viewset(args.views) if args.views else None
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    target = graph
    if args.shards:
        from repro.shard import ShardedGraph, make_partition

        target = ShardedGraph(
            graph, make_partition(graph, args.shards, args.partitioner)
        )
    if views is not None:
        views.materialize(graph)
    try:
        manifest = SnapshotStore.save(
            args.out, target, views=views, overwrite=args.overwrite
        )
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    meta = manifest.get("graph", {})
    print(
        f"saved {manifest.get('kind')} snapshot to {args.out}: "
        f"{meta.get('nodes')} nodes / {meta.get('edges')} edges, "
        f"{len(manifest.get('views', {}))} views"
    )
    return 0


def _cmd_snapshot_load(args) -> int:
    from repro.graph.snapshot import SnapshotStore

    try:
        loaded = SnapshotStore.load(args.path, verify=args.verify)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    graph = loaded.graph
    kind = loaded.manifest.get("kind")
    shards = getattr(graph, "num_shards", None)
    print(
        f"loaded {kind} snapshot from {loaded.path}: "
        f"{graph.num_nodes} nodes / {graph.num_edges} edges"
        + (f" across {shards} shards" if shards is not None else "")
        + f", {len(loaded.views)} views"
        + (" (payload CRCs verified)" if args.verify else "")
    )
    if not args.query:
        return 0
    try:
        query = read_pattern(args.query)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    engine = QueryEngine(snapshot_path=loaded, selection=args.strategy)
    try:
        result = engine.answer(query)
    except NotContainedError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(
        f"query: {result.result_size} pairs via {result.stats.strategy} "
        f"({result.stats.elapsed * 1e3:.2f} ms, no rebuild)"
    )
    return 0


def _cmd_snapshot_info(args) -> int:
    import os

    from repro.graph.flatbuf import SegmentFormatError, verify_segment_file
    from repro.graph.snapshot import MANIFEST_NAME

    path = os.fspath(args.path)
    try:
        with open(os.path.join(path, MANIFEST_NAME), encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    files = {
        name: os.path.getsize(os.path.join(path, name))
        for name in sorted(os.listdir(path))
        if os.path.isfile(os.path.join(path, name))
    }
    verified = []
    if args.verify:
        for name in files:
            if not name.endswith(".seg"):
                continue
            try:
                verify_segment_file(os.path.join(path, name))
            except SegmentFormatError as err:
                print(f"error: {name}: {err}", file=sys.stderr)
                return 1
            verified.append(name)
    if args.format == "json":
        payload = {
            "path": path,
            "manifest": manifest,
            "files": files,
            "on_disk_bytes": sum(files.values()),
            "verified_segments": verified,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    meta = manifest.get("graph", {})
    print(
        f"{manifest.get('kind')} snapshot (format {manifest.get('format')}): "
        f"{meta.get('nodes')} nodes / {meta.get('edges')} edges, "
        f"{len(manifest.get('views', {}))} views, "
        f"token {meta.get('snapshot_token')}"
        + (
            f" (extends {meta.get('extends_token')})"
            if meta.get("extends_token")
            else ""
        )
    )
    for name, size in files.items():
        marker = "  [crc ok]" if name in verified else ""
        print(f"  {name}: {size} bytes{marker}")
    print(f"total on disk: {sum(files.values())} bytes")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs.logsetup import install as install_logging
    from repro.serve import MetricsServer, QueryServer, serve_tcp
    from repro.views.maintenance import IncrementalViewSet

    install_logging(args.log_level)
    if args.snapshot is not None and (args.graph or args.views):
        print(
            "error: --snapshot conflicts with --graph/--views",
            file=sys.stderr,
        )
        return 1
    if args.snapshot is None and not (args.graph and args.views):
        print(
            "error: serve needs either --snapshot DIR or both --graph "
            "and --views",
            file=sys.stderr,
        )
        return 1
    persist = args.persist
    if persist == "":
        if args.snapshot is None:
            print(
                "error: bare --persist (no directory) requires --snapshot",
                file=sys.stderr,
            )
            return 1
        persist = args.snapshot
    try:
        if args.snapshot is not None:
            from repro.graph.snapshot import SnapshotStore

            loaded = SnapshotStore.load(args.snapshot)
            graph = loaded.graph
            views = loaded.viewset()
            engine = QueryEngine(
                views,
                snapshot_path=loaded,
                selection=args.strategy,
                planner=args.planner,
                auto_materialize=args.auto_materialize,
            )
        else:
            graph = read_graph(args.graph)
            views = read_viewset(args.views)
            tracker = IncrementalViewSet(
                views.definitions(), graph, budget=args.budget
            )
            if tracker.skipped_bounded:
                print(
                    "note: bounded views are rematerialized per epoch, not "
                    "incrementally maintained: "
                    + ", ".join(tracker.skipped_bounded),
                    file=sys.stderr,
                )
            engine = QueryEngine(
                views,
                graph=graph,
                selection=args.strategy,
                planner=args.planner,
                auto_materialize=args.auto_materialize,
            )
            engine.attach_maintenance(tracker)
        server = QueryServer(
            engine,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            advise_interval=args.advise_interval,
            persist_path=persist,
        )
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.snapshot is not None:
        print(f"booted from snapshot {args.snapshot} (mmap, no rebuild)",
              flush=True)
    if persist:
        print(f"persisting epoch snapshots to {persist}", flush=True)
    metrics = None
    if args.metrics_port is not None:
        metrics = MetricsServer(
            engine.registry.render_prometheus,
            stats=server.stats,
            host=args.host,
            port=args.metrics_port,
        ).start()
        print(
            f"metrics on http://{metrics.address[0]}:{metrics.address[1]}"
            "/metrics",
            flush=True,
        )

    async def main() -> None:
        async with server:
            tcp = await serve_tcp(server, host=args.host, port=args.port)
            host, port = tcp.sockets[0].getsockname()[:2]
            print(
                f"serving {graph.num_nodes} nodes / {graph.num_edges} edges, "
                f"{views.cardinality} views on {host}:{port} "
                f"(JSON lines; ops: query, update, stats, metrics, "
                f"slowlog, traces, plans, ping)",
                flush=True,
            )
            async with tcp:
                await tcp.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if metrics is not None:
            metrics.stop()
    return 0


def _cmd_trace(args) -> int:
    """Answer one query through a local :class:`QueryServer` and print
    the request's span tree plus its plan-choice record."""
    import asyncio

    from repro.obs.trace import format_span_tree
    from repro.serve import QueryServer

    try:
        query = read_pattern(args.query)
        views = read_viewset(args.views)
        graph = read_graph(args.graph)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    engine = QueryEngine(views, graph=graph, selection=args.strategy)
    server = QueryServer(engine)

    async def run():
        async with server:
            return await server.query(query)

    try:
        answer = asyncio.run(run())
    except NotContainedError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    traces = server.traces.recent(1)
    plans = engine.plan_log(1)
    if args.format == "json":
        payload = {
            "result_pairs": answer.result.result_size,
            "epoch": answer.epoch,
            "trace": traces[0] if traces else None,
            "plan": plans[0].to_dict() if plans else None,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0
    record = plans[0] if plans else None
    if record is not None:
        print(
            f"plan: {record.strategy} (selection={record.selection}, "
            f"snapshot={record.snapshot_kind}"
            + (f", fallback={record.reason}" if record.reason else "")
            + ")"
        )
        if record.views_used:
            sizes = ", ".join(
                f"{name}({record.view_sizes.get(name, '?')})"
                for name in record.views_used
            )
            print(f"views: {sizes}")
    print(f"result: {answer.result.result_size} pairs on epoch {answer.epoch}")
    if traces:
        print(format_span_tree(traces[0]))
    return 0


def _snapshot_stats(args) -> int:
    """Inspect a persistent snapshot directory: backend kinds and byte
    accounting per attached segment, without rebuilding anything."""
    import os

    from repro.graph.snapshot import SnapshotStore

    try:
        loaded = SnapshotStore.load(args.snapshot)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    graph = loaded.graph
    shards = getattr(graph, "num_shards", None)
    segments = {}
    if shards is not None:
        for i in range(shards):
            store = graph.shard(i).flat_store
            segments[f"shard-{i:03d}"] = {
                "backend": store.backend,
                "tables": store.table_bytes(),
                "total_bytes": store.total_bytes,
                "on_disk_bytes": store.on_disk_bytes,
            }
    else:
        store = graph.flat_store
        segments["graph"] = {
            "backend": store.backend,
            "tables": store.table_bytes(),
            "total_bytes": store.total_bytes,
            "on_disk_bytes": store.on_disk_bytes,
        }
    for name, view in loaded.views.items():
        packed = getattr(view, "compact", None)
        vstore = getattr(packed, "store", None)
        if vstore is None:
            continue
        segments[f"view:{name}"] = {
            "backend": vstore.backend,
            "tables": vstore.table_bytes(),
            "total_bytes": vstore.total_bytes,
            "on_disk_bytes": vstore.on_disk_bytes,
        }
    files = {
        name: os.path.getsize(os.path.join(loaded.path, name))
        for name in sorted(os.listdir(loaded.path))
        if os.path.isfile(os.path.join(loaded.path, name))
    }
    meta = loaded.manifest.get("graph", {})
    if args.format == "json":
        payload = {
            "snapshot": {
                "path": loaded.path,
                "kind": loaded.manifest.get("kind"),
                "format": loaded.manifest.get("format"),
                "graph": meta,
                "shards": shards,
                "views": sorted(loaded.views),
            },
            "memory": {
                "backend": "file",
                "segments": segments,
                "on_disk_bytes": sum(files.values()),
                "files": files,
            },
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(
        f"{loaded.manifest.get('kind')} snapshot at {loaded.path}: "
        f"{meta.get('nodes')} nodes / {meta.get('edges')} edges, "
        f"{len(loaded.views)} views, "
        f"{sum(files.values())} bytes on disk"
    )
    for name, row in segments.items():
        print(
            f"  {name}: backend={row['backend']} "
            f"{row['total_bytes']} bytes mapped, "
            f"{row['on_disk_bytes']} on disk"
        )
    return 0


def _cmd_stats(args) -> int:
    if args.snapshot:
        return _snapshot_stats(args)
    if not args.graph:
        print("error: stats needs --graph (or --snapshot DIR)",
              file=sys.stderr)
        return 1
    graph = read_graph(args.graph)
    stats = graph_stats(graph)
    views = read_viewset(args.views) if args.views else None
    partition = None
    if args.shards:
        from repro.shard import make_partition

        partition = make_partition(graph, args.shards, args.partitioner)
    if args.format == "json":
        from repro.graph.flatbuf import SharedCompactGraph
        from repro.views.flatpack import FlatExtension

        index = graph.label_index_stats()
        snapshot = graph.freeze()
        flat = SharedCompactGraph.share(snapshot)
        memory = {
            "backend": flat.flat_store.backend,
            "graph": {
                "backend": flat.flat_store.backend,
                "tables": flat.flat_table_bytes(),
                "total_bytes": flat.flat_store.total_bytes,
                "on_disk_bytes": flat.flat_store.on_disk_bytes,
            },
        }
        payload = {
            "graph": {
                "nodes": stats.num_nodes,
                "edges": stats.num_edges,
                "size": stats.size,
                "max_out_degree": stats.max_out_degree,
                "max_in_degree": stats.max_in_degree,
                "avg_out_degree": stats.avg_out_degree,
            },
            "label_histogram": dict(
                sorted(stats.label_counts.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
            "label_index": {
                "labels": len(index),
                "indexed_nodes": sum(index.values()),
                "largest_bucket": (
                    max(index.items(), key=lambda kv: kv[1])[0] if index else None
                ),
            },
            "snapshot": {
                "version": snapshot.snapshot_version,
                "token": snapshot.snapshot_token,
                "nodes": snapshot.num_nodes,
                "edges": snapshot.num_edges,
            },
            "memory": memory,
        }
        if partition is not None:
            payload["partition"] = partition.stats()
        if views is not None:
            from repro.views.selection import selection_stats

            payload["selection"] = selection_stats(views)
            payload["views"] = {
                "cardinality": views.cardinality,
                "materialized": [
                    n for n in views.names() if views.is_materialized(n)
                ],
                "definition_size": views.definition_size,
                "extension_size": views.extension_size,
                "extension_fraction": views.extension_fraction(graph),
                "snapshot_token": views.snapshot_token,
            }
            # Per-view flat-buffer footprint: the bytes one extension
            # occupies once packed for zero-copy shipping.  Extensions
            # loaded from disk carry no id-space payload, so those are
            # re-materialized against the shared snapshot to measure.
            from repro.views.view import materialize as _materialize

            view_memory = {}
            for name in views.names():
                if not views.is_materialized(name):
                    continue
                base = getattr(views.extension(name), "compact", None)
                if isinstance(base, FlatExtension):
                    packed = base
                elif base is not None:
                    packed = FlatExtension.pack(flat, base)
                else:
                    fresh = _materialize(views.definition(name), flat)
                    packed = getattr(fresh, "compact", None)
                    if not isinstance(packed, FlatExtension):
                        continue
                view_memory[name] = {
                    "backend": packed.store.backend,
                    "tables": packed.store.table_bytes(),
                    "total_bytes": packed.store.total_bytes,
                    "on_disk_bytes": packed.store.on_disk_bytes,
                }
            memory["views"] = view_memory
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"nodes: {stats.num_nodes}  edges: {stats.num_edges}  |G|: {stats.size}")
    print(f"max out-degree: {stats.max_out_degree}  "
          f"max in-degree: {stats.max_in_degree}  "
          f"avg out-degree: {stats.avg_out_degree:.2f}")
    top = sorted(stats.label_counts.items(), key=lambda kv: -kv[1])[:10]
    for label, count in top:
        print(f"  {label}: {count}")
    if partition is not None:
        print(
            f"partition ({partition.strategy}): {partition.num_shards} shards "
            f"{partition.shard_sizes}, edge cut {partition.edge_cut_fraction:.1%}"
        )
    if views is not None:
        materialized = [n for n in views.names() if views.is_materialized(n)]
        print(f"views: {views.cardinality} ({len(materialized)} materialized, "
              f"extension fraction {views.extension_fraction(graph):.1%})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Answering graph pattern queries using views"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a dataset stand-in")
    p.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    p.add_argument("--nodes", type=int, default=10_000)
    p.add_argument("--edges", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.add_argument("--views", help="also write the dataset's view suite here")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("materialize", help="materialize view extensions")
    p.add_argument("--graph", required=True)
    p.add_argument("--views", required=True)
    p.set_defaults(func=_cmd_materialize)

    p = sub.add_parser("contain", help="check pattern containment")
    p.add_argument("--query", required=True)
    p.add_argument("--views", required=True)
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="all")
    p.set_defaults(func=_cmd_contain)

    p = sub.add_parser("query", help="answer a query from cached views")
    p.add_argument("--query", required=True)
    p.add_argument("--views", required=True)
    p.add_argument("--graph", help="graph for materialize-on-demand")
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    p.add_argument("--out", help="write the result table as JSON")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "engine", help="batch-answer queries with the planned/cached engine"
    )
    p.add_argument("--queries", nargs="+", required=True,
                   help="one or more pattern JSON files")
    p.add_argument("--views", required=True)
    p.add_argument("--graph",
                   help="graph for materialize-on-demand and direct fallback")
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default="serial")
    p.add_argument("--planner",
                   choices=("fixed", "adaptive", "direct", "hybrid"),
                   default="fixed",
                   help="plan selection: fixed rule, cost-based adaptive, "
                        "or a forced baseline (direct/hybrid need --graph)")
    p.add_argument("--workers", type=int)
    p.add_argument("--repeat", type=int, default=1,
                   help="re-run the batch N times (shows warm-cache hits)")
    p.add_argument("--explain", action="store_true",
                   help="print query plans instead of executing")
    p.set_defaults(func=_cmd_engine)

    p = sub.add_parser(
        "advise",
        help="score views against a workload and plan auto-materialization",
    )
    p.add_argument("--queries", nargs="+", required=True,
                   help="the workload: one or more pattern JSON files")
    p.add_argument("--views", required=True)
    p.add_argument("--graph", required=True)
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    p.add_argument("--repeat", type=int, default=1,
                   help="replay the workload N times (weights frequency)")
    p.add_argument("--budget-fraction", type=float, default=0.15,
                   help="extension-cache budget as a fraction of graph "
                        "bytes (default 0.15, the paper's upper bound)")
    p.add_argument("--budget-bytes", type=int,
                   help="absolute byte budget (overrides --budget-fraction)")
    p.add_argument("--apply", action="store_true",
                   help="actually materialize/evict instead of reporting")
    p.add_argument("--out",
                   help="with --apply: write the updated views file here")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser(
        "shard", help="partition the graph and report cut quality"
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--shards", type=int, required=True,
                   help="number of shards (>= 1)")
    p.add_argument("--strategy", choices=("hash", "label", "bfs"),
                   default="hash")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "maintain",
        help="replay an edge update stream through the delta pipeline",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--views", required=True)
    p.add_argument("--updates", required=True,
                   help="update stream file: '+ u v' / '- u v' per line")
    p.add_argument("--batch", type=int, default=50,
                   help="ops per maintenance delta (default 50)")
    p.add_argument("--budget", type=int,
                   help="affected-area budget before an insertion falls "
                        "back to recomputation (default: never)")
    p.add_argument("--verify", action="store_true",
                   help="assert maintained extensions equal a fresh "
                        "rematerialization after every batch")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=_cmd_maintain)

    p = sub.add_parser(
        "serve",
        help="run the long-running async query service (JSON over TCP)",
    )
    p.add_argument("--graph")
    p.add_argument("--views")
    p.add_argument("--snapshot", metavar="DIR",
                   help="boot from a persistent snapshot directory "
                        "(mmap attach, no rebuild) instead of "
                        "--graph/--views")
    p.add_argument("--persist", nargs="?", const="", metavar="DIR",
                   help="persist each published epoch snapshot to DIR "
                        "(bare flag: back into --snapshot's directory)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7677,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    p.add_argument("--budget", type=int,
                   help="maintenance affected-area budget (default: never "
                        "fall back to recomputation)")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="concurrent evaluations (reader pool width)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admitted requests allowed to wait; beyond "
                        "max-inflight + max-queue, requests are shed "
                        "with a retriable error")
    p.add_argument("--planner",
                   choices=("fixed", "adaptive", "direct", "hybrid"),
                   default="fixed",
                   help="plan selection mode for the serving engine")
    p.add_argument("--auto-materialize", type=float, nargs="?",
                   const=0.15, default=None, metavar="FRACTION",
                   help="enable the workload advisor with this budget "
                        "fraction of graph bytes (bare flag: 0.15)")
    p.add_argument("--advise-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="run periodic epoch-publishing advisor ticks "
                        "(requires --auto-materialize)")
    p.add_argument("--metrics-port", type=int,
                   help="also expose a Prometheus-style /metrics "
                        "endpoint on this port (0 picks one)")
    p.add_argument("--log-level",
                   choices=("debug", "info", "warning", "error"),
                   default="info",
                   help="structured stderr logging level")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="answer one query through the server and print its span tree",
    )
    p.add_argument("--query", required=True)
    p.add_argument("--views", required=True)
    p.add_argument("--graph", required=True)
    p.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("stats", help="graph / view-cache statistics")
    p.add_argument("--graph")
    p.add_argument("--views")
    p.add_argument("--snapshot", metavar="DIR",
                   help="inspect a persistent snapshot directory instead "
                        "of --graph: per-segment backend kinds, mapped "
                        "and on-disk byte accounting")
    p.add_argument("--shards", type=int,
                   help="also partition into N shards and report shard "
                        "sizes and edge-cut fraction")
    p.add_argument("--partitioner", choices=("hash", "label", "bfs"),
                   default="hash",
                   help="strategy for --shards")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="json adds the label histogram, snapshot/"
                        "label-index statistics and (with --shards) a "
                        "partition section")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "ingest",
        help="stream an edge list into a sharded on-disk snapshot "
             "(out-of-core: bounded memory regardless of graph size)",
    )
    p.add_argument("--edges", required=True,
                   help="edge-list file (SNAP format: 'src<tab>dst' "
                        "lines, '#' comments)")
    p.add_argument("--out", required=True,
                   help="snapshot directory to create")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--labels", type=int, metavar="K",
                   help="assign each node a deterministic hash label "
                        "l0..l<K-1> (views need labelled nodes)")
    p.add_argument("--budget-mb", type=int, default=64,
                   help="in-memory spill-buffer budget in MiB "
                        "(default 64)")
    p.add_argument("--max-edges", type=int, default=0,
                   help="abort if the stream exceeds N edges (guard "
                        "against ingesting the wrong file)")
    p.add_argument("--overwrite", action="store_true",
                   help="replace an existing snapshot atomically")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "snapshot",
        help="save / load / inspect persistent mmap snapshot directories",
    )
    snap = p.add_subparsers(dest="snapshot_command", required=True)

    s = snap.add_parser("save", help="persist a graph (and views) to disk")
    s.add_argument("--graph", required=True)
    s.add_argument("--out", required=True)
    s.add_argument("--views",
                   help="also persist this view catalog (materialized "
                        "first if needed)")
    s.add_argument("--shards", type=int,
                   help="partition before saving (per-shard segment "
                        "files)")
    s.add_argument("--partitioner", choices=("hash", "label", "bfs"),
                   default="hash")
    s.add_argument("--overwrite", action="store_true")
    s.set_defaults(func=_cmd_snapshot_save)

    s = snap.add_parser(
        "load", help="reattach a snapshot via mmap and report (no rebuild)"
    )
    s.add_argument("path", help="snapshot directory")
    s.add_argument("--verify", action="store_true",
                   help="CRC every segment payload")
    s.add_argument("--query",
                   help="answer this pattern query from the reloaded "
                        "snapshot's cached views")
    s.add_argument("--strategy", choices=("all", "minimal", "minimum"),
                   default="minimal")
    s.set_defaults(func=_cmd_snapshot_load)

    s = snap.add_parser("info", help="print manifest and per-file sizes")
    s.add_argument("path", help="snapshot directory")
    s.add_argument("--verify", action="store_true",
                   help="CRC every segment payload")
    s.add_argument("--format", choices=("text", "json"), default="text")
    s.set_defaults(func=_cmd_snapshot_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
