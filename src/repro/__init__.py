"""repro: answering graph pattern queries using views.

A faithful, production-quality reproduction of

    Wenfei Fan, Xin Wang, Yinghui Wu.
    "Answering Graph Pattern Queries Using Views." ICDE 2014.

The public API re-exported here covers the complete pipeline:

* build :class:`DataGraph` / :class:`Pattern` / :class:`BoundedPattern`;
* evaluate directly (:func:`match`, :func:`bounded_match`);
* define and materialize views (:class:`ViewDefinition`,
  :func:`materialize`, :class:`ViewSet`);
* check pattern containment (:func:`contains`, :func:`minimal_views`,
  :func:`minimum_views` and bounded counterparts);
* answer queries using only views (:func:`match_join`,
  :func:`bounded_match_join`, :func:`answer_with_views`);
* serve query traffic with planning, caching and parallel batch
  execution (:class:`QueryEngine`, :class:`QueryPlan`);
* shard the graph for partial-evaluation matching and parallel view
  materialization (:class:`ShardedGraph`, :func:`make_partition`, and
  the rest of :mod:`repro.shard`).
"""

from repro.graph import (
    ANY,
    AttributeCondition,
    BoundedPattern,
    Condition,
    DataGraph,
    Label,
    P,
    Pattern,
    TrueCondition,
    implies,
)
from repro.simulation import (
    MatchResult,
    bounded_match,
    dual_match,
    match,
    strong_match,
)
from repro.views import (
    MaterializedView,
    ViewDefinition,
    ViewSet,
    materialize,
)
from repro.core import (
    Containment,
    answer_with_views,
    bounded_contains,
    bounded_match_join,
    bounded_minimal_views,
    bounded_minimum_views,
    contains,
    match_join,
    minimal_views,
    minimum_views,
)
from repro.engine import ExecutionStats, QueryEngine, QueryPlan
from repro.shard import Partition, ShardedGraph, make_partition

__version__ = "1.2.0"

__all__ = [
    "ANY",
    "AttributeCondition",
    "BoundedPattern",
    "Condition",
    "Containment",
    "DataGraph",
    "ExecutionStats",
    "Label",
    "MatchResult",
    "MaterializedView",
    "P",
    "Partition",
    "Pattern",
    "QueryEngine",
    "QueryPlan",
    "ShardedGraph",
    "TrueCondition",
    "ViewDefinition",
    "ViewSet",
    "answer_with_views",
    "bounded_contains",
    "bounded_match",
    "bounded_match_join",
    "bounded_minimal_views",
    "bounded_minimum_views",
    "contains",
    "dual_match",
    "implies",
    "make_partition",
    "match",
    "match_join",
    "materialize",
    "minimal_views",
    "minimum_views",
    "strong_match",
]
