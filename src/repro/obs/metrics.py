"""A low-overhead metrics registry: counters, gauges, histograms.

The engine spans seven layers (planner -> caches -> MatchJoin kernels
-> shard workers -> maintenance -> flat buffers -> asyncio server) and
every one of them has quantities worth watching continuously -- the
paper's own experimental claims (view-based evaluation ~9.7x faster,
views at 4-15% of ``|G|``) are per-query, per-epoch measurements.  This
module is the shared vocabulary those layers record into:

* :class:`Counter` -- monotonically increasing totals (plans chosen,
  fixpoint sweeps, requests shed);
* :class:`Gauge` -- last-written values (current epoch, extension
  sizes);
* :class:`Histogram` -- distributions over **fixed log-scale buckets**
  (query latencies, delta sizes); fixed boundaries keep ``observe`` at
  one ``bisect`` call and make snapshots mergeable across processes.

Instruments live in a :class:`MetricsRegistry`.  There is one
process-global default registry (:func:`get_registry`) used by the
free-function kernels, and components that want isolation (an engine, a
server, a test) inject their own.  A registry built with
``enabled=False`` -- or flipped off via :meth:`MetricsRegistry.disable`
-- hands out shared no-op instruments whose methods discard their
arguments; the hot paths aggregate locally and record once per call, so
either mode stays within the <5% overhead budget asserted by
``benchmarks/bench_obs.py``.

Thread safety: instrument creation and snapshots take the registry
lock; ``inc``/``set``/``observe`` take the per-instrument lock, so
totals survive concurrent readers and epoch swaps without loss.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Version of the snapshot schema (breaking layout changes bump this).
SCHEMA_VERSION = 1

LabelItems = Tuple[Tuple[str, str], ...]


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-scale bucket boundaries: ``start * factor**i``.

    The boundaries are upper bounds; an observation lands in the first
    bucket whose boundary is >= the value, or the implicit ``+Inf``
    overflow bucket past the last one.
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Default duration buckets: 1us .. ~268s in powers of 4 (15 buckets).
DURATION_BUCKETS = log_buckets(1e-6, 4.0, 15)

#: Default size buckets: 1 .. ~2.6e8 in powers of 4 (15 buckets).
SIZE_BUCKETS = log_buckets(1.0, 4.0, 15)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-written value (settable both ways)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution over fixed log-scale buckets.

    ``boundaries`` are inclusive upper bounds; one extra overflow
    bucket catches everything past the last boundary.  ``observe`` is
    one ``bisect`` plus two adds under the instrument lock.
    """

    __slots__ = ("name", "labels", "boundaries", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        boundaries: Sequence[float] = DURATION_BUCKETS,
    ) -> None:
        bounds = tuple(boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must strictly increase: {bounds}")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_right(self.boundaries, value)
        if index > 0 and self.boundaries[index - 1] == value:
            index -= 1  # boundaries are inclusive upper bounds
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (last entry is the +Inf overflow)."""
        with self._lock:
            return list(self._counts)


class _NullInstrument:
    """The shared do-nothing instrument a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def bucket_counts(self) -> List[int]:
        return []


_NULL = _NullInstrument()


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of instruments, snapshot-able as one report.

    One instrument exists per ``(name, labels)`` pair; repeated lookups
    return the same object, so hot paths may cache the instrument once
    and skip the registry dict entirely.  ``enabled=False`` (or
    :meth:`disable`) makes every lookup return the shared no-op
    instrument -- already-handed-out real instruments keep recording,
    so flip the switch before wiring components up.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._enabled = enabled
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # ------------------------------------------------------------------
    # Mode
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    # Instrument lookup
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object):
        if not self._enabled:
            return _NULL
        key = (name, _label_items(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(*key))
        return counter

    def gauge(self, name: str, **labels: object):
        if not self._enabled:
            return _NULL
        key = (name, _label_items(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(*key))
        return gauge

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        **labels: object,
    ):
        if not self._enabled:
            return _NULL
        key = (name, _label_items(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key,
                    Histogram(
                        key[0],
                        key[1],
                        boundaries if boundaries is not None else DURATION_BUCKETS,
                    ),
                )
        return histogram

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-ready, versioned report of every instrument.

        Labelled series group under their metric name as
        ``{rendered labels: value}`` (the empty-label series renders as
        ``""``), so the report stays stable as label sets grow.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        report: Dict = {
            "version": SCHEMA_VERSION,
            "enabled": self._enabled,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for counter in counters:
            series = report["counters"].setdefault(counter.name, {})
            series[render_labels(counter.labels)] = counter.value
        for gauge in gauges:
            series = report["gauges"].setdefault(gauge.name, {})
            series[render_labels(gauge.labels)] = gauge.value
        for histogram in histograms:
            series = report["histograms"].setdefault(histogram.name, {})
            series[render_labels(histogram.labels)] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "boundaries": list(histogram.boundaries),
                "buckets": histogram.bucket_counts(),
            }
        return report

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Counters render as ``name_total``-style samples with their
        labels, histograms as cumulative ``_bucket{le=...}`` series
        plus ``_sum``/``_count`` -- close enough to the convention that
        standard scrapers ingest it unmodified.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        lines: List[str] = []
        typed: Set[str] = set()

        def announce(name: str, kind: str) -> None:
            # One TYPE comment per metric family, not per labeled series.
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for counter in sorted(counters, key=lambda c: (c.name, c.labels)):
            announce(counter.name, "counter")
            lines.append(
                f"{counter.name}{render_labels(counter.labels)} {counter.value}"
            )
        for gauge in sorted(gauges, key=lambda g: (g.name, g.labels)):
            announce(gauge.name, "gauge")
            lines.append(
                f"{gauge.name}{render_labels(gauge.labels)} {_fmt(gauge.value)}"
            )
        for histogram in sorted(histograms, key=lambda h: (h.name, h.labels)):
            announce(histogram.name, "histogram")
            cumulative = 0
            counts = histogram.bucket_counts()
            for boundary, count in zip(histogram.boundaries, counts):
                cumulative += count
                labels = histogram.labels + (("le", _fmt(boundary)),)
                lines.append(
                    f"{histogram.name}_bucket{render_labels(labels)} {cumulative}"
                )
            labels = histogram.labels + (("le", "+Inf"),)
            lines.append(
                f"{histogram.name}_bucket{render_labels(labels)} "
                f"{cumulative + counts[-1]}"
            )
            lines.append(
                f"{histogram.name}_sum{render_labels(histogram.labels)} "
                f"{_fmt(histogram.sum)}"
            )
            lines.append(
                f"{histogram.name}_count{render_labels(histogram.labels)} "
                f"{histogram.count}"
            )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument (tests; live handles keep counting but
        leave the registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({'enabled' if self._enabled else 'disabled'}, "
            f"{len(self._counters)} counters, {len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


def render_labels(labels: Iterable[Tuple[str, str]]) -> str:
    """``{k="v",...}`` (Prometheus style), or ``""`` with no labels."""
    items = list(labels)
    if not items:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + rendered + "}"


def _fmt(value: float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


# ----------------------------------------------------------------------
# The process-global default registry
# ----------------------------------------------------------------------
_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global default registry (kernels record here)."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global default; returns the previous one.

    Tests use this to isolate assertions; embedders use it to silence
    the library wholesale (``set_registry(MetricsRegistry(enabled=
    False))``).
    """
    global _default
    with _default_lock:
        previous = _default
        _default = registry
    return previous
