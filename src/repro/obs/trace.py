"""Cross-layer trace spans with explicit propagation.

A *span* is one timed phase of a request -- ``plan``, ``evaluate``, a
shard-local fixpoint wave -- with monotonic timings, free-form
attributes, and parent/child nesting.  A finished root span is the
complete story of one query: plan -> cache -> evaluate -> per-shard
waves, which is exactly what ``repro trace`` pretty-prints and what the
serving layer's slow-query log retains.

Propagation contract (three hops, each explicit):

* **same thread** -- nesting rides a :mod:`contextvars` variable:
  :func:`span` attaches to the current span automatically and is a
  **pass-through no-op when no span is active** (one context-var read),
  so instrumented kernels cost nothing in untraced runs;
* **thread pools** -- executors do not inherit context; the submitting
  side captures :func:`current_span` and the worker re-enters it with
  :func:`attach` (span objects are shared memory, children appends are
  GIL-atomic);
* **process pools** -- nothing is shared; the coordinator threads the
  parent's ``span_id`` through the shipped task (``EvaluationSpec.
  trace_id``, the :class:`~repro.shard.psim.ShardRunner` round-trip),
  the worker records a detached :func:`remote_span` tree, ships back a
  picklable :class:`SpanRecord`, and the coordinator *adopts* it under
  the parent whose id it names.  Worker clocks never mix with
  coordinator clocks: a record keeps only durations and offsets
  relative to its own root.

Finished roots land in a :class:`TraceCollector`: a bounded ring buffer
of recent traces plus a top-K-by-duration slow-query log, both
queryable over the serving protocol.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from heapq import heappush, heappushpop
from time import perf_counter
from typing import Dict, List, Optional, Tuple

_ids = itertools.count(1)
_current: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


def _new_span_id() -> str:
    # The pid prefix keeps ids unique across pool workers; next() on an
    # itertools.count is atomic under the GIL.
    return f"{os.getpid():x}-{next(_ids):x}"


@dataclass(frozen=True)
class SpanRecord:
    """A finished span subtree in picklable form (process round-trips).

    ``start_offset`` is seconds since the *record's own root* started
    -- worker and coordinator monotonic clocks are unrelated, so a
    record never carries absolute times.  ``parent_id`` names the
    coordinator-side span this tree belongs under (the id that was
    threaded through the shipped task).
    """

    name: str
    attrs: Tuple[Tuple[str, object], ...]
    start_offset: float
    duration: float
    parent_id: Optional[str] = None
    children: Tuple["SpanRecord", ...] = ()

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_ms": self.start_offset * 1e3,
            "duration_ms": self.duration * 1e3,
            "remote": True,
            "children": [child.to_dict() for child in self.children],
        }


class Span:
    """One timed phase: name, attributes, children, monotonic timing."""

    __slots__ = (
        "span_id",
        "name",
        "attrs",
        "parent",
        "children",
        "started",
        "ended",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = _new_span_id()
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.parent = parent
        self.children: List[object] = []  # Span | SpanRecord
        self.started = perf_counter()
        self.ended: Optional[float] = None
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Elapsed seconds (to now while the span is still open)."""
        end = self.ended if self.ended is not None else perf_counter()
        return end - self.started

    @property
    def finished(self) -> bool:
        return self.ended is not None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes mid-flight (returns self for chaining)."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> "Span":
        if self.ended is None:
            self.ended = perf_counter()
        return self

    def adopt(self, record: SpanRecord) -> None:
        """Attach a worker-shipped subtree under this span.

        The record's ``parent_id`` -- when the worker had one to echo --
        must name this span: adopting under the wrong parent would
        silently mis-attribute worker time.
        """
        if record.parent_id is not None and record.parent_id != self.span_id:
            raise ValueError(
                f"span record {record.name!r} belongs under "
                f"{record.parent_id}, not {self.span_id}"
            )
        self.children.append(record)

    # ------------------------------------------------------------------
    def to_record(self, parent_id: Optional[str] = None) -> SpanRecord:
        """The finished subtree as a picklable record (worker -> parent)."""
        base = self.started
        return self._record_relative(base, parent_id)

    def _record_relative(self, base: float, parent_id: Optional[str]) -> SpanRecord:
        children = tuple(
            child._record_relative(base, None)
            if isinstance(child, Span)
            else child
            for child in self.children
        )
        return SpanRecord(
            name=self.name,
            attrs=tuple(sorted(self.attrs.items(), key=lambda kv: kv[0])),
            start_offset=self.started - base,
            duration=self.duration,
            parent_id=parent_id,
            children=children,
        )

    def to_dict(self, _base: Optional[float] = None) -> Dict:
        """A JSON-ready tree (offsets relative to this subtree's root)."""
        base = self.started if _base is None else _base
        return {
            "name": self.name,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
            "start_ms": (self.started - base) * 1e3,
            "duration_ms": self.duration * 1e3,
            "remote": False,
            "children": [
                child.to_dict(base) if isinstance(child, Span) else child.to_dict()
                for child in self.children
            ],
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.2f} ms" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


# ----------------------------------------------------------------------
# Context plumbing
# ----------------------------------------------------------------------
def current_span() -> Optional[Span]:
    """The active span of this thread/task context (``None`` untraced)."""
    return _current.get()


def current_span_id() -> Optional[str]:
    """The active span's id -- what gets threaded through shipped tasks."""
    span = _current.get()
    return span.span_id if span is not None else None


@contextmanager
def span(name: str, **attrs: object):
    """Open a child of the current span; **no-op when none is active**.

    Yields the new :class:`Span` (or ``None`` on the pass-through
    path).  This is the only entry point hot kernels use, so untraced
    evaluation pays one context-var read and a ``None`` check.
    """
    parent = _current.get()
    if parent is None:
        yield None
        return
    child = Span(name, parent=parent, attrs=attrs)
    token = _current.set(child)
    try:
        yield child
    finally:
        child.finish()
        _current.reset(token)


@contextmanager
def root_span(
    name: str,
    collector: Optional["TraceCollector"] = None,
    **attrs: object,
):
    """Open a trace root (always records, regardless of context).

    On exit the root is finished and handed to ``collector`` (when
    given) -- the ring buffer + slow-log entry point the serving layer
    and ``repro trace`` use.
    """
    root = Span(name, parent=None, attrs=attrs)
    token = _current.set(root)
    try:
        yield root
    finally:
        root.finish()
        _current.reset(token)
        if collector is not None:
            collector.record(root)


@contextmanager
def attach(parent: Optional[Span]):
    """Re-enter ``parent`` as the current span in *this* thread.

    Thread pools do not inherit context: the submitting side captures
    :func:`current_span` and the worker function wraps its body in
    ``with attach(captured): ...`` so nested :func:`span` calls land
    under the right parent.  ``attach(None)`` is a no-op, keeping call
    sites unconditional.
    """
    if parent is None:
        yield None
        return
    token = _current.set(parent)
    try:
        yield parent
    finally:
        _current.reset(token)


@contextmanager
def remote_span(name: str, parent_id: Optional[str], **attrs: object):
    """Record a detached span tree in a pool worker.

    The worker has no coordinator objects, only the ``parent_id``
    threaded through its task.  The yielded span is a local root
    (nested :func:`span` calls work normally); after the ``with`` block
    the caller ships ``span.to_record(parent_id)`` home, where the
    coordinator's :meth:`Span.adopt` re-attaches it.
    """
    root = Span(name, parent=None, attrs=attrs)
    token = _current.set(root)
    try:
        yield root
    finally:
        root.finish()
        _current.reset(token)


# ----------------------------------------------------------------------
# Collection: recent traces + slow-query log
# ----------------------------------------------------------------------
class TraceCollector:
    """Bounded retention of finished root spans.

    ``capacity`` recent traces are kept in arrival order (a ring
    buffer); the ``slow_capacity`` slowest are kept by duration (a
    min-heap, so admission is O(log K) per trace).  Both store
    JSON-ready dicts -- retention must not pin live span graphs (and
    their attribute objects) in memory.
    """

    def __init__(self, capacity: int = 64, slow_capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_capacity < 0:
            raise ValueError(f"slow_capacity must be >= 0, got {slow_capacity}")
        self._lock = threading.Lock()
        self._capacity = capacity
        self._slow_capacity = slow_capacity
        self._recent: List[Dict] = []
        self._next = 0  # ring cursor
        self._seq = 0
        self._slow: List[Tuple[float, int, Dict]] = []  # min-heap
        self._recorded = 0

    @property
    def recorded(self) -> int:
        """Total roots ever recorded (survives ring eviction)."""
        return self._recorded

    def record(self, root: Span) -> None:
        entry = root.to_dict()
        with self._lock:
            self._recorded += 1
            self._seq += 1
            if len(self._recent) < self._capacity:
                self._recent.append(entry)
            else:
                self._recent[self._next] = entry
                self._next = (self._next + 1) % self._capacity
            if self._slow_capacity:
                item = (entry["duration_ms"], self._seq, entry)
                if len(self._slow) < self._slow_capacity:
                    heappush(self._slow, item)
                else:
                    heappushpop(self._slow, item)

    def recent(self, limit: Optional[int] = None) -> List[Dict]:
        """Most recent traces, newest first."""
        with self._lock:
            ordered = self._recent[self._next :] + self._recent[: self._next]
        ordered.reverse()
        return ordered[:limit] if limit is not None else ordered

    def slowest(self, limit: Optional[int] = None) -> List[Dict]:
        """The slow-query log: retained roots, slowest first."""
        with self._lock:
            ranked = sorted(self._slow, key=lambda item: (-item[0], item[1]))
        entries = [entry for _, _, entry in ranked]
        return entries[:limit] if limit is not None else entries

    def clear(self) -> None:
        with self._lock:
            self._recent = []
            self._next = 0
            self._slow = []

    def __repr__(self) -> str:
        return (
            f"TraceCollector({len(self._recent)}/{self._capacity} recent, "
            f"{len(self._slow)}/{self._slow_capacity} slow, "
            f"{self._recorded} recorded)"
        )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_span_tree(root: Dict) -> str:
    """Pretty-print a span dict tree (``repro trace`` text output)."""
    lines: List[str] = []
    _format_into(root, "", "", lines)
    return "\n".join(lines)


def _format_into(node: Dict, prefix: str, child_prefix: str, lines: List[str]) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in sorted(node["attrs"].items()))
    remote = " [worker]" if node.get("remote") else ""
    label = f"{node['name']} ({node['duration_ms']:.2f} ms){remote}"
    lines.append(prefix + label + (f"  {attrs}" if attrs else ""))
    children = node["children"]
    for index, child in enumerate(children):
        last = index == len(children) - 1
        branch = "`- " if last else "|- "
        extend = "   " if last else "|  "
        _format_into(child, child_prefix + branch, child_prefix + extend, lines)
