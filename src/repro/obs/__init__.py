"""Unified observability: metrics registry, trace spans, logging setup.

Three cooperating pieces (each importable on its own):

* :mod:`repro.obs.metrics` -- counters / gauges / log-scale-bucket
  histograms in a :class:`MetricsRegistry`; a process-global default
  for free-function kernels plus injectable per-engine registries, and
  a no-op mode for zero-cost disablement;
* :mod:`repro.obs.trace` -- ``span()`` context managers with
  contextvars nesting, explicit propagation across thread pools
  (:func:`attach`) and process pools (:func:`remote_span` +
  :class:`SpanRecord`), a :class:`TraceCollector` ring buffer and
  slow-query log;
* :mod:`repro.obs.logsetup` -- stdlib-logging policy: ``repro.*``
  module loggers everywhere, structured formatter installed only by
  applications (``repro serve --log-level``).

The engine's plan-choice records (:class:`repro.engine.plan.
PlanChoiceRecord`) round out the layer: per-query strategy decisions
with the measured inputs ROADMAP item 3's cost-based planner trains on.
"""

from repro.obs.metrics import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_registry,
)
from repro.obs.trace import (
    Span,
    SpanRecord,
    TraceCollector,
    attach,
    current_span,
    current_span_id,
    format_span_tree,
    remote_span,
    root_span,
    span,
)

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "Span",
    "SpanRecord",
    "TraceCollector",
    "attach",
    "current_span",
    "current_span_id",
    "format_span_tree",
    "get_registry",
    "log_buckets",
    "remote_span",
    "root_span",
    "set_registry",
    "span",
]
