"""Logging policy: library emits, applications configure.

Every module in :mod:`repro` logs through a module-level
``logging.getLogger(__name__)`` -- all under the ``repro.*`` hierarchy
-- and the library never installs handlers, formatters or levels on
import (embedders own their logging config; the root ``repro`` logger
is left untouched).

:func:`install` is the *application-side* opt-in used by ``repro serve
--log-level``: a stream handler with a structured ``key=value``
formatter on the ``repro`` logger, so service logs are grep- and
machine-friendly without any third-party dependency.
"""

from __future__ import annotations

import logging
from typing import Optional

#: Accepted ``--log-level`` names (stdlib levels).
LEVELS = ("debug", "info", "warning", "error", "critical")


class StructuredFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg="..."`` single-line records.

    Extra fields passed via ``logger.info(..., extra={"fields": {...}})``
    render as additional ``key=value`` pairs.
    """

    default_time_format = "%Y-%m-%dT%H:%M:%S"
    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage().replace('"', "'")
        parts = [
            f"ts={self.formatTime(record)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f'msg="{message}"',
        ]
        fields = getattr(record, "fields", None)
        if fields:
            parts.extend(f"{key}={value}" for key, value in fields.items())
        if record.exc_info:
            exc = self.formatException(record.exc_info).replace("\n", " | ")
            parts.append(f'exc="{exc}"')
        return " ".join(parts)


def install(level: str = "info", logger_name: str = "repro") -> logging.Handler:
    """Install the structured handler on the ``repro`` hierarchy.

    Idempotent per logger: a second call replaces the previously
    installed handler instead of stacking duplicates.  Returns the
    handler (tests detach it via ``logger.removeHandler``).
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LEVELS}"
        )
    logger = logging.getLogger(logger_name)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_structured", False):
            logger.removeHandler(existing)
    handler = logging.StreamHandler()
    handler.setFormatter(StructuredFormatter())
    handler._repro_structured = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    return handler


def log_fields(**fields: object) -> dict:
    """``extra=`` payload carrying structured fields:
    ``log.info("shed", extra=log_fields(reason="queue-full"))``."""
    return {"fields": fields}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A ``repro.*`` logger (convenience for scripts and examples)."""
    return logging.getLogger(name or "repro")
