"""Dual simulation ([28], Section VIII extension).

Dual simulation strengthens simulation with *parent* constraints: for
``(u, v) in S``, every incoming pattern edge ``(u0, u)`` must also be
witnessed by some data edge ``(v0, v)`` with ``(u0, v0) in S``.  The
paper notes (Section VIII) that its view techniques "can be extended to
revisions of simulation such as dual and strong simulation ... retaining
the same complexity"; this module provides the matching engine that the
extended pipeline (``repro.core.answer`` with ``semantics="dual"``)
builds on.

The implementation mirrors :mod:`repro.simulation.simulation` with a
second counter family for parents.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Optional, Set

from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern
from repro.simulation.result import MatchResult, edge_matches_from_nodes
from repro.simulation.seeding import condition_candidates

PNode = Hashable
Node = Hashable


def maximum_dual_simulation(
    pattern,
    target,
    compatible: Optional[Callable[[PNode, Node], bool]] = None,
) -> Optional[Dict[PNode, Set[Node]]]:
    """Maximum dual simulation of ``pattern`` over ``target`` or ``None``.

    As in :func:`repro.simulation.simulation.maximum_simulation`, an
    omitted ``compatible`` test means the pattern's node conditions
    decide, with candidates seeded from the target's label index
    instead of a full-node scan.
    """
    if compatible is None:
        seeded = condition_candidates(pattern, target)
        if seeded is None:
            return None
        sim = seeded
    else:
        sim = {}
        target_nodes = list(target.nodes())
        for u in pattern.nodes():
            candidates = {v for v in target_nodes if compatible(u, v)}
            if not candidates:
                return None
            sim[u] = candidates

    # child_counters[(u, u1)][v]: witnesses among successors of v in sim(u1).
    # parent_counters[(u0, u)][v]: witnesses among predecessors of v in sim(u0).
    child_counters: Dict[tuple, Dict[Node, int]] = {}
    parent_counters: Dict[tuple, Dict[Node, int]] = {}
    for u in pattern.nodes():
        for u1 in pattern.successors(u):
            targets = sim[u1]
            child_counters[(u, u1)] = {
                v: sum(1 for w in target.successors(v) if w in targets)
                for v in sim[u]
            }
        for u0 in pattern.predecessors(u):
            sources = sim[u0]
            parent_counters[(u0, u)] = {
                v: sum(1 for w in target.predecessors(v) if w in sources)
                for v in sim[u]
            }

    removals: deque = deque()
    for u in pattern.nodes():
        doomed: Set[Node] = set()
        for u1 in pattern.successors(u):
            doomed.update(
                v for v, count in child_counters[(u, u1)].items() if count == 0
            )
        for u0 in pattern.predecessors(u):
            doomed.update(
                v for v, count in parent_counters[(u0, u)].items() if count == 0
            )
        for v in doomed:
            sim[u].discard(v)
            removals.append((u, v))
        if not sim[u]:
            return None

    while removals:
        u1, w = removals.popleft()
        # w left sim(u1): it may have been the last successor witness ...
        for u in pattern.predecessors(u1):
            counter = child_counters[(u, u1)]
            candidates = sim[u]
            for v in target.predecessors(w):
                if v in candidates:
                    counter[v] -= 1
                    if counter[v] == 0:
                        candidates.discard(v)
                        removals.append((u, v))
            if not candidates:
                return None
        # ... or the last predecessor witness.
        for u2 in pattern.successors(u1):
            counter = parent_counters[(u1, u2)]
            candidates = sim[u2]
            for v in target.successors(w):
                if v in candidates:
                    counter[v] -= 1
                    if counter[v] == 0:
                        candidates.discard(v)
                        removals.append((u2, v))
            if not candidates:
                return None
    return sim


def dual_match(pattern: Pattern, graph: DataGraph) -> MatchResult:
    """Evaluate ``Qs`` on ``G`` via dual simulation (either backend)."""
    sim = maximum_dual_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty()
    edge_matches = edge_matches_from_nodes(pattern.edges(), sim, graph.successors)
    return MatchResult(sim, edge_matches)
