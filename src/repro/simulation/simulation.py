"""Graph simulation: the ``Match`` baseline and the generic engine.

Graph pattern matching via simulation (Section II-A): ``G`` matches
``Qs`` iff there is a binary relation ``S`` over ``Vp x V`` such that
every pattern node has a match and, for each ``(u, v) in S`` and each
pattern edge ``(u, u')``, some data edge ``(v, v')`` has
``(u', v') in S``.  When a match exists the *maximum* one is unique
[21]; :func:`match` computes it (and the per-edge match sets) with a
counter-based worklist refinement in the spirit of Henzinger, Henzinger
and Kopke, giving the ``O(|Qs|^2 + |Qs||G| + |G|^2)`` bound the paper
quotes for [16], [21].

The engine is backend-generic twice over.  It is generic over the
*candidate test*: evaluating a pattern over a data graph uses condition
satisfaction, while view-match computation (Section IV) evaluates a view
over ``Qs`` treated as a data graph using condition *implication* --
both go through :func:`maximum_simulation`.  And it is generic over the
*graph backend*: with no explicit ``compatible`` test, candidates are
seeded from the target's label index
(:func:`~repro.simulation.seeding.condition_candidates`), and
:func:`match` dispatches frozen
:class:`~repro.graph.compact.CompactGraph` targets to the integer-id
fast path in :mod:`repro.simulation.compact_engine`.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Callable, Dict, Hashable, Optional, Set

from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern
from repro.simulation.compact_engine import compact_match
from repro.simulation.result import MatchResult, edge_matches_from_nodes
from repro.simulation.seeding import condition_candidates

PNode = Hashable
Node = Hashable


def maximum_simulation(
    pattern,
    target,
    compatible: Optional[Callable[[PNode, Node], bool]] = None,
) -> Optional[Dict[PNode, Set[Node]]]:
    """Compute the maximum simulation of ``pattern`` over ``target``.

    ``target`` must expose ``nodes()``, ``successors(v)`` and
    ``predecessors(v)`` (:class:`DataGraph`, :class:`CompactGraph` and
    :class:`Pattern` all do).  ``compatible(u, v)`` decides whether data
    node ``v`` may match pattern node ``u`` at the node level; when it
    is omitted the pattern's own node conditions decide, and candidates
    are seeded from the target's label index instead of a full-node
    scan (the target must then carry labels/attributes).

    Returns ``{u: sim(u)}`` with every set nonempty, or ``None`` when
    the pattern has no match (some ``sim(u)`` became empty).
    """
    # --- candidate sets -------------------------------------------------
    if compatible is None:
        sim = condition_candidates(pattern, target)
        if sim is None:
            return None
    else:
        sim = {}
        target_nodes = list(target.nodes())
        for u in pattern.nodes():
            candidates = {v for v in target_nodes if compatible(u, v)}
            if not candidates:
                return None
            sim[u] = candidates

    # --- witness counters ----------------------------------------------
    # counters[(u, u1)][v] = |succ(v) & sim(u1)| for v in sim(u): how many
    # witnesses v still has for pattern edge (u, u1).  All counters are
    # built against the untouched candidate sets first; only then are the
    # zero-count candidates removed, so that worklist decrements below
    # stay consistent with the counters.
    counters: Dict[tuple, Dict[Node, int]] = {}
    for u in pattern.nodes():
        for u1 in pattern.successors(u):
            targets = sim[u1]
            counters[(u, u1)] = {
                v: sum(1 for w in target.successors(v) if w in targets)
                for v in sim[u]
            }
    removals: deque = deque()
    for u in pattern.nodes():
        doomed = {
            v
            for u1 in pattern.successors(u)
            for v, count in counters[(u, u1)].items()
            if count == 0
        }
        for v in doomed:
            sim[u].discard(v)
            removals.append((u, v))
        if not sim[u]:
            return None

    # --- worklist refinement ---------------------------------------------
    while removals:
        u1, w = removals.popleft()
        for u in pattern.predecessors(u1):
            edge_counter = counters[(u, u1)]
            candidates = sim[u]
            for v in target.predecessors(w):
                if v in candidates:
                    edge_counter[v] -= 1
                    if edge_counter[v] == 0:
                        candidates.discard(v)
                        removals.append((u, v))
            if not candidates:
                return None
    return sim


def match(pattern: Pattern, graph: DataGraph) -> MatchResult:
    """Evaluate ``Qs`` on ``G`` via graph simulation (the paper's Match).

    ``graph`` may be a mutable :class:`DataGraph`, a frozen
    :class:`CompactGraph`, or a
    :class:`~repro.shard.sharded.ShardedGraph`; snapshots take the
    integer-id fast path, sharded graphs the partial-evaluation path,
    and all produce an equal result.  Returns the unique maximum result
    ``{(e, Se)}`` as a :class:`MatchResult`; the empty result when
    ``G`` does not match.
    """
    if isinstance(graph, CompactGraph):
        return compact_match(pattern, graph)
    # The shard layer sits above this module; if it was never imported,
    # graph cannot be a ShardedGraph, so a sys.modules probe keeps the
    # dispatch cycle-free and costs one dict lookup.
    shard_module = sys.modules.get("repro.shard.sharded")
    if shard_module is not None and isinstance(graph, shard_module.ShardedGraph):
        from repro.shard.psim import sharded_match

        return sharded_match(pattern, graph)
    sim = maximum_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty()
    edge_matches = edge_matches_from_nodes(
        pattern.edges(), sim, graph.successors
    )
    return MatchResult(sim, edge_matches)


def simulates(pattern: Pattern, graph: DataGraph) -> bool:
    """``Qs E_sim G``: does ``G`` match ``Qs`` via simulation?"""
    return bool(match(pattern, graph))
