"""Strong simulation ([28], Section VIII extension).

Strong simulation adds *locality* to dual simulation: a data node ``v``
is a strong-simulation match of pattern node ``u`` iff the maximum dual
simulation of the pattern inside the ball ``B(v, d_Q)`` -- the subgraph
induced by nodes within undirected distance ``d_Q`` (the pattern's
diameter) of ``v`` -- contains ``(u, v)``.  Ma et al. show this captures
topology that plain/dual simulation lose while staying cubic.

The entry point :func:`strong_match` returns the union, over all
matching balls, of the dual-simulation relations, exposed through the
usual :class:`MatchResult` interface plus the list of match balls.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern
from repro.simulation.dual import maximum_dual_simulation
from repro.simulation.result import MatchResult, edge_matches_from_nodes
from repro.simulation.seeding import condition_candidates

PNode = Hashable
Node = Hashable


def pattern_diameter(pattern: Pattern) -> int:
    """Diameter of the pattern treated as an undirected graph.

    Disconnected patterns (not expected; the paper assumes connected
    ones) fall back to ``num_nodes``.
    """
    nodes = list(pattern.nodes())
    best = 0
    for source in nodes:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in pattern.successors(node) | pattern.predecessors(node):
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        if len(dist) < len(nodes):
            return max(len(nodes), 1)
        best = max(best, max(dist.values()))
    return max(best, 1)


def ball(graph: DataGraph, center: Node, radius: int) -> Set[Node]:
    """Nodes within undirected distance ``radius`` of ``center``."""
    seen = {center}
    queue = deque([(center, 0)])
    while queue:
        node, depth = queue.popleft()
        if depth == radius:
            continue
        for neighbor in graph.successors(node) | graph.predecessors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, depth + 1))
    return seen


class _InducedSubgraph:
    """Read-only induced subgraph view (no copying of label/attr data)."""

    __slots__ = ("_graph", "_members")

    def __init__(self, graph: DataGraph, members: Set[Node]) -> None:
        self._graph = graph
        self._members = members

    def nodes(self):
        return iter(self._members)

    def successors(self, node: Node) -> Set[Node]:
        return self._graph.successors(node) & self._members

    def predecessors(self, node: Node) -> Set[Node]:
        return self._graph.predecessors(node) & self._members


def strong_match(
    pattern: Pattern, graph: DataGraph
) -> Tuple[MatchResult, List[Tuple[Node, Dict[PNode, Set[Node]]]]]:
    """Evaluate ``Qs`` on ``G`` via strong simulation.

    Returns ``(result, balls)`` where ``result`` accumulates the union
    of all ball-local dual simulations and ``balls`` lists
    ``(center, relation)`` for each ball whose dual simulation matched
    with the center participating.
    """
    radius = pattern_diameter(pattern)

    def compatible(u: PNode, v: Node) -> bool:
        return pattern.condition(u).matches(graph.labels(v), graph.attrs(v))

    # Candidate centers: nodes satisfying at least one pattern condition,
    # seeded from the label index.  An empty seed for any pattern node
    # means no ball can host a full dual simulation, so no match.
    seeds = condition_candidates(pattern, graph)
    if seeds is None:
        return MatchResult.empty(), []
    candidate_union = set().union(*seeds.values())
    centers = [v for v in graph.nodes() if v in candidate_union]

    union: Dict[PNode, Set[Node]] = {u: set() for u in pattern.nodes()}
    matched_balls: List[Tuple[Node, Dict[PNode, Set[Node]]]] = []
    for center in centers:
        members = ball(graph, center, radius)
        view = _InducedSubgraph(graph, members)
        sim = maximum_dual_simulation(pattern, view, compatible)
        if sim is None:
            continue
        if not any(center in matched for matched in sim.values()):
            continue
        matched_balls.append((center, sim))
        for u, matched in sim.items():
            union[u].update(matched)

    if not matched_balls:
        return MatchResult.empty(), []
    edge_matches = edge_matches_from_nodes(pattern.edges(), union, graph.successors)
    return MatchResult(union, edge_matches), matched_balls
