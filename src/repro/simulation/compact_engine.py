"""Integer-id simulation engine for :class:`CompactGraph` snapshots.

This is the fast path behind :func:`repro.simulation.simulation.match`
when the target is a frozen snapshot.  It runs the same counter-based
worklist refinement as the generic engine, but entirely in the
snapshot's dense id space:

* candidate sets are sets of ints seeded straight from the label index
  (a plain-label pattern node costs one bucket copy, zero condition
  calls);
* witness counters are built with ``set.intersection`` against the
  snapshot's adjacency rows -- one C call per (candidate, pattern edge)
  instead of a Python loop over successors;
* the per-edge match sets come out grouped by source id
  (``{v: {w...}}``), which is exactly the indexed form view
  materialization stores for the MatchJoin fast path.

Results decode back to original node keys at the very end, so a
:class:`MatchResult` from this engine is equal (``==``) to one computed
on the mutable dict backend.
"""

from __future__ import annotations

import logging
from itertools import repeat
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.compact import CompactGraph
from repro.graph.conditions import AttributeCondition, Label
from repro.obs.metrics import get_registry
from repro.simulation.result import MatchResult

log = logging.getLogger(__name__)


def _meter_refinement(batches: int, removed: int) -> None:
    """One registry write per fixpoint run (hot-kernel discipline: the
    loop aggregates in local ints, never per-removal)."""
    reg = get_registry()
    reg.counter("repro_sim_batches_total").inc(batches)
    reg.counter("repro_sim_removals_total").inc(removed)

PNode = Hashable
PEdge = Tuple[PNode, PNode]

#: Id-space edge matches: ``{pattern edge: {source id: set of target ids}}``.
IdEdgeMatches = Dict[PEdge, Dict[int, Set[int]]]


def compact_candidates(
    pattern, graph: CompactGraph
) -> Optional[Dict[PNode, Set[int]]]:
    """Seed id-space candidate sets from the snapshot's label index."""
    sim: Dict[PNode, Set[int]] = {}
    for u in pattern.nodes():
        condition = pattern.condition(u)
        if isinstance(condition, Label):
            candidates = set(graph.label_ids(condition.name))
        elif isinstance(condition, AttributeCondition) and condition.label:
            candidates = {
                i
                for i in graph.label_ids(condition.label)
                if condition.matches(graph.labels_of(i), graph.attrs_of(i))
            }
        else:
            candidates = {
                i
                for i in range(graph.num_nodes)
                if condition.matches(graph.labels_of(i), graph.attrs_of(i))
            }
        if not candidates:
            return None
        sim[u] = candidates
    return sim


def refine_batch(
    affected: Set[int],
    succ,
    edge_counter: Dict[int, int],
    intersect_targets,
    intersect_removed,
) -> Set[int]:
    """One witness-counter refinement step over a removal batch.

    The shared inner kernel of every counter-based fixpoint in the
    repository (:func:`compact_maximum_simulation` here, the shard
    -local fixpoint in :mod:`repro.shard.psim`): for each affected
    candidate, either materialize its counter lazily (one C-level
    intersection of its adjacency row against the current target set)
    or decrement it by the batch overlap, and collect the candidates
    whose last witness just left.  ``intersect_targets`` /
    ``intersect_removed`` are bound ``set.intersection`` methods, so
    the caller controls exactly which target universe counts (the
    single-machine engine passes ``sim(u1)`` ∪ still-queued ids, the
    sharded engine its ``full`` internal-plus-ghost sets).
    """
    newly: Set[int] = set()
    for v in affected:
        count = edge_counter.get(v)
        if count is None:
            count = len(intersect_targets(succ[v]))
        else:
            count -= len(intersect_removed(succ[v]))
        edge_counter[v] = count
        if count == 0:
            newly.add(v)
    return newly


def compact_maximum_simulation(
    pattern, graph: CompactGraph
) -> Optional[Dict[PNode, Set[int]]]:
    """Maximum simulation of ``pattern`` over a snapshot, in id space.

    The refinement is the usual witness-counter fixpoint with two
    layout-enabled twists:

    * removals propagate in *batches* -- all ids that left ``sim(u1)``
      since the last visit are processed together, so each affected
      candidate pays C-level ``set`` calls against its adjacency row
      instead of a Python-loop decrement per lost edge;
    * counters are *lazy* -- seeding detects witness-less candidates
      with the early-exiting ``set.isdisjoint``, and a candidate's
      counter is only materialized (one ``set.intersection`` against
      the current target set) the first time a batch touches it.

    A candidate still pays O(degree) once per pattern edge plus O(1)
    per lost witness, so the paper's ``O(|Qs||G| + |G|^2)`` accounting
    is unchanged -- only the constant factor moves out of the
    interpreter.

    Returns ``{u: ids}`` with every set nonempty, or ``None`` when the
    pattern has no match.
    """
    sim = compact_candidates(pattern, graph)
    if sim is None:
        return None
    succ = graph.succ_rows
    pred = graph.pred_rows

    # pending[u] accumulates ids removed from sim(u) whose departure has
    # not yet been propagated to the predecess*or* pattern nodes.
    pending: Dict[PNode, Set[int]] = {}
    counters: Dict[PEdge, Dict[int, int]] = {}
    for u in pattern.nodes():
        doomed: Set[int] = set()
        for u1 in pattern.successors(u):
            counters[(u, u1)] = {}
            no_witness = sim[u1].isdisjoint
            doomed.update(v for v in sim[u] if no_witness(succ[v]))
        if doomed:
            sim[u] -= doomed
            if not sim[u]:
                return None
            pending[u] = doomed

    batches = 0
    removed_total = 0
    while pending:
        u1, removed = pending.popitem()
        batches += 1
        removed_total += len(removed)
        # Candidates that might have lost a witness: predecessors of any
        # removed id.
        touched = set().union(*map(pred.__getitem__, removed))
        if not touched:
            continue
        intersect_removed = removed.intersection
        for u in pattern.predecessors(u1):
            candidates = sim[u]
            affected = candidates & touched
            if not affected:
                continue
            # A counter materialized mid-propagation must count every
            # witness whose departure has not been *processed* yet:
            # sim(u1) plus anything still queued for u1 (a self-loop
            # pattern edge can re-queue ids for u1 during this very
            # pop).  The current batch is excluded from both, so it
            # needs no decrement on a fresh counter; queued ids will
            # decrement exactly once when their own batch pops.
            queued_for_u1 = pending.get(u1)
            if queued_for_u1:
                intersect_targets = (sim[u1] | queued_for_u1).intersection
            else:
                intersect_targets = sim[u1].intersection
            newly = refine_batch(
                affected,
                succ,
                counters[(u, u1)],
                intersect_targets,
                intersect_removed,
            )
            if newly:
                candidates -= newly
                if not candidates:
                    _meter_refinement(batches, removed_total)
                    return None
                queued = pending.get(u)
                if queued is None:
                    pending[u] = newly
                else:
                    queued |= newly
    _meter_refinement(batches, removed_total)
    return sim


def compact_edge_matches(
    pattern, graph: CompactGraph, sim: Dict[PNode, Set[int]]
) -> IdEdgeMatches:
    """Per-edge match sets in id space, grouped by source id."""
    succ = graph.succ_rows
    matches: IdEdgeMatches = {}
    for edge in pattern.edges():
        u, u1 = edge
        intersect = sim[u1].intersection
        grouped: Dict[int, Set[int]] = {}
        for v in sim[u]:
            witnesses = intersect(succ[v])
            if witnesses:
                grouped[v] = witnesses
        matches[edge] = grouped
    return matches


def decode_edge_matches(
    id_matches: IdEdgeMatches, graph: CompactGraph
) -> Dict[PEdge, Set[Tuple]]:
    """Translate id-space edge matches back to node-key pair sets."""
    nodes = graph.node_table
    decode = nodes.__getitem__
    decoded: Dict[PEdge, Set[Tuple]] = {}
    for edge, grouped in id_matches.items():
        pairs: Set[Tuple] = set()
        for v, targets in grouped.items():
            pairs.update(zip(repeat(nodes[v]), map(decode, targets)))
        decoded[edge] = pairs
    return decoded


def compact_match_with_ids(
    pattern, graph: CompactGraph
) -> Tuple[MatchResult, Optional[IdEdgeMatches]]:
    """Evaluate ``Qs`` on a snapshot; also return the id-space matches.

    The second component feeds the compact extension payload view
    materialization stores (``None`` on a failed match).
    """
    sim = compact_maximum_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty(), None
    id_matches = compact_edge_matches(pattern, graph, sim)
    decode = graph.node_table.__getitem__
    node_matches = {u: set(map(decode, ids)) for u, ids in sim.items()}
    return MatchResult(node_matches, decode_edge_matches(id_matches, graph)), id_matches


def compact_match(pattern, graph: CompactGraph) -> MatchResult:
    """Evaluate ``Qs`` on a snapshot via the id-space fast path."""
    result, _ = compact_match_with_ids(pattern, graph)
    return result
