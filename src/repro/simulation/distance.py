"""Distance oracles used by the bounded-simulation machinery.

Three flavours are needed:

* forward bounded BFS on data graphs (match-set construction and the
  view distance index ``I(V)``);
* multi-source *reverse* bounded BFS (the BMatch refinement asks "which
  nodes can reach the current match set of u' within k hops?");
* all-pairs shortest paths on *weighted pattern graphs* (bounded view
  matches treat ``Qb`` as a weighted data graph whose edge weights are
  the bounds ``fe(e)``; a ``*`` weight is infinite for finite-bound
  checks, but still usable for plain reachability).

Path lengths are counted over nonempty paths: ``dist(v, v) >= 1`` and is
finite only when ``v`` lies on a cycle, matching the paper's semantics
of mapping a pattern edge to a *nonempty* path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, Iterable, Set, Tuple

from repro.graph.pattern import ANY, Bound

Node = Hashable

#: Effectively-infinite distance for weighted pattern graphs.
INF = float("inf")


def bounded_descendants(graph, source: Node, bound: int) -> Dict[Node, int]:
    """Shortest nonempty-path distance to every node within ``bound`` hops."""
    return graph.descendants_within(source, bound)


def reachable_from(graph, source: Node) -> Set[Node]:
    """All nodes reachable from ``source`` by a nonempty path."""
    seen: Set[Node] = set()
    stack = list(graph.successors(source))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.successors(node) - seen)
    return seen


def reverse_reachable_within(
    graph, targets: Iterable[Node], bound: Bound
) -> Set[Node]:
    """Nodes with a nonempty path of length within ``bound`` *into* ``targets``.

    This is the multi-source reverse BFS at the heart of the BMatch
    refinement: ``sim(u)`` may only keep nodes in
    ``reverse_reachable_within(G, sim(u1), fe(u, u1))``.
    """
    seen: Set[Node] = set()
    if bound is ANY:
        stack: list = []
        for target in targets:
            stack.extend(graph.predecessors(target))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.predecessors(node) - seen)
        return seen
    frontier = deque()
    for target in targets:
        for pred in graph.predecessors(target):
            frontier.append((pred, 1))
    while frontier:
        node, depth = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        if depth < bound:
            for pred in graph.predecessors(node):
                if pred not in seen:
                    frontier.append((pred, depth + 1))
    return seen


class WeightedPatternDistances:
    """All-pairs nonempty-path distances over a bounded pattern ``Qb``.

    ``Qb`` is treated as a weighted data graph whose edge weights are
    its bounds; ``*`` edges have weight :data:`INF` so they never help a
    finite-bound check, yet :meth:`reaches` still sees them (a ``*``
    view bound only needs *some* nonempty path).
    """

    def __init__(self, pattern) -> None:
        self._dist: Dict[Node, Dict[Node, float]] = {}
        self._reach: Dict[Node, Set[Node]] = {}
        weights: Dict[Tuple[Node, Node], float] = {}
        for edge in pattern.edges():
            bound = pattern.bound(edge)
            weights[edge] = INF if bound is ANY else float(bound)
        for source in pattern.nodes():
            self._dist[source] = self._dijkstra(pattern, source, weights)
            self._reach[source] = self._reachable(pattern, source)

    @staticmethod
    def _dijkstra(pattern, source: Node, weights) -> Dict[Node, float]:
        # Nonempty paths only: seed the heap with the out-edges of
        # ``source`` instead of with ``source`` at distance 0.
        dist: Dict[Node, float] = {}
        heap: list = []
        for target in pattern.successors(source):
            weight = weights[(source, target)]
            if weight < INF:
                heapq.heappush(heap, (weight, id(target), target))
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            for target in pattern.successors(node):
                if target not in dist:
                    weight = weights[(node, target)]
                    if weight < INF:
                        heapq.heappush(heap, (d + weight, id(target), target))
        return dist

    @staticmethod
    def _reachable(pattern, source: Node) -> Set[Node]:
        seen: Set[Node] = set()
        stack = list(pattern.successors(source))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(pattern.successors(node) - seen)
        return seen

    def distance(self, source: Node, target: Node) -> float:
        """Min-weight nonempty path distance (``INF`` when unreachable
        through finite-weight edges)."""
        return self._dist[source].get(target, INF)

    def reaches(self, source: Node, target: Node) -> bool:
        """Is there *any* nonempty path, ``*`` edges included?"""
        return target in self._reach[source]

    def within(self, source: Node, target: Node, bound: Bound) -> bool:
        """Does some nonempty path from ``source`` to ``target`` respect
        ``bound``?  (Any path for ``*``, min-weight <= k otherwise.)"""
        if bound is ANY:
            return self.reaches(source, target)
        return self.distance(source, target) <= bound


class BoundedDistanceCache:
    """Memoizing forward bounded-BFS oracle over a data graph.

    BMatch repeatedly asks for the descendants of the same node at the
    same (or smaller) depth while building match sets; caching by
    ``(node, depth)`` with depth-widening keeps this linear in practice.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._cache: Dict[Node, Tuple[int, Dict[Node, int]]] = {}
        self._full: Dict[Node, Set[Node]] = {}

    def descendants(self, source: Node, bound: int) -> Dict[Node, int]:
        """``{node: distance}`` for nonempty paths of length <= bound."""
        cached = self._cache.get(source)
        if cached is not None and cached[0] >= bound:
            depth, dist = cached
            if depth == bound:
                return dist
            return {node: d for node, d in dist.items() if d <= bound}
        dist = self._graph.descendants_within(source, bound)
        self._cache[source] = (bound, dist)
        return dist

    def reachable(self, source: Node) -> Set[Node]:
        """All nodes reachable by a nonempty path (memoized)."""
        if source not in self._full:
            self._full[source] = reachable_from(self._graph, source)
        return self._full[source]

    def within(self, source: Node, target: Node, bound: Bound) -> bool:
        if bound is ANY:
            return target in self.reachable(source)
        return target in self.descendants(source, bound)
