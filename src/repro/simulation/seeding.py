"""Candidate seeding for the simulation engines.

Every matching engine starts from per-pattern-node candidate sets
``{v : fv(u) holds at v}``.  Seeding used to scan every data node per
pattern node -- the dominant constant factor in the paper's
``O(|Qs||G|)`` term.  This module seeds from the backend's label index
instead, whenever the node condition pins a label:

* a plain :class:`~repro.graph.conditions.Label` condition *is* its
  bucket -- no per-node test at all;
* an :class:`~repro.graph.conditions.AttributeCondition` with a label
  restriction filters its bucket only;
* wildcard / label-free predicate conditions fall back to the full scan
  (nothing narrows them).

Both backends qualify: :class:`~repro.graph.digraph.DataGraph` maintains
its inverted index incrementally and
:class:`~repro.graph.compact.CompactGraph` builds one at freeze time.
Targets without a label index (e.g. a :class:`Pattern` treated as a data
graph during view-match computation) take the explicit-``compatible``
scan path in the engines and never reach this module.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.graph.conditions import AttributeCondition, Label

PNode = Hashable
Node = Hashable


def condition_candidates(pattern, target) -> Optional[Dict[PNode, Set[Node]]]:
    """Seed ``{u: candidates}`` for evaluating ``pattern`` over ``target``.

    ``target`` must expose ``nodes()``, ``labels(v)``, ``attrs(v)`` and
    ``nodes_with_label(label)``.  Returns ``None`` as soon as any
    pattern node has no candidate (the pattern cannot match).
    """
    sim: Dict[PNode, Set[Node]] = {}
    all_nodes = None
    for u in pattern.nodes():
        condition = pattern.condition(u)
        if isinstance(condition, Label):
            candidates = set(target.nodes_with_label(condition.name))
        elif isinstance(condition, AttributeCondition) and condition.label:
            candidates = {
                v
                for v in target.nodes_with_label(condition.label)
                if condition.matches(target.labels(v), target.attrs(v))
            }
        else:
            if all_nodes is None:
                all_nodes = list(target.nodes())
            candidates = {
                v
                for v in all_nodes
                if condition.matches(target.labels(v), target.attrs(v))
            }
        if not candidates:
            return None
        sim[u] = candidates
    return sim
