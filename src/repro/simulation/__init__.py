"""Matching engines: graph simulation, bounded simulation and revisions.

* :func:`~repro.simulation.simulation.match` -- the ``Match`` baseline:
  evaluate a pattern on a data graph via graph simulation ([16], [21]).
* :func:`~repro.simulation.bounded.bounded_match` -- the ``BMatch``
  baseline: bounded simulation with edge-to-path semantics ([16]).
* :mod:`~repro.simulation.dual` / :mod:`~repro.simulation.strong` --
  dual and strong simulation ([28]), the Section VIII extensions.
* :mod:`~repro.simulation.distance` -- BFS/Dijkstra distance oracles
  shared by the bounded engines and the view distance index.

All engines return a :class:`~repro.simulation.result.MatchResult`
holding the unique maximum match: node match sets plus the per-edge
match sets ``{(e, Se)}`` that constitute ``Qs(G)`` in the paper.
"""

from repro.simulation.bounded import bounded_match
from repro.simulation.dual import dual_match
from repro.simulation.result import MatchResult
from repro.simulation.simulation import match
from repro.simulation.strong import strong_match

__all__ = [
    "MatchResult",
    "bounded_match",
    "dual_match",
    "match",
    "strong_match",
]
