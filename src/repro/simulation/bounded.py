"""Bounded simulation: the ``BMatch`` baseline (Section VI, [16]).

``G`` matches a bounded pattern ``Qb`` via bounded simulation iff there
is a relation ``S`` such that every pattern node has a match and, for
``(u, v) in S`` and each pattern edge ``e = (u, u')`` with bound
``fe(e)``, some node ``v'`` with ``(u', v') in S`` is reachable from
``v`` by a nonempty path of length <= ``fe(e)`` (any length for ``*``).

The refinement below alternates per-edge *reverse bounded BFS* pruning
(``sim(u)`` keeps only nodes that can reach the current ``sim(u')``
within the bound) until a fixpoint, which is the standard cubic-time
scheme of [16].  Match sets ``Se`` -- node pairs together with their
actual distances -- are then built by forward bounded BFS from the
surviving matches; distances are also what the view machinery stores in
its index ``I(V)``.

Like :func:`repro.simulation.simulation.match`, the entry points are
backend-generic: candidates seed from whatever label index the target
provides, frozen :class:`~repro.graph.compact.CompactGraph` targets
dispatch to the integer-id engine in
:mod:`repro.simulation.compact_bounded`, and
:class:`~repro.shard.sharded.ShardedGraph` targets run the generic
engine over the composite read API (whose bounded BFS stitches across
shards at ghost nodes).  Results are equal on every backend.
"""

from __future__ import annotations

import sys
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.pattern import ANY, BoundedPattern
from repro.simulation.compact_bounded import (
    compact_bounded_match,
    compact_maximum_bounded_simulation,
)
from repro.simulation.distance import (
    BoundedDistanceCache,
    reverse_reachable_within,
)
from repro.simulation.result import MatchResult
from repro.simulation.seeding import condition_candidates

PNode = Hashable
Node = Hashable
NodePair = Tuple[Node, Node]


def maximum_bounded_simulation(
    pattern: BoundedPattern, graph: DataGraph
) -> Optional[Dict[PNode, Set[Node]]]:
    """The maximum bounded simulation relation, or ``None`` if no match."""
    sim = condition_candidates(pattern, graph)
    if sim is None:
        return None

    edges = pattern.edges()
    changed = True
    while changed:
        changed = False
        for edge in edges:
            u, u1 = edge
            bound = pattern.bound(edge)
            allowed = reverse_reachable_within(graph, sim[u1], bound)
            if not sim[u] <= allowed:
                sim[u] &= allowed
                if not sim[u]:
                    return None
                changed = True
    return sim


def bounded_edge_matches(
    pattern: BoundedPattern,
    graph: DataGraph,
    sim: Dict[PNode, Set[Node]],
    with_distances: bool = False,
    cache: Optional[BoundedDistanceCache] = None,
):
    """Build the per-edge match sets from a (maximum) relation ``sim``.

    With ``with_distances=True`` returns ``{e: {(v, v'): dist}}``, which
    is what view materialization needs for the index ``I(V)``; otherwise
    returns ``{e: set of (v, v')}``.
    """
    cache = cache or BoundedDistanceCache(graph)
    if with_distances:
        with_d: Dict[Tuple[PNode, PNode], Dict[NodePair, int]] = {}
    else:
        plain: Dict[Tuple[PNode, PNode], Set[NodePair]] = {}
    for edge in pattern.edges():
        u, u1 = edge
        bound = pattern.bound(edge)
        targets = sim[u1]
        if with_distances:
            pairs_d: Dict[NodePair, int] = {}
        else:
            pairs: Set[NodePair] = set()
        for v in sim[u]:
            if bound is ANY:
                # Distances recorded for * edges are shortest-path hops,
                # found by widening BFS until the target set is covered;
                # cheaper: full reachability then BFS only if distances
                # are requested.
                if with_distances:
                    reach = cache.reachable(v) & targets
                    if reach:
                        dist = cache.descendants(v, graph.num_nodes)
                        for w in reach:
                            pairs_d[(v, w)] = dist[w]
                else:
                    for w in cache.reachable(v) & targets:
                        pairs.add((v, w))
            else:
                dist = cache.descendants(v, bound)
                for w, d in dist.items():
                    if w in targets:
                        if with_distances:
                            pairs_d[(v, w)] = d
                        else:
                            pairs.add((v, w))
        if with_distances:
            with_d[edge] = pairs_d
        else:
            plain[edge] = pairs
    return with_d if with_distances else plain


def bounded_match(pattern: BoundedPattern, graph: DataGraph) -> MatchResult:
    """Evaluate ``Qb`` on ``G`` via bounded simulation (the paper's BMatch).

    ``graph`` may be a mutable :class:`DataGraph`, a frozen
    :class:`CompactGraph`, or a
    :class:`~repro.shard.sharded.ShardedGraph`; snapshots take the
    integer-id fast path, sharded graphs the ghost-stitched BFS path,
    and all produce an equal result.
    """
    if isinstance(graph, CompactGraph):
        return compact_bounded_match(pattern, graph)
    shard_module = sys.modules.get("repro.shard.sharded")
    if shard_module is not None and isinstance(graph, shard_module.ShardedGraph):
        from repro.shard.psim import sharded_bounded_match

        return sharded_bounded_match(pattern, graph)
    sim = maximum_bounded_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty()
    edge_matches = bounded_edge_matches(pattern, graph, sim)
    return MatchResult(sim, edge_matches)


def bounded_match_with_distances(
    pattern: BoundedPattern, graph: DataGraph
) -> Tuple[MatchResult, Dict[Tuple[PNode, PNode], Dict[NodePair, int]]]:
    """Like :func:`bounded_match` but also return per-pair distances.

    Used by view materialization: the second component feeds the
    distance index ``I(V)`` of Section VI-A.  Snapshot-specific fast
    paths live in :mod:`repro.simulation.compact_bounded` and the shard
    layer; this entry point runs the generic engine over whatever
    backend it is handed (all backends expose the required read API).
    """
    sim = maximum_bounded_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty(), {}
    distances = bounded_edge_matches(pattern, graph, sim, with_distances=True)
    edge_matches = {edge: set(pairs) for edge, pairs in distances.items()}
    return MatchResult(sim, edge_matches), distances


def bounded_simulates(pattern: BoundedPattern, graph: DataGraph) -> bool:
    """``Qb E_Bsim G``: does ``G`` match ``Qb`` via bounded simulation?"""
    if isinstance(graph, CompactGraph):
        return compact_maximum_bounded_simulation(pattern, graph) is not None
    return maximum_bounded_simulation(pattern, graph) is not None
