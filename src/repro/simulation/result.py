"""The result object shared by all matching engines.

The paper defines the result of ``Qs`` in ``G`` as the unique maximum
set ``{(e, Se) | e in Ep}`` derived from the maximum match relation
``So``, with ``Qs(G) = {}`` when ``G`` does not match ``Qs``.  A
:class:`MatchResult` carries both the node-level relation (``So`` as
per-pattern-node match sets) and the per-edge match sets, because the
node sets are what the fixpoint algorithms refine while the edge sets
are what the user (and the views machinery) consumes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]


class MatchResult:
    """The unique maximum match of a pattern in a data graph.

    Attributes
    ----------
    node_matches:
        ``{u: set of data nodes matching u}`` -- the relation ``So``
        grouped by pattern node.  Empty dict for a failed match.
    edge_matches:
        ``{e: Se}`` -- for plain simulation ``Se`` contains data-graph
        *edges*; for bounded simulation it contains node pairs connected
        by a path within the edge's bound.
    stats:
        Optional execution telemetry (e.g.
        :class:`repro.engine.plan.ExecutionStats` when the result comes
        from a :class:`~repro.engine.engine.QueryEngine`): strategy,
        wall time, cache provenance.  ``None`` for results built by the
        matching engines directly; never part of equality.
    """

    __slots__ = ("node_matches", "edge_matches", "stats")

    def __init__(
        self,
        node_matches: Dict[PNode, Set[Node]],
        edge_matches: Dict[PEdge, Set[NodePair]],
        stats: object = None,
    ) -> None:
        self.node_matches = node_matches
        self.edge_matches = edge_matches
        self.stats = stats

    @classmethod
    def empty(cls) -> "MatchResult":
        """The failed match, ``Qs(G) = {}``."""
        return cls({}, {})

    def __bool__(self) -> bool:
        """True iff the pattern matched (``Qs E_sim G``)."""
        return bool(self.node_matches)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchResult):
            return NotImplemented
        return (
            self.node_matches == other.node_matches
            and self.edge_matches == other.edge_matches
        )

    def __hash__(self) -> int:  # pragma: no cover - results are not hashed
        raise TypeError("MatchResult is unhashable")

    def matches_of(self, pattern_node: PNode) -> Set[Node]:
        return self.node_matches.get(pattern_node, set())

    def edge_matches_of(self, edge: PEdge) -> Set[NodePair]:
        return self.edge_matches.get(edge, set())

    @property
    def result_size(self) -> int:
        """``|Qs(G)|``: total number of pairs across all match sets."""
        return sum(len(pairs) for pairs in self.edge_matches.values())

    def total_node_matches(self) -> int:
        return sum(len(nodes) for nodes in self.node_matches.values())

    def as_relation(self) -> Set[Tuple[PNode, Node]]:
        """The match relation ``So`` as a set of (pattern node, node) pairs."""
        return {
            (u, v) for u, nodes in self.node_matches.items() for v in nodes
        }

    def to_table(self) -> List[Tuple[PEdge, List[NodePair]]]:
        """Rows like the paper's Example 2 table, deterministically sorted."""
        rows = []
        for edge in sorted(self.edge_matches, key=repr):
            rows.append((edge, sorted(self.edge_matches[edge], key=repr)))
        return rows

    def pretty(self) -> str:
        """A printable rendition of the Example 2 style table."""
        lines = ["Edge -> Matches"]
        for edge, pairs in self.to_table():
            rendered = ", ".join(f"({a}, {b})" for a, b in pairs)
            lines.append(f"  {edge[0]} -> {edge[1]}: {{{rendered}}}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if not self:
            return "MatchResult(empty)"
        return (
            f"MatchResult(nodes={self.total_node_matches()}, "
            f"pairs={self.result_size})"
        )


def edge_matches_from_nodes(
    pattern_edges: Iterable[PEdge],
    node_matches: Dict[PNode, Set[Node]],
    successors,
) -> Dict[PEdge, Set[NodePair]]:
    """Derive ``{(e, Se)}`` for plain simulation: ``Se`` contains every
    data edge ``(v, v')`` with ``v`` matching ``u`` and ``v'`` matching
    ``u'``.  ``successors(v)`` must return the data successor set.
    """
    edge_matches: Dict[PEdge, Set[NodePair]] = {}
    for edge in pattern_edges:
        source_u, target_u = edge
        pairs: Set[NodePair] = set()
        targets = node_matches[target_u]
        for v in node_matches[source_u]:
            for w in successors(v):
                if w in targets:
                    pairs.add((v, w))
        edge_matches[edge] = pairs
    return edge_matches
