"""Integer-id bounded-simulation engine for :class:`CompactGraph` snapshots.

This is the bounded sibling of :mod:`repro.simulation.compact_engine`:
the fast path behind :func:`repro.simulation.bounded.bounded_match` when
the target is a frozen snapshot.  It runs the same per-edge refinement
as the generic BMatch engine, but entirely in the snapshot's dense id
space:

* candidate sets are sets of ints seeded straight from the label index
  (:func:`~repro.simulation.compact_engine.compact_candidates`);
* the refinement's "which nodes can reach the current match set of u'
  within k hops?" question is answered by the snapshot's multi-source
  reverse bounded BFS (:meth:`CompactGraph.reverse_within_ids`), whose
  frontiers expand with C-level ``set.update`` over CSR rows;
* match-set construction and the distance index ``I(V)`` come from the
  id-space forward BFS (:meth:`CompactGraph.descendants_within_ids`)
  behind a memoizing :class:`CompactBoundedDistanceCache`.

Results decode back to original node keys at the very end, so a
:class:`MatchResult` from this engine is equal (``==``) to one computed
on the mutable dict backend; the id-space edge matches and the id-space
distance index additionally feed the
:class:`~repro.views.view.CompactExtension` payload that bounded view
materialization stores for the BMatchJoin fast path.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.compact import CompactGraph
from repro.graph.pattern import ANY
from repro.obs.metrics import get_registry

log = logging.getLogger(__name__)
from repro.simulation.compact_engine import (
    IdEdgeMatches,
    compact_candidates,
    decode_edge_matches,
)
from repro.simulation.result import MatchResult

PNode = Hashable
PEdge = Tuple[PNode, PNode]

#: Id-space distance index ``I(V)``: ``{(source id, target id): dist}``,
#: minimized over all view edges exactly like the node-key index.
IdDistances = Dict[Tuple[int, int], int]


class CompactBoundedDistanceCache:
    """Memoizing id-space forward bounded-BFS oracle over a snapshot.

    The id-space twin of
    :class:`~repro.simulation.distance.BoundedDistanceCache`: BMatch
    repeatedly asks for the descendants of the same id at the same (or
    smaller) depth while building match sets, so caching by id with
    depth-widening keeps this linear in practice.
    """

    __slots__ = ("_graph", "_cache", "_full")

    def __init__(self, graph: CompactGraph) -> None:
        self._graph = graph
        self._cache: Dict[int, Tuple[int, Dict[int, int]]] = {}
        self._full: Dict[int, Set[int]] = {}

    def descendants(self, source: int, bound: int) -> Dict[int, int]:
        """``{id: distance}`` for nonempty paths of length <= bound."""
        cached = self._cache.get(source)
        if cached is not None and cached[0] >= bound:
            depth, dist = cached
            if depth == bound:
                return dist
            return {i: d for i, d in dist.items() if d <= bound}
        dist = self._graph.descendants_within_ids(source, bound)
        self._cache[source] = (bound, dist)
        return dist

    def reachable(self, source: int) -> Set[int]:
        """All ids reachable by a nonempty path (memoized)."""
        if source not in self._full:
            self._full[source] = self._graph.reachable_ids(source)
        return self._full[source]


def _meter_bounded(evaluations: int, shrinks: int) -> None:
    """One registry write per bounded fixpoint run."""
    reg = get_registry()
    reg.counter("repro_bounded_edge_evals_total").inc(evaluations)
    reg.counter("repro_bounded_shrinks_total").inc(shrinks)


def compact_maximum_bounded_simulation(
    pattern, graph: CompactGraph
) -> Optional[Dict[PNode, Set[int]]]:
    """The maximum bounded simulation over a snapshot, in id space.

    The same greatest fixpoint as the generic engine
    (:func:`repro.simulation.bounded.maximum_bounded_simulation`) --
    each step intersects ``sim(u)`` with the reverse-BFS cone of
    ``sim(u')`` -- reached by *chaotic iteration over an edge
    worklist*: an edge is (re-)evaluated only after its target set
    shrank, instead of the generic engine's full edge sweep per outer
    round.  The refinement operator is monotone and the greatest
    fixpoint unique, so evaluation order cannot change the result
    (property-tested against the dict backend).  Candidate sets hold
    ints and every BFS frontier expands with C-level set operations
    over CSR rows.  Returns ``{u: ids}`` with every set nonempty, or
    ``None`` on no match.
    """
    sim = compact_candidates(pattern, graph)
    if sim is None:
        return None
    queue = deque(pattern.edges())
    queued = set(queue)
    # Reverse cones keyed by (target node, bound), valid while the
    # target set has not shrunk since computation: parallel edges into
    # the same pattern node with equal bounds share one BFS.
    versions: Dict[PNode, int] = {u: 0 for u in sim}
    cones: Dict[Tuple[PNode, object], Tuple[int, Set[int]]] = {}
    # Edge evaluations aggregate locally; one registry write per run.
    evaluations = 0
    shrinks = 0
    while queue:
        edge = queue.popleft()
        queued.discard(edge)
        evaluations += 1
        u, u1 = edge
        bound = pattern.bound(edge)
        key = (u1, bound)
        cached = cones.get(key)
        if cached is not None and cached[0] == versions[u1]:
            allowed = cached[1]
        else:
            if bound is ANY:
                allowed = graph.reverse_reachable_ids(sim[u1])
            else:
                allowed = graph.reverse_within_ids(sim[u1], bound)
            cones[key] = (versions[u1], allowed)
        if not sim[u] <= allowed:
            sim[u] &= allowed
            shrinks += 1
            if not sim[u]:
                _meter_bounded(evaluations, shrinks)
                return None
            versions[u] += 1
            # sim(u) shrank: every edge *targeting* u sees a smaller
            # reverse cone and must be re-checked.
            for stale in pattern.in_edges(u):
                if stale not in queued:
                    queued.add(stale)
                    queue.append(stale)
    _meter_bounded(evaluations, shrinks)
    return sim


def compact_bounded_edge_matches(
    pattern,
    graph: CompactGraph,
    sim: Dict[PNode, Set[int]],
    with_distances: bool = False,
    cache: Optional[CompactBoundedDistanceCache] = None,
) -> Tuple[IdEdgeMatches, Optional[IdDistances]]:
    """Per-edge match sets in id space, grouped by source id.

    With ``with_distances=True`` the second component is the id-space
    distance index ``I(V)`` -- each materialized pair mapped to its
    actual shortest-path distance, minimized across view edges (the
    exact semantics of the node-key index, so the BMatchJoin fast path
    filters identically to the dict path).  ``None`` otherwise.
    """
    cache = cache or CompactBoundedDistanceCache(graph)
    matches: IdEdgeMatches = {}
    index: Optional[IdDistances] = {} if with_distances else None
    for edge in pattern.edges():
        u, u1 = edge
        bound = pattern.bound(edge)
        targets = sim[u1]
        grouped: Dict[int, Set[int]] = {}
        for v in sim[u]:
            if bound is ANY:
                if index is not None:
                    # Distances for * edges are shortest-path hops: the
                    # full-depth BFS both enumerates the reachable set
                    # and carries the distances, so one traversal does.
                    dist = cache.descendants(v, graph.num_nodes)
                    witnesses = targets.intersection(dist)
                    if not witnesses:
                        continue
                    grouped[v] = witnesses
                    for w in witnesses:
                        key = (v, w)
                        d = dist[w]
                        previous = index.get(key)
                        if previous is None or d < previous:
                            index[key] = d
                    continue
                witnesses = cache.reachable(v) & targets
                if not witnesses:
                    continue
                grouped[v] = witnesses
            else:
                dist = cache.descendants(v, bound)
                witnesses = targets.intersection(dist)
                if not witnesses:
                    continue
                grouped[v] = witnesses
                if index is not None:
                    for w in witnesses:
                        key = (v, w)
                        d = dist[w]
                        previous = index.get(key)
                        if previous is None or d < previous:
                            index[key] = d
        matches[edge] = grouped
    return matches, index


def compact_bounded_match_with_ids(
    pattern, graph: CompactGraph, with_distances: bool = False
) -> Tuple[MatchResult, Optional[IdEdgeMatches], Optional[IdDistances]]:
    """Evaluate ``Qb`` on a snapshot; also return the id-space payload.

    The second and third components feed the compact extension payload
    bounded view materialization stores (``None`` on a failed match, and
    the distance index only with ``with_distances=True``).
    """
    sim = compact_maximum_bounded_simulation(pattern, graph)
    if sim is None:
        return MatchResult.empty(), None, None
    id_matches, index = compact_bounded_edge_matches(
        pattern, graph, sim, with_distances=with_distances
    )
    decode = graph.node_table.__getitem__
    node_matches = {u: set(map(decode, ids)) for u, ids in sim.items()}
    result = MatchResult(node_matches, decode_edge_matches(id_matches, graph))
    return result, id_matches, index


def compact_bounded_match(pattern, graph: CompactGraph) -> MatchResult:
    """Evaluate ``Qb`` on a snapshot via the id-space fast path."""
    result, _, _ = compact_bounded_match_with_ids(pattern, graph)
    return result
