"""Exception types raised by the public API."""

from __future__ import annotations

from typing import FrozenSet, Hashable, Tuple

PEdge = Tuple[Hashable, Hashable]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotContainedError(ReproError):
    """Raised when a query is asked to be answered using views that do
    not contain it (Theorem 1: containment is *necessary*)."""

    def __init__(self, uncovered: FrozenSet[PEdge]) -> None:
        self.uncovered = uncovered
        rendered = ", ".join(f"{a}->{b}" for a, b in sorted(uncovered, key=repr))
        super().__init__(
            f"query is not contained in the views; uncovered pattern "
            f"edges: {rendered}"
        )


class NotMaterializedError(ReproError):
    """Raised when MatchJoin needs an extension that was never built."""


class UnsupportedPatternError(ReproError):
    """Raised for pattern shapes outside the algorithms' contract, e.g.
    isolated pattern nodes in the view-based pipeline (view extensions
    store edges, so an edge-less node cannot be covered by any view)."""
