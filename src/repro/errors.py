"""Exception types raised by the public API."""

from __future__ import annotations

from typing import FrozenSet, Hashable, Tuple

PEdge = Tuple[Hashable, Hashable]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotContainedError(ReproError):
    """Raised when a query is asked to be answered using views that do
    not contain it (Theorem 1: containment is *necessary*)."""

    def __init__(self, uncovered: FrozenSet[PEdge]) -> None:
        self.uncovered = uncovered
        rendered = ", ".join(f"{a}->{b}" for a, b in sorted(uncovered, key=repr))
        super().__init__(
            f"query is not contained in the views; uncovered pattern "
            f"edges: {rendered}"
        )


class NotMaterializedError(ReproError):
    """Raised when MatchJoin needs an extension that was never built."""


class ServerOverloadedError(ReproError):
    """Raised by the serving layer when admission control sheds a
    request: the bounded wait queue is full.  Retriable by contract --
    the request was rejected *before* any work happened, so clients
    should back off and resend."""

    #: Always ``True``; clients may retry after backing off.
    retriable = True


class ServerClosedError(ReproError):
    """Raised by the serving layer for requests submitted after
    shutdown began (or before :meth:`~repro.serve.QueryServer.start`).
    Not retriable against this server instance."""

    retriable = False


class UnsupportedPatternError(ReproError):
    """Raised for pattern shapes outside the algorithms' contract, e.g.
    isolated pattern nodes in the view-based pipeline (view extensions
    store edges, so an edge-less node cannot be covered by any view)."""
