"""Sharded graph backend: partitioning, partial-evaluation matching and
parallel view materialization.

This subpackage reproduces, in-process, the distributed setting the
paper assumes around its algorithms (graphs too large for one machine,
views cached so queries never touch ``G``):

* :mod:`~repro.shard.partitioner` -- pluggable edge-cut strategies
  (``hash``, ``label``, ``bfs``) producing a :class:`Partition` with
  per-shard node sets and the cross-shard boundary table, plus
  :class:`StreamingHashPartitioner`, the spill-to-disk variant the
  out-of-core ingest pipeline uses to place edges without ever holding
  the edge set in memory;
* :mod:`~repro.shard.sharded` -- :class:`ShardedGraph`: per-shard
  frozen :class:`~repro.graph.compact.CompactGraph` snapshots plus
  cross-shard tables, a ``DataGraph``-compatible read API, and a
  composite integer-id space with its own snapshot token;
* :mod:`~repro.shard.psim` -- partial-evaluation maximum simulation:
  shard-local compact fixpoints under boundary assumptions, a
  coordinator exchanging invalidated boundary matches until the global
  fixpoint (equal to single-machine ``maximum_simulation``);
* :mod:`~repro.shard.materialize` -- per-shard parallel view
  materialization whose merged extensions carry the composite token,
  so the id-space MatchJoin fast path engages unchanged.
"""

from repro.shard.partitioner import (
    PARTITIONERS,
    Partition,
    StreamingHashPartitioner,
    make_partition,
)
from repro.shard.psim import (
    PSimStats,
    SHARD_EXECUTORS,
    ShardRunner,
    partial_max_simulation,
    sharded_match,
    sharded_match_with_ids,
)
from repro.shard.materialize import materialize_view, parallel_materialize
from repro.shard.sharded import ShardedGraph

__all__ = [
    "PARTITIONERS",
    "PSimStats",
    "Partition",
    "SHARD_EXECUTORS",
    "ShardRunner",
    "ShardedGraph",
    "StreamingHashPartitioner",
    "make_partition",
    "materialize_view",
    "parallel_materialize",
    "partial_max_simulation",
    "sharded_match",
    "sharded_match_with_ids",
]
