"""The sharded graph backend: per-shard snapshots + cross-shard tables.

A :class:`ShardedGraph` is the in-process reproduction of a fragmented
graph deployment: the node set is split by a
:class:`~repro.shard.partitioner.Partition`, and each shard holds a
frozen :class:`~repro.graph.compact.CompactGraph` snapshot of

* its own nodes (labels, attributes, and their **complete**
  out-adjacency), and
* *ghost* copies of the foreign nodes its out-edges reach -- label and
  attribute data only, no out-edges of their own.

Because every node's full out-adjacency lives in exactly one shard, a
shard-local simulation fixpoint is exact up to the match status of its
ghosts; :mod:`repro.shard.psim` exploits this for partial-evaluation
matching, and :mod:`repro.shard.materialize` for per-shard parallel
view materialization.

Like :class:`CompactGraph`, a sharded graph is an immutable snapshot
with the full ``DataGraph``-compatible read API over original node
keys, so every generic engine (dual, strong, bounded, distance oracles)
runs on it unchanged.  It also mints a **composite id space**: every
owned node gets a dense global id (shard-major order), and each
shard carries a row translating its local snapshot ids -- ghosts
included -- to global ids.  The composite ``snapshot_token`` /
``node_table`` make merged extensions indistinguishable from
single-snapshot ones, so the MatchJoin id-space fast path engages
unchanged on views materialized shard-parallel.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.graph.compact import CompactGraph, _new_token
from repro.graph.digraph import DataGraph
from repro.shard.partitioner import Partition, make_partition

Node = Hashable
Edge = Tuple[Node, Node]


def _is_shared(snapshot) -> bool:
    """Whether a shard snapshot is a shared-memory flat snapshot."""
    from repro.graph.flatbuf import SharedCompactGraph

    return isinstance(snapshot, SharedCompactGraph)


class ShardedGraph:
    """An immutable, partition-aligned snapshot of a :class:`DataGraph`.

    Parameters
    ----------
    graph:
        The source graph ``G``; read once at construction (like
        ``freeze()``, the sharded snapshot does not follow later
        mutations).
    partition:
        A :class:`Partition` of ``graph``, or ``None`` to hash-partition
        into ``num_shards`` shards here.
    num_shards / strategy:
        Used only when ``partition`` is ``None``.
    """

    __slots__ = (
        "partition",
        "_shards",
        "_own_counts",
        "_offsets",
        "_home",
        "_node_table",
        "_global_rows",
        "_ghost_ids",
        "_ghost_shards",
        "_bridges",
        "_cross_pred",
        "_label_nodes",
        "_num_edges",
        "snapshot_version",
        "snapshot_token",
        "extends_token",
    )

    def __init__(
        self,
        graph: DataGraph,
        partition: Optional[Partition] = None,
        num_shards: int = 2,
        strategy: str = "hash",
    ) -> None:
        if partition is None:
            partition = make_partition(graph, num_shards, strategy)
        self.partition = partition
        k = partition.num_shards

        # Per-shard local graphs: own nodes first (so local ids
        # 0..own-1 are internal), then ghosts picking up label/attr
        # copies; edges are the full out-adjacency of own nodes.
        locals_: List[DataGraph] = []
        for i in range(k):
            local = DataGraph()
            for node in partition.nodes_of(i):
                local.add_node(node, labels=graph.labels(node), attrs=graph.attrs(node))
            for node in partition.nodes_of(i):
                for target in graph.successors(node):
                    local.add_edge(node, target)
            for ghost in partition.ghosts_of(i):
                local.add_node(
                    ghost, labels=graph.labels(ghost), attrs=graph.attrs(ghost)
                )
            locals_.append(local)
        self._shards: Tuple[CompactGraph, ...] = tuple(
            local.freeze() for local in locals_
        )
        self._own_counts: Tuple[int, ...] = tuple(
            len(partition.nodes_of(i)) for i in range(k)
        )

        # Composite id space: global id = offset of home shard + local
        # id there (own nodes precede ghosts, so this is dense).
        offsets: List[int] = []
        total = 0
        for count in self._own_counts:
            offsets.append(total)
            total += count
        self._offsets: Tuple[int, ...] = tuple(offsets)
        self._home: Dict[Node, int] = partition.assignment
        node_table: List[Node] = []
        for i in range(k):
            node_table.extend(partition.nodes_of(i))
        self._node_table = node_table

        # Per-shard translation rows local id -> global id, defined for
        # ghosts too (a ghost's global id is its home shard's).
        global_rows: List[List[int]] = []
        ghost_ids: List[Dict[Node, int]] = []
        for i, snapshot in enumerate(self._shards):
            row: List[int] = []
            ghosts: Dict[Node, int] = {}
            own = self._own_counts[i]
            for local_id in range(snapshot.num_nodes):
                node = snapshot.node_of(local_id)
                home = self._home[node]
                row.append(self._offsets[home] + self._shards[home].id_of(node))
                if local_id >= own:
                    ghosts[node] = local_id
            global_rows.append(row)
            ghost_ids.append(ghosts)
        self._global_rows: Tuple[List[int], ...] = tuple(global_rows)
        self._ghost_ids: Tuple[Dict[Node, int], ...] = tuple(ghost_ids)

        # Reverse boundary tables: which shards hold a ghost of each
        # boundary node (the coordinator's re-run fanout), and the
        # cross-shard predecessors the home shard cannot see.
        ghost_shards: Dict[Node, List[int]] = {}
        for i, ghosts in enumerate(self._ghost_ids):
            for node in ghosts:
                ghost_shards.setdefault(node, []).append(i)
        self._ghost_shards: Dict[Node, Tuple[int, ...]] = {
            node: tuple(shards) for node, shards in ghost_shards.items()
        }
        # Boundary bridges: for each owner shard, one entry per holder
        # shard that ghosts any of its nodes -- the owner-local ids
        # exported there (as a frozenset, so the coordinator can
        # intersect a removal batch in one C call) plus the owner-local
        # -> holder-ghost id translation.  This is the exchange step's
        # hot path, so the whole indirection chain (node key, holder
        # list, holder's ghost id) is pre-resolved here.
        bridges: List[List[Tuple[int, FrozenSet[int], Dict[int, int]]]] = [
            [] for _ in range(k)
        ]
        for holder, ghosts in enumerate(self._ghost_ids):
            per_owner: Dict[int, Dict[int, int]] = {}
            for node, ghost_id in ghosts.items():
                owner = self._home[node]
                per_owner.setdefault(owner, {})[
                    self._shards[owner].id_of(node)
                ] = ghost_id
            for owner, mapping in per_owner.items():
                bridges[owner].append((holder, frozenset(mapping), mapping))
        self._bridges: Tuple[
            Tuple[Tuple[int, FrozenSet[int], Dict[int, int]], ...], ...
        ] = tuple(tuple(entries) for entries in bridges)
        cross_pred: Dict[Node, set] = {}
        for source, target in partition.cross_edges:
            cross_pred.setdefault(target, set()).add(source)
        self._cross_pred: Dict[Node, FrozenSet[Node]] = {
            node: frozenset(sources) for node, sources in cross_pred.items()
        }

        # Composite label index over owned nodes (shard ghosts would
        # double-count).
        label_nodes: Dict[str, List[Node]] = {}
        for node in node_table:
            for label in graph.labels(node):
                label_nodes.setdefault(label, []).append(node)
        self._label_nodes: Dict[str, Tuple[Node, ...]] = {
            label: tuple(nodes) for label, nodes in label_nodes.items()
        }

        self._num_edges = graph.num_edges
        self.snapshot_version = graph.version
        self.snapshot_token = _new_token()
        self.extends_token = None

    # ------------------------------------------------------------------
    # Delta refresh
    # ------------------------------------------------------------------
    def refreshed(self, graph: DataGraph, ops) -> "ShardedGraph":
        """A new sharded snapshot of ``graph`` built by patching this one.

        ``ops`` is the ordered edge-op batch (``(op, source, target)``
        triples, e.g. from
        :meth:`~repro.graph.digraph.DataGraph.edge_changes_since`)
        separating this snapshot from the current graph state; the
        caller guarantees the only other changes are brand-new nodes.

        Each op is routed to the shard *owning* its source (out-
        adjacency lives with the owner), and only those shards' frozen
        snapshots are rebuilt -- every other shard's
        :class:`CompactGraph` is reused by reference.  New nodes are
        assigned to the last shard, whose own nodes sit at the top of
        the composite id space, so **every pre-existing node keeps its
        composite global id**; the boundary tables (ghosts, bridges,
        cross-predecessors) are re-derived from the updated cut.  The
        result mints a fresh composite ``snapshot_token`` and records
        this snapshot's token in :attr:`extends_token`, so extensions
        of views an update did not touch can be re-stamped onto it and
        MatchJoin's id-space path re-engages immediately.
        """
        old_partition = self.partition
        k = old_partition.num_shards
        new_nodes = [node for node in graph.nodes() if node not in self._home]

        # --- partition bookkeeping -----------------------------------
        assignment = dict(old_partition.assignment)
        for node in new_nodes:
            assignment[node] = k - 1
        shards = list(old_partition._shards)
        if new_nodes:
            shards[k - 1] = shards[k - 1] + new_nodes
        # Net effect per edge (an edge may be deleted and re-inserted
        # within one batch; only its final state matters for the cut).
        final: Dict[Edge, str] = {}
        for op, source, target in ops:
            final[(source, target)] = op
        cross = [edge for edge in old_partition._cross if edge not in final]
        for edge, op in final.items():
            if op == "insert" and assignment[edge[0]] != assignment[edge[1]]:
                cross.append(edge)
        affected = {assignment[source] for _, source, _ in ops}
        if new_nodes:
            affected.add(k - 1)
        ghosts = list(old_partition._ghosts)
        for index in affected:
            ghosts[index] = frozenset(
                target
                for source, target in cross
                if assignment[source] == index
            )
        partition = Partition.__new__(Partition)
        partition.strategy = old_partition.strategy
        partition.num_shards = k
        partition._assignment = assignment
        partition._shards = shards
        partition._cross = tuple(cross)
        partition._ghosts = tuple(ghosts)
        partition._internal_edges = graph.num_edges - len(cross)
        partition._num_edges = graph.num_edges

        # --- per-shard snapshots: rebuild affected, reuse the rest ----
        new = ShardedGraph.__new__(ShardedGraph)
        new.partition = partition
        shard_snapshots = list(self._shards)
        for index in sorted(affected):
            local = DataGraph()
            for node in partition.nodes_of(index):
                local.add_node(
                    node, labels=graph.labels(node), attrs=graph.attrs(node)
                )
            for node in partition.nodes_of(index):
                for target in graph.successors(node):
                    local.add_edge(node, target)
            for ghost in partition.ghosts_of(index):
                local.add_node(
                    ghost, labels=graph.labels(ghost), attrs=graph.attrs(ghost)
                )
            rebuilt = local.freeze()
            if _is_shared(self._shards[index]):
                from repro.graph.flatbuf import SharedCompactGraph

                rebuilt = SharedCompactGraph.share(rebuilt)
            shard_snapshots[index] = rebuilt
        new._shards = tuple(shard_snapshots)
        new._own_counts = tuple(len(partition.nodes_of(i)) for i in range(k))

        # Only the last shard can have grown, so every offset -- and
        # with it every pre-existing composite id -- is unchanged.
        offsets: List[int] = []
        total = 0
        for count in new._own_counts:
            offsets.append(total)
            total += count
        new._offsets = tuple(offsets)
        new._home = assignment
        new._node_table = (
            self._node_table + new_nodes if new_nodes else self._node_table
        )

        global_rows = list(self._global_rows)
        ghost_ids = list(self._ghost_ids)
        for index in sorted(affected):
            snapshot = shard_snapshots[index]
            row: List[int] = []
            ghosts_of_shard: Dict[Node, int] = {}
            own = new._own_counts[index]
            for local_id in range(snapshot.num_nodes):
                node = snapshot.node_of(local_id)
                home = assignment[node]
                row.append(offsets[home] + shard_snapshots[home].id_of(node))
                if local_id >= own:
                    ghosts_of_shard[node] = local_id
            global_rows[index] = row
            ghost_ids[index] = ghosts_of_shard
        new._global_rows = tuple(global_rows)
        new._ghost_ids = tuple(ghost_ids)

        # Boundary tables are O(cut): re-derive them wholesale.
        ghost_shards: Dict[Node, List[int]] = {}
        for index, ghosts_of_shard in enumerate(new._ghost_ids):
            for node in ghosts_of_shard:
                ghost_shards.setdefault(node, []).append(index)
        new._ghost_shards = {
            node: tuple(holders) for node, holders in ghost_shards.items()
        }
        bridges: List[List[Tuple[int, FrozenSet[int], Dict[int, int]]]] = [
            [] for _ in range(k)
        ]
        for holder, ghosts_of_shard in enumerate(new._ghost_ids):
            per_owner: Dict[int, Dict[int, int]] = {}
            for node, ghost_id in ghosts_of_shard.items():
                owner = assignment[node]
                per_owner.setdefault(owner, {})[
                    shard_snapshots[owner].id_of(node)
                ] = ghost_id
            for owner, mapping in per_owner.items():
                bridges[owner].append((holder, frozenset(mapping), mapping))
        new._bridges = tuple(tuple(entries) for entries in bridges)
        cross_pred: Dict[Node, set] = {}
        for source, target in partition.cross_edges:
            cross_pred.setdefault(target, set()).add(source)
        new._cross_pred = {
            node: frozenset(sources) for node, sources in cross_pred.items()
        }

        labeled_new = [node for node in new_nodes if graph.labels(node)]
        if labeled_new:
            label_nodes = dict(self._label_nodes)
            for node in labeled_new:
                for label in graph.labels(node):
                    label_nodes[label] = label_nodes.get(label, ()) + (node,)
            new._label_nodes = label_nodes
        else:
            new._label_nodes = self._label_nodes

        new._num_edges = graph.num_edges
        new.snapshot_version = graph.version
        new.snapshot_token = _new_token()
        new.extends_token = self.snapshot_token
        return new

    def share(self) -> "ShardedGraph":
        """Freeze every shard into a shared-memory flat snapshot.

        In place and idempotent.  Each per-shard
        :class:`~repro.graph.compact.CompactGraph` is upgraded to a
        :class:`~repro.graph.flatbuf.SharedCompactGraph` (same token,
        same version, identical in-process behavior), so pickling the
        sharded graph ships per-shard segment handles instead of
        adjacency copies -- workers in a shard pool attach.  The
        composite bookkeeping (boundary tables, translation rows) still
        pickles by value; shard adjacency is the bulk.  Sharedness
        survives :meth:`refreshed` (rebuilt shards are re-shared).
        """
        from repro.graph.flatbuf import SharedCompactGraph

        self._shards = tuple(
            shard
            if isinstance(shard, SharedCompactGraph)
            else SharedCompactGraph.share(shard)
            for shard in self._shards
        )
        return self

    # ------------------------------------------------------------------
    # Shard access (what psim / materialize drive)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    @property
    def shards(self) -> Tuple[CompactGraph, ...]:
        """The per-shard frozen snapshots (own nodes + ghosts)."""
        return self._shards

    def shard(self, index: int) -> CompactGraph:
        return self._shards[index]

    def own_count(self, index: int) -> int:
        """Number of *owned* (non-ghost) nodes in shard ``index``; local
        ids below this are internal, at or above are ghosts."""
        return self._own_counts[index]

    def ghost_ids(self, index: int) -> Dict[Node, int]:
        """Shard ``index``'s ghosts as ``{node key: local id}``."""
        return self._ghost_ids[index]

    def ghost_shards(self, node: Node) -> Tuple[int, ...]:
        """The shards holding a ghost copy of ``node`` (may be empty)."""
        return self._ghost_shards.get(node, ())

    def bridges(
        self, index: int
    ) -> Tuple[Tuple[int, FrozenSet[int], Dict[int, int]], ...]:
        """Shard ``index``'s boundary bridges: one ``(holder shard,
        exported owner-local ids, owner-local -> ghost id map)`` per
        shard ghosting any of its nodes."""
        return self._bridges[index]

    def global_row(self, index: int) -> List[int]:
        """Shard ``index``'s local id -> composite global id table."""
        return self._global_rows[index]

    def owner_id(self, node: Node) -> Tuple[int, int]:
        """``(home shard, local id there)`` of an owned node."""
        home = self._home[node]
        return home, self._shards[home].id_of(node)

    @property
    def boundary_nodes(self) -> FrozenSet[Node]:
        """Nodes ghosted into at least one foreign shard."""
        return self.partition.boundary_nodes

    # ------------------------------------------------------------------
    # Composite id space (what CompactExtension consumes)
    # ------------------------------------------------------------------
    def id_of(self, node: Node) -> int:
        """The composite global id of ``node`` (KeyError if absent)."""
        home = self._home[node]
        return self._offsets[home] + self._shards[home].id_of(node)

    def node_of(self, i: int) -> Node:
        """The original node key behind global id ``i``."""
        return self._node_table[i]

    @property
    def node_table(self) -> List[Node]:
        """The global id -> node key decode table (shared, do not
        mutate); shard-major, so ids are dense across shards."""
        return self._node_table

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def freeze(self) -> "ShardedGraph":
        """Sharded snapshots are already frozen; return ``self``."""
        return self

    @property
    def version(self) -> int:
        """Mutation-counter alias (see ``CompactGraph.version``): lets a
        reloaded sharded snapshot stand in for a live graph."""
        return self.snapshot_version

    # ------------------------------------------------------------------
    # DataGraph-compatible read API (original node keys)
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._home

    def __len__(self) -> int:
        return len(self._node_table)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._node_table)

    @property
    def num_nodes(self) -> int:
        return len(self._node_table)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper: total number of nodes and edges."""
        return self.num_nodes + self._num_edges

    def nodes(self) -> Iterator[Node]:
        return iter(self._node_table)

    def edges(self) -> Iterator[Edge]:
        for i, snapshot in enumerate(self._shards):
            for local_id in range(self._own_counts[i]):
                source = snapshot.node_of(local_id)
                for j in snapshot.out_ids(local_id):
                    yield (source, snapshot.node_of(j))

    def has_edge(self, source: Node, target: Node) -> bool:
        home = self._home.get(source)
        if home is None:
            return False
        return self._shards[home].has_edge(source, target)

    def successors(self, node: Node) -> FrozenSet[Node]:
        # The home shard stores the full out-adjacency (ghost targets
        # keep their original keys), so this is one delegated lookup.
        return self._shards[self._home[node]].successors(node)

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        # In-adjacency is split: internal predecessors live in the home
        # shard, cross-shard ones in the boundary table.
        local = self._shards[self._home[node]].predecessors(node)
        cross = self._cross_pred.get(node)
        return local if cross is None else local | cross

    def out_degree(self, node: Node) -> int:
        return self._shards[self._home[node]].out_degree(node)

    def in_degree(self, node: Node) -> int:
        return len(self.predecessors(node))

    def labels(self, node: Node) -> FrozenSet[str]:
        return self._shards[self._home[node]].labels(node)

    def attrs(self, node: Node) -> Dict[str, Any]:
        return self._shards[self._home[node]].attrs(node)

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield all nodes carrying ``label`` (composite index lookup)."""
        return iter(self._label_nodes.get(label, ()))

    def label_index_stats(self) -> Dict[str, int]:
        """``{label: bucket size}`` over owned nodes."""
        return {label: len(nodes) for label, nodes in self._label_nodes.items()}

    # ------------------------------------------------------------------
    # Traversal helpers (same contract as DataGraph)
    # ------------------------------------------------------------------
    def descendants_within_ids(self, global_id: int, bound: int) -> Dict[int, int]:
        """``{composite global id: distance}`` for nonempty paths of
        length in ``[1, bound]`` from global id ``global_id``.

        Per-shard bounded BFS with **ghost-distance stitching**: each
        level expands over the CSR rows of the shard that *owns* the
        frontier node (the owner holds its complete out-adjacency), and
        reached ids translate through the per-shard global-id rows, so
        a path crossing a shard boundary continues in the target's home
        shard at the correct distance.  Ghost copies are never expanded
        (they carry no out-edges); their global ids already point at
        the owner's coordinates.
        """
        if bound < 1:
            return {}
        offsets = self._offsets
        shards = self._shards
        rows = self._global_rows
        home = bisect_right(offsets, global_id) - 1
        dist: Dict[int, int] = {}
        # Expansion frontier as (home shard, local id) pairs -- always
        # owner coordinates, so out_ids() sees the full out-adjacency.
        frontier: List[Tuple[int, int]] = [(home, global_id - offsets[home])]
        depth = 1
        while frontier:
            reached: set = set()
            for shard, local in frontier:
                row = rows[shard]
                for j in shards[shard].out_ids(local):
                    reached.add(row[j])
            reached.difference_update(dist)
            for g in reached:
                dist[g] = depth
            if depth >= bound:
                break
            frontier = [
                (s, g - offsets[s])
                for g in reached
                for s in (bisect_right(offsets, g) - 1,)
            ]
            depth += 1
        return dist

    def descendants_within(self, source: Node, bound: int) -> Dict[Node, int]:
        """Map each node reachable from ``source`` by a path of length in
        ``[1, bound]`` to its shortest such distance (per-shard BFS with
        ghost-distance stitching, see :meth:`descendants_within_ids`)."""
        table = self._node_table
        return {
            table[g]: d
            for g, d in self.descendants_within_ids(
                self.id_of(source), bound
            ).items()
        }

    def __repr__(self) -> str:
        return (
            f"ShardedGraph(shards={self.num_shards}, nodes={self.num_nodes}, "
            f"edges={self._num_edges}, cut={self.partition.edge_cut}, "
            f"snapshot={self.snapshot_version})"
        )
