"""Edge-cut graph partitioning for the sharded backend.

A :class:`Partition` splits the node set of a data graph into ``k``
shards and records the *boundary table*: every cross-shard edge, plus
the per-shard set of foreign nodes its out-edges reach (the shard's
"ghosts").  This is the fragmentation underlying partial-evaluation
graph simulation (conf_icde_FanWW14 Sections III and VII assume views
and graphs too large for one machine): each shard must own the *full
out-adjacency* of its nodes, so a shard-local fixpoint only ever lacks
knowledge about the match status of its ghosts -- exactly the
assumptions the coordinator in :mod:`repro.shard.psim` refines.

Three pluggable strategies are provided (:data:`PARTITIONERS`):

* ``hash`` -- stable-hash assignment; balanced, oblivious to structure,
  the baseline every partitioning paper compares against;
* ``label`` -- label-aware: nodes sharing a primary label are packed
  into as few shards as balance allows, so candidate buckets of plain
  label conditions tend to be shard-local and boundary assumptions stay
  small for label-homogeneous patterns;
* ``bfs`` -- BFS block growing: contiguous neighborhoods go to the same
  shard, minimizing the edge cut on graphs with locality.

Strategies only produce the ``node -> shard`` assignment; everything
else (cut edges, ghosts, balance accounting) is derived uniformly by
:class:`Partition`, so custom strategies are one function away.
"""

from __future__ import annotations

import logging
import os
import zlib
from collections import deque
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Hashable, Iterator, List, Optional, Tuple, Union

log = logging.getLogger(__name__)

Node = Hashable
Edge = Tuple[Node, Node]

Assignment = Dict[Node, int]


def _stable_hash(node: Node) -> int:
    """A process-independent hash (``hash(str)`` is salted per process,
    and a pickled :class:`~repro.shard.sharded.ShardedGraph` must agree
    with its origin about node placement)."""
    return zlib.crc32(repr(node).encode("utf-8"))


def hash_partition(graph, num_shards: int) -> Assignment:
    """Assign each node by stable hash: balanced in expectation, zero
    structural awareness (the maximum-cut baseline)."""
    return {node: _stable_hash(node) % num_shards for node in graph.nodes()}


def label_partition(graph, num_shards: int) -> Assignment:
    """Pack same-label nodes together, subject to a balance capacity.

    Nodes are bucketed by their lexicographically smallest label (the
    "primary" label; unlabeled nodes share one bucket).  Buckets are
    placed largest-first onto the least-filled shard, splitting only
    when a bucket exceeds the shard's remaining capacity
    ``ceil(|V| / k)`` -- so label buckets fragment across at most a few
    shards and balance stays within one capacity of perfect.
    """
    buckets: Dict[str, List[Node]] = {}
    for node in graph.nodes():
        labels = graph.labels(node)
        buckets.setdefault(min(labels) if labels else "", []).append(node)
    capacity = -(-len(graph) // num_shards) if len(graph) else 1
    fills = [0] * num_shards
    assignment: Assignment = {}
    for _, nodes in sorted(buckets.items(), key=lambda kv: (-len(kv[1]), kv[0])):
        index = 0
        while index < len(nodes):
            shard = min(range(num_shards), key=fills.__getitem__)
            room = capacity - fills[shard]
            take = len(nodes) - index if room <= 0 else min(room, len(nodes) - index)
            for node in nodes[index : index + take]:
                assignment[node] = shard
            fills[shard] += take
            index += take
    return assignment


def bfs_partition(graph, num_shards: int) -> Assignment:
    """Grow each shard as its own undirected BFS region of up to
    ``ceil(|V| / k)`` nodes.

    Every shard starts from a *fresh* seed (the first unassigned node
    in graph order) and swallows its neighborhood breadth-first until
    the block is full; the leftover frontier is then discarded, so one
    region's periphery never smears across the remaining shards (a
    single global BFS would, once its frontier spans several clusters).
    The last shard absorbs whatever remains.  Keeps contiguous regions
    co-located, which minimizes the edge cut on graphs with locality.
    """
    block = -(-len(graph) // num_shards) if len(graph) else 1
    assignment: Assignment = {}
    seeds = iter(list(graph.nodes()))
    for shard in range(num_shards):
        fill = 0
        frontier: deque = deque()
        capacity = block if shard < num_shards - 1 else len(graph)
        while fill < capacity:
            if not frontier:
                seed = next(
                    (node for node in seeds if node not in assignment), None
                )
                if seed is None:
                    break
                frontier.append(seed)
            node = frontier.popleft()
            if node in assignment:
                continue
            assignment[node] = shard
            fill += 1
            for neighbor in sorted(graph.successors(node), key=repr):
                if neighbor not in assignment:
                    frontier.append(neighbor)
            for neighbor in sorted(graph.predecessors(node), key=repr):
                if neighbor not in assignment:
                    frontier.append(neighbor)
    return assignment


#: Pluggable edge-cut strategies, keyed by CLI / engine name.
PARTITIONERS: Dict[str, Callable[[object, int], Assignment]] = {
    "hash": hash_partition,
    "label": label_partition,
    "bfs": bfs_partition,
}


class Partition:
    """A ``k``-way node split of one data graph, with its boundary table.

    Build one with :func:`make_partition`.  Everything is derived from
    the assignment against the graph *at construction time*; a
    partition does not follow later graph mutations (pair it with a
    frozen snapshot or rebuild, exactly like ``freeze()``).

    Attributes
    ----------
    strategy / num_shards:
        The producing strategy name and the shard count ``k``.
    """

    __slots__ = (
        "strategy",
        "num_shards",
        "_assignment",
        "_shards",
        "_cross",
        "_ghosts",
        "_internal_edges",
        "_num_edges",
    )

    def __init__(self, graph, assignment: Assignment, num_shards: int, strategy: str) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.strategy = strategy
        self.num_shards = num_shards
        self._assignment = assignment
        shards: List[List[Node]] = [[] for _ in range(num_shards)]
        for node in graph.nodes():
            shards[assignment[node]].append(node)
        self._shards = shards
        cross: List[Edge] = []
        ghosts: List[set] = [set() for _ in range(num_shards)]
        internal = 0
        for source, target in graph.edges():
            home = assignment[source]
            if assignment[target] == home:
                internal += 1
            else:
                cross.append((source, target))
                ghosts[home].add(target)
        self._cross = tuple(cross)
        self._ghosts: Tuple[FrozenSet[Node], ...] = tuple(
            frozenset(g) for g in ghosts
        )
        self._internal_edges = internal
        self._num_edges = graph.num_edges

    # ------------------------------------------------------------------
    # Assignment lookups
    # ------------------------------------------------------------------
    def shard_of(self, node: Node) -> int:
        """The shard owning ``node`` (KeyError if unassigned)."""
        return self._assignment[node]

    @property
    def assignment(self) -> Assignment:
        """The full ``node -> shard`` map (shared, do not mutate)."""
        return self._assignment

    def nodes_of(self, shard: int) -> List[Node]:
        """The nodes owned by ``shard``, in graph order (shared list)."""
        return self._shards[shard]

    def ghosts_of(self, shard: int) -> FrozenSet[Node]:
        """Foreign nodes that ``shard``'s out-edges reach (its ghosts)."""
        return self._ghosts[shard]

    # ------------------------------------------------------------------
    # Cut quality
    # ------------------------------------------------------------------
    @property
    def cross_edges(self) -> Tuple[Edge, ...]:
        """Every edge whose endpoints live in different shards."""
        return self._cross

    @property
    def edge_cut(self) -> int:
        """Number of cross-shard edges."""
        return len(self._cross)

    @property
    def edge_cut_fraction(self) -> float:
        """``cut / |E|`` -- the classic partition quality measure."""
        return len(self._cross) / self._num_edges if self._num_edges else 0.0

    @property
    def shard_sizes(self) -> List[int]:
        """Node count per shard."""
        return [len(nodes) for nodes in self._shards]

    @property
    def boundary_nodes(self) -> FrozenSet[Node]:
        """All nodes that are a ghost of at least one shard -- the nodes
        whose match status the partial-evaluation coordinator tracks."""
        return frozenset().union(*self._ghosts) if self._ghosts else frozenset()

    @property
    def balance(self) -> float:
        """``max shard size / ideal size`` (1.0 is perfect; 0 when empty)."""
        sizes = self.shard_sizes
        total = sum(sizes)
        if not total:
            return 0.0
        return max(sizes) / (total / self.num_shards)

    def stats(self) -> Dict[str, object]:
        """A JSON-ready summary (the ``repro shard`` / ``repro stats``
        payload)."""
        return {
            "strategy": self.strategy,
            "shards": self.num_shards,
            "sizes": self.shard_sizes,
            "edge_cut": self.edge_cut,
            "edge_cut_fraction": self.edge_cut_fraction,
            "boundary_nodes": len(self.boundary_nodes),
            "balance": self.balance,
        }

    def __repr__(self) -> str:
        return (
            f"Partition({self.strategy!r}, shards={self.num_shards}, "
            f"cut={self.edge_cut}/{self._num_edges})"
        )


def make_partition(graph, num_shards: int, strategy: str = "hash") -> Partition:
    """Partition ``graph`` into ``num_shards`` shards.

    ``strategy`` names an entry of :data:`PARTITIONERS`.  Every node is
    assigned to exactly one shard; shards may be empty when
    ``num_shards`` exceeds what the strategy can fill.
    """
    if strategy not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {strategy!r}; expected one of "
            f"{sorted(PARTITIONERS)}"
        )
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    assignment = PARTITIONERS[strategy](graph, num_shards)
    partition = Partition(graph, assignment, num_shards, strategy)
    log.debug(
        "%s partition: %d shards, %d/%d edges cut (%.1f%%)",
        strategy, num_shards, partition.edge_cut, graph.num_edges,
        partition.edge_cut_fraction * 100,
    )
    return partition


# ----------------------------------------------------------------------
# Streaming (out-of-core) partitioning
# ----------------------------------------------------------------------
class StreamingHashPartitioner:
    """Hash-partition an edge *stream* into per-shard spill files.

    The in-memory partitioners above need the whole graph; this one
    never does.  Edges arrive one at a time via :meth:`add`, are routed
    by the same stable hash as :func:`hash_partition` (so a streamed
    build places every node exactly where ``make_partition(...,
    "hash")`` would), and are appended to line-oriented spill files --
    one per shard -- under a byte budget: per-shard write buffers are
    flushed to disk whenever their combined size exceeds
    ``budget_bytes``, so resident memory stays flat no matter how many
    edges flow through.

    Three record kinds land in the spill files (tab-separated lines):

    * ``e <source> <target>`` -- an edge, spilled to the *source's* home
      shard (shards own the full out-adjacency of their nodes);
    * ``n <target>`` -- for a cross-shard edge only: tells the target's
      home shard the node exists even if it never appears as a source
      there (so isolated-in-their-shard targets are still owned);
    * a companion ``crosspred-NNN`` spill records ``<source> <target>``
      for every cross edge, grouped by the *target's* home shard -- the
      reverse-adjacency side the coordinator needs.

    Use as a context manager; iterate :meth:`shard_records` /
    :meth:`cross_preds` after all edges are added (both flush first).
    Node ids must be strings without tabs or newlines (edge-list inputs
    always satisfy this); anything else cannot be spilled losslessly.
    """

    def __init__(
        self,
        num_shards: int,
        spill_dir: Union[str, Path],
        budget_bytes: int = 64 << 20,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.budget_bytes = max(1, budget_bytes)
        self._dir = Path(spill_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._shard_paths = [
            self._dir / f"shard-{i:03d}.spill" for i in range(num_shards)
        ]
        self._cross_paths = [
            self._dir / f"crosspred-{i:03d}.spill" for i in range(num_shards)
        ]
        self._buffers: List[List[str]] = [[] for _ in range(num_shards)]
        self._cross_buffers: List[List[str]] = [[] for _ in range(num_shards)]
        self._buffered = 0
        self.edges = 0
        self.cut_edges = 0
        self.spill_bytes = 0
        self._closed = False

    # -- routing -------------------------------------------------------
    def shard_of(self, node: Node) -> int:
        """Home shard of ``node`` -- identical to ``hash`` strategy
        placement, so streamed and in-memory builds agree."""
        return _stable_hash(node) % self.num_shards

    @staticmethod
    def _check_key(node: str) -> str:
        if "\t" in node or "\n" in node or "\r" in node:
            raise ValueError(
                f"node id {node!r} contains a tab/newline; spill records "
                "are tab-separated lines and cannot hold it"
            )
        return node

    def add(self, source: str, target: str) -> None:
        """Route one edge to its spill files (flushing on budget)."""
        source = self._check_key(source)
        target = self._check_key(target)
        home = self.shard_of(source)
        record = f"e\t{source}\t{target}\n"
        self._buffers[home].append(record)
        self._buffered += len(record)
        self.edges += 1
        away = self.shard_of(target)
        if away != home:
            self.cut_edges += 1
            presence = f"n\t{target}\n"
            self._buffers[away].append(presence)
            crosspred = f"{source}\t{target}\n"
            self._cross_buffers[away].append(crosspred)
            self._buffered += len(presence) + len(crosspred)
        if self._buffered >= self.budget_bytes:
            self.flush()

    def add_edges(self, edges) -> None:
        """Consume an edge iterable (never materialized)."""
        for source, target in edges:
            self.add(source, target)

    # -- spilling ------------------------------------------------------
    def flush(self) -> None:
        """Append every buffer to its spill file and drop it."""
        for paths, buffers in (
            (self._shard_paths, self._buffers),
            (self._cross_paths, self._cross_buffers),
        ):
            for i, buffer in enumerate(buffers):
                if not buffer:
                    continue
                chunk = "".join(buffer)
                with open(paths[i], "a", encoding="utf-8") as handle:
                    handle.write(chunk)
                self.spill_bytes += len(chunk)
                buffers[i] = []
        self._buffered = 0

    def shard_records(self, shard: int) -> Iterator[Tuple[str, str, Optional[str]]]:
        """Stream shard ``shard``'s spill records as ``(kind, a, b)``
        tuples (``("e", source, target)`` or ``("n", node, None)``), in
        spill order."""
        self.flush()
        path = self._shard_paths[shard]
        if not path.exists():
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                parts = line.rstrip("\n").split("\t")
                if parts[0] == "e":
                    yield ("e", parts[1], parts[2])
                else:
                    yield ("n", parts[1], None)

    def cross_preds(self, shard: int) -> Iterator[Tuple[str, str]]:
        """Stream the cross-shard edges whose *target* lives in
        ``shard`` -- its foreign-predecessor table."""
        self.flush()
        path = self._cross_paths[shard]
        if not path.exists():
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                source, target = line.rstrip("\n").split("\t")
                yield (source, target)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Flush buffers and delete every spill file."""
        if self._closed:
            return
        self._buffers = [[] for _ in range(self.num_shards)]
        self._cross_buffers = [[] for _ in range(self.num_shards)]
        self._buffered = 0
        for path in (*self._shard_paths, *self._cross_paths):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._closed = True

    def __enter__(self) -> "StreamingHashPartitioner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StreamingHashPartitioner(shards={self.num_shards}, "
            f"edges={self.edges}, cut={self.cut_edges}, "
            f"spilled={self.spill_bytes}B)"
        )
