"""Partial-evaluation maximum simulation over a sharded graph.

This is the classic distributed-simulation recipe (the setting of
conf_icde_FanWW14 Section VII, where views are cached because ``G`` is
too large to touch per query), reproduced in-process:

1. **Local step** -- every shard runs the compact integer-id fixpoint
   (:func:`_local_fixpoint`, the same counter-based refinement as
   :mod:`repro.simulation.compact_engine`) over its own snapshot,
   treating ghost nodes as *assumptions*: a ghost is presumed to match
   a pattern node whenever the coordinator has not (yet) refuted it.
   Because a shard owns the full out-adjacency of its nodes, the local
   greatest fixpoint is exact relative to those assumptions.
2. **Exchange step** -- each local run reports the internal ids it
   pruned; the coordinator translates them through the boundary
   bridges into withdrawn assumptions for exactly the shards ghosting
   those nodes (each id leaves the shrinking simulation once, so every
   withdrawal is unique by construction).
3. **Iterate** -- withdrawn shards re-run *incrementally*: the
   withdrawal batch enters the same counter cascade as any removal, so
   a re-run costs the affected area, not the shard.  Assumptions only
   ever shrink, so the loop reaches a fixpoint in finitely many
   rounds; at that point local results glue into precisely the
   single-machine maximum simulation (the initial assumptions
   over-approximate the true boundary matches, and every removal is
   justified by a violated simulation condition, so the
   greatest-fixpoint invariant is preserved throughout).

Local steps within a round are independent, so they run serially, on a
thread pool, or on a process pool (:class:`ShardRunner`).  Shard state
is *worker-resident*: process mode pins each shard to a dedicated
worker (the sharded snapshot ships once per worker, mirroring
``repro.engine.executor``), and only withdrawal batches and removal
deltas cross the process boundary per round -- never the counters.
Results decode to original node keys -- or to the sharded graph's
composite global id space for the materialization path
(:mod:`repro.shard.materialize`).
"""

from __future__ import annotations

import logging
import os
import pickle
from bisect import bisect_left
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat
from time import perf_counter
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.engine.executor import ShipStats
from repro.graph.compact import CompactGraph
from repro.graph.conditions import AttributeCondition, Label
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.obs.trace import SpanRecord
from repro.shard.sharded import ShardedGraph
from repro.simulation.compact_engine import IdEdgeMatches, refine_batch
from repro.simulation.result import MatchResult

log = logging.getLogger(__name__)

PNode = Hashable
Node = Hashable
PEdge = Tuple[PNode, PNode]

#: Shard-local simulation: pattern node -> set of *internal* local ids.
LocalSim = Dict[PNode, Set[int]]


@dataclass
class PSimStats:
    """Telemetry of one partial-evaluation run."""

    shards: int = 0
    rounds: int = 0
    local_runs: int = 0
    invalidated: int = 0
    initial_assumptions: int = 0
    per_round_invalidated: List[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Shard-local evaluation (pure functions of one shard snapshot)
# ----------------------------------------------------------------------
def _seed_candidates(
    snapshot: CompactGraph, own: int, pattern
) -> Tuple[LocalSim, LocalSim]:
    """Seed one shard from its label index: ``(internal, ghosts)``.

    Internal candidates (ids below ``own``) are the shard's own
    refinable matches; ghost candidates become the shard's initial
    boundary *assumptions* -- optimistic supersets of the truth, since
    the same conditions seed the owner shard.  Unlike the
    single-machine engine, an empty set is *not* a failure: a pattern
    node's matches may all live in other shards.
    """
    sim: LocalSim = {}
    assume: LocalSim = {}
    for u in pattern.nodes():
        condition = pattern.condition(u)
        if isinstance(condition, Label):
            bucket = snapshot.label_ids(condition.name)
        elif isinstance(condition, AttributeCondition) and condition.label:
            bucket = [
                i
                for i in snapshot.label_ids(condition.label)
                if condition.matches(snapshot.labels_of(i), snapshot.attrs_of(i))
            ]
        else:
            bucket = [
                i
                for i in range(snapshot.num_nodes)
                if condition.matches(snapshot.labels_of(i), snapshot.attrs_of(i))
            ]
        # Buckets are ascending (label rows are built in id order), and
        # internal ids all precede ghost ids, so one bisect splits them.
        split = bisect_left(bucket, own)
        sim[u] = set(bucket[:split])
        assume[u] = set(bucket[split:])
    return sim, assume


class _ShardState:
    """One shard's persistent local fixpoint state for one pattern.

    Lives across coordinator rounds: ``sim`` (internal candidates) and
    ``assume`` (ghost assumptions) only shrink, ``full`` is their
    maintained union (every witness-counting target set), and
    ``counters`` keeps the lazily materialized witness counts -- so a
    re-run after withdrawn assumptions is a pure decrement cascade over
    the affected area, never a recount of the shard.  Serial and thread
    runners mutate the object in place; process runners round-trip it
    through pickling, which preserves exactly the same contents.
    """

    __slots__ = ("sim", "assume", "full", "counters")

    def __init__(
        self,
        sim: LocalSim,
        assume: Dict[PNode, Set[int]],
        counters: Dict[PEdge, Dict[int, int]],
    ) -> None:
        self.sim = sim
        self.assume = assume
        self.full: Dict[PNode, Set[int]] = {
            u: sim[u] | assume[u] for u in sim
        }
        self.counters = counters

    def __getstate__(self):
        return (self.sim, self.assume, self.full, self.counters)

    def __setstate__(self, state) -> None:
        self.sim, self.assume, self.full, self.counters = state


def _local_fixpoint(
    snapshot: CompactGraph,
    own: int,
    pattern,
    state: Optional[_ShardState],
    withdrawn: Optional[Dict[PNode, Set[int]]] = None,
) -> Tuple[_ShardState, LocalSim]:
    """The shard-local greatest fixpoint under boundary assumptions.

    ``state.assume[u]`` holds the ghost local ids currently presumed to
    match ``u``; they witness pattern edges like any candidate but are
    never refined here (their status is the coordinator's to decide).
    On the first run ``state`` is ``None``: candidates and assumptions
    get seeded from the label index and witness-less candidates are
    doomed by a full scan.  On re-runs the state carries the previous
    round's (shrinking) result and ``withdrawn`` the ghost ids the
    coordinator refuted since -- which are simply enqueued as removal
    batches, so a re-run costs the affected area, not the shard.
    Internal sets may legitimately empty out (matches can live
    entirely elsewhere).

    Returns ``(state, removed)`` where ``removed[u]`` is the set of
    internal ids pruned during *this* run -- the delta the coordinator
    turns into withdrawn assumptions elsewhere.

    The refinement is the compact engine's batched, lazy-counter
    scheme (see ``compact_maximum_simulation``): witness-less
    candidates are detected with ``isdisjoint``, counters materialize
    on first touch against ``full ∪ still-queued`` and stay valid
    across rounds, and removals propagate in batches -- with the two
    sharding twists that ghost ids sit in every target set but are
    only ever removed by coordinator withdrawal, and empty candidate
    sets do not abort.
    """
    succ = snapshot.succ_rows
    pred = snapshot.pred_rows
    pending: Dict[PNode, Set[int]] = {}
    removed_acc: LocalSim = {}
    if state is None:
        sim, assume = _seed_candidates(snapshot, own, pattern)
        state = _ShardState(
            sim, assume, {edge: {} for edge in pattern.edges()}
        )
        full = state.full
        for u in pattern.nodes():
            doomed: Set[int] = set()
            for u1 in pattern.successors(u):
                no_witness = full[u1].isdisjoint
                doomed.update(v for v in sim[u] if no_witness(succ[v]))
            if doomed:
                sim[u] -= doomed
                full[u] -= doomed
                pending[u] = doomed
                removed_acc[u] = set(doomed)
    else:
        sim = state.sim
        full = state.full
        assume = state.assume
        # Apply the withdrawal: drop the refuted ghosts from the
        # assumption and witness-target sets, then queue them as
        # ordinary removal batches.
        for u, ghosts in (withdrawn or {}).items():
            if ghosts:
                assume[u] -= ghosts
                full[u] -= ghosts
                pending[u] = set(ghosts)
    counters = state.counters

    while pending:
        u1, removed = pending.popitem()
        touched = set().union(*map(pred.__getitem__, removed))
        if not touched:
            continue
        intersect_removed = removed.intersection
        for u in pattern.predecessors(u1):
            candidates = sim[u]
            affected = candidates & touched
            if not affected:
                continue
            # A counter materialized mid-propagation must count every
            # witness whose departure has not been *processed* yet:
            # full(u1) plus anything still queued for u1 (a self-loop
            # pattern edge can re-queue ids for u1 during this very
            # pop).  The current batch is excluded from both, so it
            # needs no decrement on a fresh counter; queued ids will
            # decrement exactly once when their own batch pops.
            queued_for_u1 = pending.get(u1)
            if queued_for_u1:
                intersect_targets = (full[u1] | queued_for_u1).intersection
            else:
                intersect_targets = full[u1].intersection
            newly = refine_batch(
                affected,
                succ,
                counters[(u, u1)],
                intersect_targets,
                intersect_removed,
            )
            if newly:
                candidates -= newly
                full[u] -= newly
                gone = removed_acc.get(u)
                if gone is None:
                    removed_acc[u] = set(newly)
                else:
                    gone |= newly
                queued = pending.get(u)
                if queued is None:
                    pending[u] = newly
                else:
                    queued |= newly
    return state, removed_acc


def _local_edge_matches(
    snapshot: CompactGraph,
    pattern,
    state: _ShardState,
    global_row: List[int],
    node_table: List[Node],
) -> Tuple[
    IdEdgeMatches,
    IdEdgeMatches,
    Dict[PEdge, Set[Tuple[Node, Node]]],
    Dict[PNode, Set[Node]],
]:
    """One shard's slice of the final result, ready to merge.

    Returns the per-edge match sets in composite global id space
    grouped by source id and by target id (the two
    :class:`CompactExtension` indexes), the same pairs decoded to node
    keys, and the decoded node match sets -- all built shard-side, so
    the coordinator's merge is pure C-level set/dict updates (only
    by-target rows can collide across shards, at cut targets).  At the
    global fixpoint the surviving assumptions are exactly the true
    boundary matches, so ghost witnesses are emitted like internal
    ones; ``global_row`` folds both into the shared id space.
    """
    succ = snapshot.succ_rows
    sim = state.sim
    full = state.full
    decode_local = snapshot.node_of
    decode_global = node_table.__getitem__
    matches: IdEdgeMatches = {}
    reverse: IdEdgeMatches = {}
    decoded: Dict[PEdge, Set[Tuple[Node, Node]]] = {}
    for edge in pattern.edges():
        u, u1 = edge
        # ``full`` is sim ∪ assume by invariant -- exactly the
        # surviving witnesses.
        intersect = full[u1].intersection
        grouped: Dict[int, Set[int]] = {}
        by_target: Dict[int, Set[int]] = {}
        pairs: Set[Tuple[Node, Node]] = set()
        for v in sim[u]:
            witnesses = intersect(succ[v])
            if witnesses:
                source = global_row[v]
                targets = {global_row[w] for w in witnesses}
                grouped[source] = targets
                for w in targets:
                    sources = by_target.get(w)
                    if sources is None:
                        by_target[w] = {source}
                    else:
                        sources.add(source)
                pairs.update(
                    zip(repeat(decode_local(v)), map(decode_global, targets))
                )
        matches[edge] = grouped
        reverse[edge] = by_target
        decoded[edge] = pairs
    nodes = {
        u: set(map(decode_local, ids)) for u, ids in sim.items()
    }
    return matches, reverse, decoded, nodes


# ----------------------------------------------------------------------
# Task plumbing: serial / thread / process execution of local steps
# ----------------------------------------------------------------------
#: Executor kinds accepted by the psim / materialization entry points.
SHARD_EXECUTORS = ("serial", "thread", "process")


#: Shard-state store: (session id, shard index) -> state.  Sessions of
#: several patterns may be in flight at once (wave-driven
#: materialization), so the key carries both.
_StateStore = Dict[Tuple[int, int], _ShardState]


def _execute(
    sharded: ShardedGraph, store: _StateStore, task: Tuple
) -> Tuple[int, object]:
    """Evaluate one local task against a sharded graph (the single code
    path used by every executor, in-process or not).

    ``store`` holds the per-(session, shard) fixpoint states, so one
    long-lived runner (and its workers) serves any number of patterns
    -- concurrently, for wave-driven materialization -- without state
    ever crossing back to the coordinator.  Terminal tasks (``edges``,
    ``collect``, ``drop``) evict their session's state.
    """
    kind, index, session = task[0], task[1], task[2]
    snapshot = sharded.shard(index)
    key = (session, index)
    if kind == "sim":
        _, _, _, pattern, withdrawn = task
        state = store.get(key)
        first_run = state is None
        state, removed = _local_fixpoint(
            snapshot, sharded.own_count(index), pattern, state, withdrawn
        )
        store[key] = state
        sizes = {u: len(ids) for u, ids in state.sim.items()}
        assumed = (
            sum(len(ids) for ids in state.assume.values()) if first_run else 0
        )
        return index, (removed, sizes, assumed)
    if kind == "drop":
        store.pop(key, None)
        return index, None
    state = store.pop(key, None)
    if state is None:
        raise RuntimeError(
            f"shard {index} has no state for session {session}; "
            "was the worker restarted mid-evaluation?"
        )
    if kind == "edges":
        _, _, _, pattern = task
        return index, _local_edge_matches(
            snapshot,
            pattern,
            state,
            sharded.global_row(index),
            sharded.node_table,
        )
    # "collect": the decoded internal simulation of this shard.
    decode = snapshot.node_of
    return index, {u: set(map(decode, ids)) for u, ids in state.sim.items()}


# Module level so the process pool pickles them by reference; the
# sharded snapshot ships once per worker through the initializer,
# mirroring repro.engine.executor.  The parent serializes it exactly
# once (ShardRunner.ship records size and wall time) and every pool
# receives the same bytes, so a worker's startup cost is a single
# ``pickle.loads`` -- shared-memory shards attach rather than copy.
# Each worker owns the states of the shards pinned to it.
_WORKER_PAYLOAD: Dict[str, object] = {}


def _worker_init(blob: bytes) -> None:
    _WORKER_PAYLOAD["sharded"] = pickle.loads(blob)
    _WORKER_PAYLOAD["store"] = {}


def _worker_run(task: Tuple) -> Tuple[int, object]:
    return _execute(
        _WORKER_PAYLOAD["sharded"],  # type: ignore[arg-type]
        _WORKER_PAYLOAD["store"],  # type: ignore[arg-type]
        task,
    )


def _worker_run_traced(
    packed: Tuple[Tuple, str]
) -> Tuple[int, object, SpanRecord]:
    """Traced variant: record the task as a worker-side span and ship it
    home (the coordinator adopts it under the span whose id rode in)."""
    task, trace_id = packed
    with trace.remote_span(
        "psim.task", trace_id, kind=task[0], shard=task[1], pid=os.getpid()
    ) as worker_span:
        index, payload = _execute(
            _WORKER_PAYLOAD["sharded"],  # type: ignore[arg-type]
            _WORKER_PAYLOAD["store"],  # type: ignore[arg-type]
            task,
        )
    return index, payload, worker_span.to_record(trace_id)


class ShardRunner:
    """Executes batches of shard-local tasks for one sharded graph.

    Pools are created once and reused across every round and every view
    materialized through the runner -- the expensive part of process
    parallelism (worker startup, shipping the sharded snapshot) is paid
    a single time.  Process mode pins every shard to a dedicated
    single-worker pool (shard ``i`` always lands on pool ``i mod
    workers``), so each worker keeps its shards' fixpoint states
    resident and per-round traffic is just withdrawal batches out,
    removal deltas back.  Use as a context manager, or call
    :meth:`close`.
    """

    def __init__(
        self,
        sharded: ShardedGraph,
        executor: str = "serial",
        workers: Optional[int] = None,
    ) -> None:
        if executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{SHARD_EXECUTORS}"
            )
        self.sharded = sharded
        self.executor = executor
        self.workers = workers if workers is not None else max(
            1, min(sharded.num_shards, os.cpu_count() or 1)
        )
        self._session = 0
        self._store: _StateStore = {}
        self._pools: List[ProcessPoolExecutor] = []
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        #: ShipStats of the one-time snapshot serialization (zeros for
        #: in-process runners: nothing ships).
        self.ship = ShipStats()
        if executor == "process" and self.workers > 1:
            # Shared-memory shards pay off exactly here: workers attach
            # segments instead of unpickling per-shard adjacency.
            sharded.share()
            started = perf_counter()
            blob = pickle.dumps(sharded, pickle.HIGHEST_PROTOCOL)
            self.ship = ShipStats(
                bytes=len(blob), seconds=perf_counter() - started
            )
            self._pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_worker_init,
                    initargs=(blob,),
                )
                for _ in range(min(self.workers, sharded.num_shards))
            ]
        elif executor == "thread" and self.workers > 1:
            self._thread_pool = ThreadPoolExecutor(max_workers=self.workers)

    def new_session(self) -> int:
        """A fresh session id for one pattern evaluation.  Several
        sessions may be in flight at once; each evaluation ends with a
        terminal task per shard (``edges`` / ``collect`` / ``drop``)
        that evicts its worker-resident state."""
        self._session += 1
        return self._session

    def map(self, tasks: Sequence[Tuple]) -> List[Tuple[int, object]]:
        """Run local tasks, returning ``(shard index, result)`` pairs.

        When the calling context is traced, per-task spans land under
        the caller's span: in-process executors nest directly (the
        thread pool re-enters the captured span), while process pools
        thread the span id out with each task and adopt the returned
        worker-side records."""
        parent = trace.current_span()
        if self._pools:
            if parent is not None:
                futures = [
                    self._pools[task[1] % len(self._pools)].submit(
                        _worker_run_traced, (task, parent.span_id)
                    )
                    for task in tasks
                ]
                out: List[Tuple[int, object]] = []
                for future in futures:
                    index, payload, record = future.result()
                    parent.adopt(record)
                    out.append((index, payload))
                return out
            futures = [
                self._pools[task[1] % len(self._pools)].submit(_worker_run, task)
                for task in tasks
            ]
            return [future.result() for future in futures]
        sharded = self.sharded
        store = self._store
        if self._thread_pool is not None and len(tasks) > 1:
            def run(task: Tuple) -> Tuple[int, object]:
                # Thread pools do not inherit contextvars: re-enter the
                # captured span so the task span nests correctly.
                with trace.attach(parent):
                    with trace.span("psim.task", kind=task[0], shard=task[1]):
                        return _execute(sharded, store, task)

            return list(self._thread_pool.map(run, tasks))
        out = []
        for task in tasks:
            with trace.span("psim.task", kind=task[0], shard=task[1]):
                out.append(_execute(sharded, store, task))
        return out

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown()
        self._pools = []
        if self._thread_pool is not None:
            self._thread_pool.shutdown()
            self._thread_pool = None
        self._store.clear()

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resolve_runner(
    sharded: ShardedGraph,
    runner: Optional[ShardRunner],
    executor: str,
    workers: Optional[int],
) -> Tuple[ShardRunner, bool]:
    """An existing runner (not owned) or a fresh one (owned by caller)."""
    if runner is not None:
        if runner.sharded is not sharded:
            raise ValueError("runner was built for a different ShardedGraph")
        return runner, False
    return ShardRunner(sharded, executor=executor, workers=workers), True


# ----------------------------------------------------------------------
# The coordinator: assumption exchange to the global fixpoint
# ----------------------------------------------------------------------
class _Evaluation:
    """State machine driving one pattern to its global fixpoint.

    Phases: ``sim`` (rounds of local fixpoints + removal-driven
    exchange), then ``edges`` (extract + merge the result slices) or
    ``collect`` (decoded simulation only) or ``drop`` (failed match;
    evict worker states), then done.  Several evaluations can progress
    through the same :class:`ShardRunner` in shared waves
    (:func:`_drive`), which is what keeps pool round-trips -- the
    dominant process-mode cost -- proportional to the number of
    *rounds*, not patterns x rounds.

    Round 1 runs every shard with label-index seeding (assumptions
    start as each shard's condition-matching ghosts -- the same
    optimistic superset the owner seeds from, so both sides agree on
    round zero).  The exchange is *removal-driven*: each local run
    reports the internal ids it pruned, the coordinator translates
    them through the boundary bridges into withdrawal batches, and
    only the shards that lost an assumption re-run -- continuing from
    their worker-resident state, so a re-run is a decrement cascade
    over the affected area.  Every id leaves its (shrinking)
    simulation set exactly once, so each translated withdrawal is
    unique by construction -- the coordinator needs no view of the
    assumption sets at all.  Work per round is therefore proportional
    to the invalidated area, not to the boundary size.
    """

    __slots__ = (
        "pattern",
        "sharded",
        "session",
        "mode",
        "stats",
        "phase",
        "done",
        "empty",
        "sizes",
        "withdrawn",
        "active",
        "_incoming",
        "id_matches",
        "by_target",
        "edge_matches",
        "node_matches",
        "collected",
    )

    def __init__(
        self, pattern, sharded: ShardedGraph, session: int, mode: str = "edges"
    ) -> None:
        assert mode in ("edges", "collect")
        k = sharded.num_shards
        self.pattern = pattern
        self.sharded = sharded
        self.session = session
        self.mode = mode
        self.stats = PSimStats(shards=k)
        self.phase = "sim"
        self.done = False
        self.empty = False
        self.sizes: List[Optional[Dict[PNode, int]]] = [None] * k
        self.withdrawn: List[Optional[Dict[PNode, Set[int]]]] = [None] * k
        self.active: List[int] = list(range(k))
        self._incoming: List[Tuple[int, object]] = []
        self.id_matches: Optional[IdEdgeMatches] = None
        self.by_target: Optional[IdEdgeMatches] = None
        self.edge_matches: Optional[Dict[PEdge, Set[Tuple[Node, Node]]]] = None
        self.node_matches: Optional[Dict[PNode, Set[Node]]] = None
        self.collected: Optional[Dict[PNode, Set[Node]]] = None

    # -- wave protocol -------------------------------------------------
    def tasks(self) -> List[Tuple]:
        """This wave's tasks (empty once done)."""
        if self.phase == "sim":
            self.stats.rounds += 1
            self.stats.local_runs += len(self.active)
            return [
                ("sim", i, self.session, self.pattern, self.withdrawn[i])
                for i in self.active
            ]
        if self.phase == "edges":
            return [
                ("edges", i, self.session, self.pattern)
                for i in range(self.sharded.num_shards)
            ]
        if self.phase == "collect":
            return [
                ("collect", i, self.session)
                for i in range(self.sharded.num_shards)
            ]
        if self.phase == "drop":
            return [
                ("drop", i, self.session)
                for i in range(self.sharded.num_shards)
            ]
        return []

    def absorb(self, index: int, payload: object) -> None:
        self._incoming.append((index, payload))

    def end_wave(self) -> None:
        incoming, self._incoming = self._incoming, []
        if self.phase == "sim":
            self._end_sim_wave(incoming)
        elif self.phase == "edges":
            self._merge_edges(incoming)
            self.phase = "done"
            self.done = True
        elif self.phase == "collect":
            merged: Dict[PNode, Set[Node]] = {
                u: set() for u in self.pattern.nodes()
            }
            for _, decoded in incoming:
                for u, matches in decoded.items():  # type: ignore[attr-defined]
                    merged[u] |= matches
            self.collected = merged
            self.phase = "done"
            self.done = True
        else:  # drop acknowledgements
            self.phase = "done"
            self.done = True

    # -- internals -----------------------------------------------------
    def _end_sim_wave(self, incoming: List[Tuple[int, object]]) -> None:
        sharded = self.sharded
        withdrawn = self.withdrawn
        deltas: List[Tuple[int, LocalSim]] = []
        for index, payload in incoming:
            removed, shard_sizes, assumed = payload  # type: ignore[misc]
            self.sizes[index] = shard_sizes
            withdrawn[index] = None
            deltas.append((index, removed))
            self.stats.initial_assumptions += assumed
        # Exchange: every pruned internal id refutes the corresponding
        # ghost assumption in the shards that hold one (pre-resolved
        # through the boundary bridges, so a removal batch meets each
        # holder in set-at-a-time operations); refuted ghosts become
        # the holder's next withdrawal batch.
        rerun: Set[int] = set()
        round_invalidated = 0
        for index, removed in deltas:
            bridges = sharded.bridges(index)
            for u, ids in removed.items():
                for holder, exported, translate in bridges:
                    common = ids & exported
                    if not common:
                        continue
                    hit = set(map(translate.__getitem__, common))
                    batches = withdrawn[holder]
                    if batches is None:
                        withdrawn[holder] = {u: hit}
                    else:
                        batch = batches.get(u)
                        if batch is None:
                            batches[u] = hit
                        else:
                            batch |= hit
                    rerun.add(holder)
                    round_invalidated += len(hit)
        self.stats.per_round_invalidated.append(round_invalidated)
        self.stats.invalidated += round_invalidated
        if rerun:
            self.active = sorted(rerun)
            return
        # Global fixpoint reached: extract, or clean up a failed match.
        if any(
            not any(shard_sizes[u] for shard_sizes in self.sizes)  # type: ignore[index]
            for u in self.pattern.nodes()
        ):
            self.empty = True
            self.phase = "drop"
        else:
            self.phase = self.mode

    def _merge_edges(self, incoming: List[Tuple[int, object]]) -> None:
        pattern = self.pattern
        id_matches: IdEdgeMatches = {edge: {} for edge in pattern.edges()}
        by_target: IdEdgeMatches = {edge: {} for edge in pattern.edges()}
        edge_matches: Dict[PEdge, Set[Tuple[Node, Node]]] = {
            edge: set() for edge in pattern.edges()
        }
        node_matches: Dict[PNode, Set[Node]] = {
            u: set() for u in pattern.nodes()
        }
        for _, shard_slice in incoming:
            local_ids, local_reverse, local_pairs, local_nodes = shard_slice  # type: ignore[misc]
            for edge, grouped in local_ids.items():
                # Source rows are owned by exactly one shard: plain merge.
                id_matches[edge].update(grouped)
            for edge, grouped in local_reverse.items():
                reverse = by_target[edge]
                if reverse:
                    for w, sources in grouped.items():
                        current = reverse.get(w)
                        if current is None:
                            reverse[w] = sources
                        else:
                            current |= sources
                else:
                    # First contributor: adopt the shard's rows outright.
                    by_target[edge] = grouped
            for edge, pairs in local_pairs.items():
                current_pairs = edge_matches[edge]
                if current_pairs:
                    current_pairs |= pairs
                else:
                    edge_matches[edge] = pairs
            for u, nodes in local_nodes.items():
                current_nodes = node_matches[u]
                if current_nodes:
                    current_nodes |= nodes
                else:
                    node_matches[u] = nodes
        self.id_matches = id_matches
        self.by_target = by_target
        self.edge_matches = edge_matches
        self.node_matches = node_matches


def _meter_psim(stats: PSimStats) -> None:
    """One registry write per finished evaluation."""
    reg = get_registry()
    reg.counter("repro_psim_rounds_total").inc(stats.rounds)
    reg.counter("repro_psim_local_runs_total").inc(stats.local_runs)
    reg.counter("repro_psim_invalidated_total").inc(stats.invalidated)


def _drive(evaluations: List[_Evaluation], runner: ShardRunner) -> None:
    """Run evaluations to completion in shared waves.

    Each wave gathers every active evaluation's tasks into a single
    ``runner.map`` call: one pool round-trip per wave regardless of how
    many patterns are in flight, and slow shards of one pattern overlap
    with other patterns' work instead of idling the pool.
    """
    remaining = [e for e in evaluations if not e.done]
    waves = 0
    total_tasks = 0
    while remaining:
        tasks: List[Tuple] = []
        owners: List[_Evaluation] = []
        for evaluation in remaining:
            for task in evaluation.tasks():
                tasks.append(task)
                owners.append(evaluation)
        waves += 1
        total_tasks += len(tasks)
        with trace.span("psim.wave", wave=waves, tasks=len(tasks)):
            results = runner.map(tasks)
        for owner, (index, payload) in zip(owners, results):
            owner.absorb(index, payload)
        for evaluation in remaining:
            evaluation.end_wave()
        remaining = [e for e in remaining if not e.done]
    # One registry write per drive, never per task (overhead budget).
    reg = get_registry()
    reg.counter("repro_psim_waves_total").inc(waves)
    reg.counter("repro_psim_tasks_total").inc(total_tasks)


def partial_max_simulation(
    pattern,
    sharded: ShardedGraph,
    executor: str = "serial",
    workers: Optional[int] = None,
    runner: Optional[ShardRunner] = None,
) -> Optional[Dict[PNode, Set[Node]]]:
    """The maximum simulation of ``pattern`` over a sharded graph,
    computed by partial evaluation -- provably equal to single-machine
    :func:`~repro.simulation.simulation.maximum_simulation` on the
    unsharded graph (property-tested across partitioners).

    Returns ``{u: matches}`` over original node keys with every set
    nonempty, or ``None`` when the pattern has no match.
    """
    runner, owned = _resolve_runner(sharded, runner, executor, workers)
    try:
        evaluation = _Evaluation(
            pattern, sharded, runner.new_session(), mode="collect"
        )
        with trace.span("psim", shards=sharded.num_shards) as psim_span:
            _drive([evaluation], runner)
            if psim_span is not None:
                psim_span.set(
                    rounds=evaluation.stats.rounds,
                    invalidated=evaluation.stats.invalidated,
                )
        _meter_psim(evaluation.stats)
    finally:
        if owned:
            runner.close()
    return None if evaluation.empty else evaluation.collected


def _sharded_evaluate(
    pattern,
    sharded: ShardedGraph,
    executor: str = "serial",
    workers: Optional[int] = None,
    runner: Optional[ShardRunner] = None,
    stats_out: Optional[List[PSimStats]] = None,
) -> Tuple[MatchResult, Optional[IdEdgeMatches], Optional[IdEdgeMatches]]:
    """Full evaluation: result plus both composite-id indexes.

    Returns ``(result, by_source, by_target)``; the id components are
    ``None`` on a failed match.  ``by_source`` is grouped by source id
    -- exactly the form :class:`~repro.views.view.CompactExtension`
    stores -- and ``by_target`` its precomputed reversal, both built
    shard-side and merged with C-level updates (only by-target rows can
    collide across shards, at cut targets).
    """
    runner, owned = _resolve_runner(sharded, runner, executor, workers)
    try:
        evaluation = _Evaluation(pattern, sharded, runner.new_session())
        with trace.span("psim", shards=sharded.num_shards) as psim_span:
            _drive([evaluation], runner)
            if psim_span is not None:
                psim_span.set(
                    rounds=evaluation.stats.rounds,
                    invalidated=evaluation.stats.invalidated,
                )
        _meter_psim(evaluation.stats)
    finally:
        if owned:
            runner.close()
    if stats_out is not None:
        stats_out.append(evaluation.stats)
    if evaluation.empty:
        return MatchResult.empty(), None, None
    return (
        MatchResult(evaluation.node_matches, evaluation.edge_matches),
        evaluation.id_matches,
        evaluation.by_target,
    )


def sharded_match_with_ids(
    pattern,
    sharded: ShardedGraph,
    executor: str = "serial",
    workers: Optional[int] = None,
    runner: Optional[ShardRunner] = None,
    stats_out: Optional[List[PSimStats]] = None,
) -> Tuple[MatchResult, Optional[IdEdgeMatches]]:
    """Evaluate ``Qs`` on a sharded graph; also return the composite
    global-id edge matches (``None`` on a failed match).

    The id-space component is grouped by source id -- exactly the form
    :class:`~repro.views.view.CompactExtension` stores, with ids drawn
    from the sharded graph's composite space.
    """
    result, id_matches, _ = _sharded_evaluate(
        pattern,
        sharded,
        executor=executor,
        workers=workers,
        runner=runner,
        stats_out=stats_out,
    )
    return result, id_matches


def sharded_match(
    pattern,
    sharded: ShardedGraph,
    executor: str = "serial",
    workers: Optional[int] = None,
    runner: Optional[ShardRunner] = None,
) -> MatchResult:
    """Evaluate ``Qs`` on a sharded graph (the paper's Match, via
    partial evaluation); equal to ``match`` on the unsharded graph."""
    result, _ = sharded_match_with_ids(
        pattern, sharded, executor=executor, workers=workers, runner=runner
    )
    return result


# ----------------------------------------------------------------------
# Bounded patterns over a sharded graph
# ----------------------------------------------------------------------
def sharded_bounded_match(pattern, sharded: ShardedGraph) -> MatchResult:
    """Evaluate ``Qb`` on a sharded graph (the paper's BMatch).

    Bounded simulation refines against *path* reachability, which does
    not decompose into per-shard local fixpoints the way edge-witness
    simulation does (a single bounded path may thread through several
    shards).  The engine therefore runs the generic refinement over the
    sharded graph's composite read API -- candidate seeding from the
    composite label index, and every forward distance question answered
    by the per-shard bounded BFS with ghost-distance stitching
    (:meth:`ShardedGraph.descendants_within_ids`).  Equal to
    ``bounded_match`` on the unsharded graph.
    """
    from repro.simulation.bounded import (
        bounded_edge_matches,
        maximum_bounded_simulation,
    )

    sim = maximum_bounded_simulation(pattern, sharded)
    if sim is None:
        return MatchResult.empty()
    edge_matches = bounded_edge_matches(pattern, sharded, sim)
    return MatchResult(sim, edge_matches)


def sharded_bounded_match_with_ids(pattern, sharded: ShardedGraph):
    """Full bounded evaluation with the composite-id extension payload.

    Returns ``(result, by_source, by_target, id_distances)`` where the
    id components use the sharded graph's composite global-id space --
    exactly the form :class:`~repro.views.view.CompactExtension` stores
    -- and ``id_distances`` is the id-space distance index ``I(V)``
    (pair -> shortest distance, minimized across view edges).  The id
    components are ``None`` on a failed match.
    """
    from repro.simulation.bounded import (
        bounded_edge_matches,
        maximum_bounded_simulation,
    )

    sim = maximum_bounded_simulation(pattern, sharded)
    if sim is None:
        return MatchResult.empty(), None, None, None
    per_edge = bounded_edge_matches(pattern, sharded, sim, with_distances=True)
    id_of = sharded.id_of
    by_source: IdEdgeMatches = {}
    by_target: IdEdgeMatches = {}
    id_distances: Dict[Tuple[int, int], int] = {}
    edge_matches = {}
    for edge, pair_distances in per_edge.items():
        grouped: Dict[int, Set[int]] = {}
        reverse: Dict[int, Set[int]] = {}
        for (v, w), d in pair_distances.items():
            vi, wi = id_of(v), id_of(w)
            grouped.setdefault(vi, set()).add(wi)
            reverse.setdefault(wi, set()).add(vi)
            key = (vi, wi)
            previous = id_distances.get(key)
            if previous is None or d < previous:
                id_distances[key] = d
        by_source[edge] = grouped
        by_target[edge] = reverse
        edge_matches[edge] = set(pair_distances)
    return (
        MatchResult(sim, edge_matches),
        by_source,
        by_target,
        id_distances,
    )
