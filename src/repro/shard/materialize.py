"""Per-shard parallel view materialization.

Materializing a view catalog is the heavy, offline half of the paper's
workflow -- ``V(G)`` is computed once so that MatchJoin never touches
``G`` at query time (Theorem 1).  Over a
:class:`~repro.shard.sharded.ShardedGraph` that work parallelizes along
the shard axis: each view's simulation runs as per-shard local
fixpoints coordinated to the global fixpoint
(:mod:`repro.shard.psim`), and its per-shard match sets merge by
simple union because shards own disjoint source-node sets.

The merged extension carries a
:class:`~repro.views.view.CompactExtension` in the sharded graph's
*composite* id space, stamped with its composite ``snapshot_token`` --
so every extension materialized against the same sharded graph shares
one token and the existing id-space MatchJoin fast path
(:func:`repro.core.matchjoin._compact_match_join`) engages unchanged.

Entry points:

* :func:`materialize_view` -- one definition, one extension (the hook
  ``repro.views.view.materialize`` dispatches to);
* :func:`parallel_materialize` -- a whole catalog through one shared
  :class:`~repro.shard.psim.ShardRunner`, so thread/process pools are
  created once and the sharded snapshot ships to workers once for all
  views (the same ship-once discipline as ``repro.engine.executor``).

Both entry points accept *refreshed* sharded snapshots
(:meth:`ShardedGraph.refreshed`) unchanged: a refresh keeps composite
ids stable and mints a fresh composite token, so extensions
materialized afterwards coexist with re-stamped (``rebound``)
extensions of views the update stream never touched -- one token, fast
path intact.
"""

from __future__ import annotations

import logging
from typing import Iterable, Optional

from repro.graph.pattern import BoundedPattern
from repro.shard.psim import (
    ShardRunner,
    _drive,
    _Evaluation,
    _sharded_evaluate,
    sharded_bounded_match_with_ids,
)
from repro.shard.sharded import ShardedGraph
from repro.views.storage import ViewSet
from repro.views.view import (
    CompactExtension,
    MaterializedView,
    ViewDefinition,
    decode_distance_index,
)

log = logging.getLogger(__name__)


def _package(
    definition: ViewDefinition,
    sharded: ShardedGraph,
    evaluation: _Evaluation,
) -> MaterializedView:
    """Fold a finished evaluation into a materialized extension."""
    pattern = definition.pattern
    if evaluation.empty:
        empty_ids = {edge: {} for edge in pattern.edges()}
        return MaterializedView(
            definition,
            {edge: set() for edge in pattern.edges()},
            compact=CompactExtension(
                sharded, empty_ids, by_target={e: {} for e in pattern.edges()}
            ),
        )
    compact = CompactExtension(
        sharded, evaluation.id_matches, by_target=evaluation.by_target
    )
    return MaterializedView(
        definition, evaluation.edge_matches, compact=compact
    )


def materialize_bounded_view(
    definition: ViewDefinition, sharded: ShardedGraph
) -> MaterializedView:
    """Evaluate one *bounded* view on a sharded graph.

    Bounded simulation does not decompose into per-shard fixpoints (a
    bounded path may thread through several shards), so the evaluation
    runs the generic engine over the composite read API -- every
    distance question answered by the per-shard bounded BFS with
    ghost-distance stitching.  The extension carries a composite-id
    :class:`CompactExtension` whose ``distances`` payload is the
    id-space index ``I(V)``, stamped with the composite snapshot token,
    so the BMatchJoin id-space fast path engages on sharded bounded
    views exactly as on single-snapshot ones.
    """
    pattern = definition.pattern
    result, by_source, by_target, id_distances = sharded_bounded_match_with_ids(
        pattern, sharded
    )
    if by_source is None:
        empty_ids = {edge: {} for edge in pattern.edges()}
        return MaterializedView(
            definition,
            {edge: set() for edge in pattern.edges()},
            distances={},
            compact=CompactExtension(
                sharded,
                empty_ids,
                by_target={e: {} for e in pattern.edges()},
                distances={},
            ),
        )
    compact = CompactExtension(
        sharded, by_source, by_target=by_target, distances=id_distances
    )
    return MaterializedView(
        definition,
        result.edge_matches,
        distances=decode_distance_index(id_distances, sharded.node_table),
        compact=compact,
    )


def materialize_view(
    definition: ViewDefinition,
    sharded: ShardedGraph,
    runner: Optional[ShardRunner] = None,
    executor: str = "serial",
    workers: Optional[int] = None,
) -> MaterializedView:
    """Evaluate one view on a sharded graph and build its extension.

    Simulation views run the partial-evaluation fixpoint shard-parallel
    and attach a composite-id :class:`CompactExtension`; bounded views
    go through :func:`materialize_bounded_view` (stitched bounded BFS,
    composite-id distance payload).
    """
    pattern = definition.pattern
    if isinstance(pattern, BoundedPattern):
        return materialize_bounded_view(definition, sharded)
    result, id_matches, by_target = _sharded_evaluate(
        pattern, sharded, executor=executor, workers=workers, runner=runner
    )
    if id_matches is None:
        id_matches = {edge: {} for edge in pattern.edges()}
        by_target = {edge: {} for edge in pattern.edges()}
    compact = CompactExtension(sharded, id_matches, by_target=by_target)
    if not result:
        return MaterializedView(
            definition,
            {edge: set() for edge in pattern.edges()},
            compact=compact,
        )
    return MaterializedView(definition, result.edge_matches, compact=compact)


def parallel_materialize(
    views: ViewSet,
    sharded: ShardedGraph,
    names: Optional[Iterable[str]] = None,
    executor: str = "process",
    workers: Optional[int] = None,
    runner: Optional[ShardRunner] = None,
) -> None:
    """Materialize (cache) extensions for the given views shard-parallel.

    Evaluates each view on the sharded graph and installs ``V(G)`` via
    :meth:`ViewSet.set_extension` (bumping the catalog version per
    view, like :meth:`ViewSet.materialize`); defaults to all
    definitions.  One :class:`ShardRunner` serves the whole batch, and
    all simulation views advance through *shared* task waves -- one
    pool round-trip per wave regardless of view count, with every
    worker kept busy across patterns.  Pass ``runner`` to reuse a warm
    pool across calls, or let ``executor`` / ``workers`` configure a
    fresh one (``"serial"`` degrades to plain in-process evaluation).
    """
    chosen = list(names) if names is not None else views.names()
    owned = runner is None
    if owned:
        runner = ShardRunner(sharded, executor=executor, workers=workers)
    log.debug(
        "shard-parallel materialize: %d view(s) over %d shards (%s)",
        len(chosen), sharded.num_shards, executor,
    )
    try:
        # All simulation views advance through shared waves: one pool
        # round-trip per wave for the whole batch, and every worker
        # stays busy across patterns.  Bounded views take the generic
        # fallback individually (see materialize_view).
        evaluations: dict = {}
        for name in chosen:
            definition = views.definition(name)
            if not isinstance(definition.pattern, BoundedPattern):
                evaluations[name] = _Evaluation(
                    definition.pattern, sharded, runner.new_session()
                )
        _drive(list(evaluations.values()), runner)
        for name in chosen:
            evaluation = evaluations.get(name)
            if evaluation is None:
                extension = materialize_view(
                    views.definition(name), sharded, runner=runner
                )
            else:
                extension = _package(
                    views.definition(name), sharded, evaluation
                )
            views.set_extension(extension)
    finally:
        if owned:
            runner.close()
