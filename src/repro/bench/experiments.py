"""Runners regenerating each subfigure of Fig. 8 (Section VII).

Timing methodology (as in the paper): the (B)MatchJoin series time the
*evaluation* from materialized extensions; view selection (containment
analysis) is the subject of Exp-3 (Fig. 8(g)/(h)) and is measured
there.  Match/BMatch evaluate directly on ``G``.  Every runner returns
a :class:`~repro.bench.reporting.Table` whose columns mirror the
figure's series.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.bench import workloads
from repro.bench.reporting import Table, timed
from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.datasets import generate_views, query_from_views, random_query
from repro.simulation import bounded_match, match

_LABELS = tuple(f"l{i}" for i in range(10))


def _fmt_size(size: Tuple[int, int], bound=None) -> str:
    if bound is None:
        return f"({size[0]},{size[1]})"
    return f"({size[0]},{size[1]},{bound})"


# ----------------------------------------------------------------------
# Exp-1: MatchJoin on the real-dataset stand-ins (Fig. 8(a)-(c))
# ----------------------------------------------------------------------
def _matchjoin_table(exp: str, title: str, dataset, sizes, require_dag, tag, scale):
    graph, views = dataset(scale)
    table = Table(
        exp, title,
        ["|Qs|", "Match (s)", "MatchJoin_mnl (s)", "MatchJoin_min (s)", "|result|"],
        notes="Expected shape: MatchJoin_min <= MatchJoin_mnl < Match at "
              "every size; all grow with |Qs|, the view-based curves more "
              "slowly.",
    )
    for size, query in workloads.query_suite(
        views, sizes, graph=graph, require_dag=require_dag, tag=tag
    ):
        minimal = minimal_views(query, views)
        minimum = minimum_views(query, views)
        t_match = timed(match, query, graph, repeat=2)
        t_mnl = timed(match_join, query, minimal, views, repeat=2)
        t_min = timed(match_join, query, minimum, views, repeat=2)
        result = match(query, graph)
        table.add_row(_fmt_size(size), t_match, t_mnl, t_min, result.result_size)
    return table


def exp_fig8a(scale: float = 1.0) -> Table:
    return _matchjoin_table(
        "Fig. 8(a)", "Varying |Qs| (Amazon)", workloads.amazon,
        workloads.AMAZON_SIZES, False, "amazon", scale,
    )


def exp_fig8b(scale: float = 1.0) -> Table:
    return _matchjoin_table(
        "Fig. 8(b)", "Varying |Qs| (Citation)", workloads.citation,
        workloads.CITATION_SIZES, True, "citation", scale,
    )


def exp_fig8c(scale: float = 1.0) -> Table:
    return _matchjoin_table(
        "Fig. 8(c)", "Varying |Qs| (Youtube)", workloads.youtube,
        workloads.YOUTUBE_SIZES, False, "youtube", scale,
    )


# ----------------------------------------------------------------------
# Exp-1 scalability (Fig. 8(d), (e))
# ----------------------------------------------------------------------
def _synthetic_sweep(scale: float):
    base = [3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000]
    return [max(500, int(n * scale)) for n in base]


def exp_fig8d(scale: float = 1.0) -> Table:
    table = Table(
        "Fig. 8(d)", "Varying |G| (synthetic), pattern (4,6)",
        ["|V|", "Match (s)", "MatchJoin_mnl (s)", "MatchJoin_min (s)"],
        notes="Expected shape: all grow ~linearly with |G|; MatchJoin_min "
              "scales best (the paper reports it at ~49% of MatchJoin_mnl).",
    )
    for num_nodes in _synthetic_sweep(scale):
        graph, views = workloads.synthetic(num_nodes)
        query = workloads.pick_query(
            views, 4, 6, graph=graph, tag=f"syn{num_nodes}"
        )
        minimal = minimal_views(query, views)
        minimum = minimum_views(query, views)
        table.add_row(
            num_nodes,
            timed(match, query, graph, repeat=2),
            timed(match_join, query, minimal, views, repeat=2),
            timed(match_join, query, minimum, views, repeat=2),
        )
    return table


def exp_fig8e(scale: float = 1.0) -> Table:
    table = Table(
        "Fig. 8(e)", "Varying |G| and |Qs| (synthetic), MatchJoin_min",
        ["|V|", "Q1 (4,8)", "Q2 (5,10)", "Q3 (6,12)", "Q4 (7,14)"],
        notes="Expected shape: larger patterns cost more at every |G|; "
              "each series grows with |G|.",
    )
    pattern_sizes = [(4, 8), (5, 10), (6, 12), (7, 14)]
    for num_nodes in _synthetic_sweep(scale):
        graph, views = workloads.synthetic(num_nodes)
        row = [num_nodes]
        for size in pattern_sizes:
            query = workloads.pick_query(
                views, size[0], size[1], graph=graph, tag=f"syn{num_nodes}"
            )
            minimum = minimum_views(query, views)
            row.append(timed(match_join, query, minimum, views, repeat=2))
        table.add_row(*row)
    return table


# ----------------------------------------------------------------------
# Exp-2: the rank optimization (Fig. 8(f))
# ----------------------------------------------------------------------
def exp_fig8f(scale: float = 1.0) -> Table:
    num_nodes = max(500, int(3000 * scale))
    table = Table(
        "Fig. 8(f)", f"Varying alpha (densification, |V|={num_nodes})",
        ["alpha", "MatchJoin_nopt (s)", "MatchJoin_min (s)"],
        notes="Expected shape: the rank-ordered engine wins everywhere and "
              "the gap widens as the graph densifies (paper: optimized is "
              "~54% of nopt on average, improving with alpha).",
    )
    for alpha in (1.0, 1.05, 1.1, 1.15, 1.2, 1.25):
        graph, views = workloads.densification(num_nodes, alpha)
        query = workloads.pick_query(
            views, 4, 6, graph=graph, tag=f"dens{num_nodes}:{alpha}"
        )
        minimum = minimum_views(query, views)
        t_nopt = timed(match_join, query, minimum, views, optimized=False, repeat=3)
        t_opt = timed(match_join, query, minimum, views, optimized=True, repeat=3)
        table.add_row(alpha, t_nopt, t_opt)
    return table


# ----------------------------------------------------------------------
# Exp-3: containment analysis (Fig. 8(g), (h))
# ----------------------------------------------------------------------
def exp_fig8g(scale: float = 1.0) -> Table:
    views = generate_views(_LABELS, 22, seed=17)
    table = Table(
        "Fig. 8(g)", "Containment checking time, DAG vs cyclic patterns",
        ["|Qs|", "contain QDAG (ms)", "contain QCyclic (ms)"],
        notes="Expected shape: milliseconds throughout (the paper reports "
              "<= 39ms at (10,20)); cyclic patterns cost no less than DAGs "
              "of equal size.",
    )
    repeats = 5
    for size in workloads.CONTAINMENT_SIZES:
        dag_total = cyc_total = 0.0
        for seed in range(repeats):
            dag = random_query(size[0], size[1], _LABELS, seed=seed, cyclic=False)
            cyc = random_query(size[0], size[1], _LABELS, seed=seed, cyclic=True)
            dag_total += timed(contains, dag, views)
            cyc_total += timed(contains, cyc, views)
        table.add_row(
            _fmt_size(size),
            dag_total / repeats * 1000,
            cyc_total / repeats * 1000,
        )
    return table


def exp_fig8h(scale: float = 1.0) -> Table:
    # A suite with coverage overlap (small views first, big composites
    # last) -- without overlap both algorithms trivially pick the same
    # subset and R2 pins to 1.  See workloads.overlapping_views.
    views, composites = workloads.overlapping_views()
    table = Table(
        "Fig. 8(h)", "minimum vs minimal on cyclic patterns",
        ["|Qs|", "R1 = T(minimum)/T(minimal)", "R2 = card(minimum)/card(minimal)"],
        notes="Expected shape: R1 near 1 (minimum may cost up to ~120% of "
              "minimal); R2 well below 1 (paper: minimum finds subsets "
              "40-55% the size of minimal's).",
    )
    repeats = 5
    for size in workloads.CONTAINMENT_SIZES:
        t_min = t_mnl = 0.0
        card_min = card_mnl = 0
        for seed in range(repeats):
            query = query_from_views(composites, size[0], size[1], seed=seed)
            t_mnl += timed(minimal_views, query, views)
            t_min += timed(minimum_views, query, views)
            card_mnl += len(minimal_views(query, views).views_used())
            card_min += len(minimum_views(query, views).views_used())
        table.add_row(
            _fmt_size(size),
            t_min / t_mnl if t_mnl else float("nan"),
            card_min / card_mnl if card_mnl else float("nan"),
        )
    return table


# ----------------------------------------------------------------------
# Exp-4: bounded pattern queries (Fig. 8(i)-(l))
# ----------------------------------------------------------------------
def _bounded_table(exp, title, dataset_name, bound, sizes, require_dag, scale):
    graph, views = workloads.bounded_dataset(dataset_name, bound, scale)
    table = Table(
        exp, title,
        ["|Qb|", "BMatch (s)", "BMatchJoin_mnl (s)", "BMatchJoin_min (s)", "|result|"],
        notes="Expected shape: BMatchJoin well under BMatch everywhere "
              "(paper: ~10-14% of its time on Amazon), with the gap growing "
              "with pattern size; BMatchJoin_min <= BMatchJoin_mnl.",
    )
    for size, query in workloads.query_suite(
        views, sizes, graph=graph, require_dag=require_dag,
        tag=f"{dataset_name}@{bound}",
    ):
        minimal = bounded_minimal_views(query, views)
        minimum = bounded_minimum_views(query, views)
        t_bmatch = timed(bounded_match, query, graph)
        t_mnl = timed(bounded_match_join, query, minimal, views, repeat=2)
        t_min = timed(bounded_match_join, query, minimum, views, repeat=2)
        result = bounded_match(query, graph)
        table.add_row(
            _fmt_size(size, bound), t_bmatch, t_mnl, t_min, result.result_size
        )
    return table


def exp_fig8i(scale: float = 1.0) -> Table:
    return _bounded_table(
        "Fig. 8(i)", "Varying |Qb| (Amazon, fe=2)", "amazon", 2,
        workloads.AMAZON_SIZES, False, scale,
    )


def exp_fig8j(scale: float = 1.0) -> Table:
    return _bounded_table(
        "Fig. 8(j)", "Varying |Qb| (Citation, fe=3)", "citation", 3,
        workloads.CITATION_SIZES, True, scale,
    )


def exp_fig8k(scale: float = 1.0) -> Table:
    table = Table(
        "Fig. 8(k)", "Varying fe(e) (Youtube), pattern (4,8)",
        ["fe(e)", "BMatch (s)", "BMatchJoin_mnl (s)", "BMatchJoin_min (s)"],
        notes="Expected shape: BMatch grows steeply with the bound (deeper "
              "BFS); BMatchJoin stays near-flat (paper: 3% of BMatch at "
              "fe=3).",
    )
    # The per-bound view materialization is the costly part, so this
    # figure runs on a half-size YouTube graph.
    sub_scale = scale * 0.5
    for bound in (2, 3, 4, 5, 6):
        graph, views = workloads.bounded_dataset("youtube", bound, sub_scale)
        query = workloads.pick_query(
            views, 4, 8, graph=graph, tag=f"youtube@{bound}"
        )
        minimal = bounded_minimal_views(query, views)
        minimum = bounded_minimum_views(query, views)
        table.add_row(
            bound,
            timed(bounded_match, query, graph),
            timed(bounded_match_join, query, minimal, views),
            timed(bounded_match_join, query, minimum, views),
        )
    return table


def exp_fig8l(scale: float = 1.0) -> Table:
    table = Table(
        "Fig. 8(l)", "Varying |G| (synthetic, bounded fe=3), pattern (4,6)",
        ["|V|", "BMatch (s)", "BMatchJoin_mnl (s)", "BMatchJoin_min (s)"],
        notes="Expected shape: BMatchJoin_min scales best and stays a small "
              "fraction of BMatch (paper: ~6%), with the gap growing "
              "with |G|.",
    )
    for num_nodes in _synthetic_sweep(scale):
        graph, views = workloads.synthetic_bounded(num_nodes, 3)
        query = workloads.pick_query(
            views, 4, 6, graph=graph, tag=f"synb{num_nodes}"
        )
        minimal = bounded_minimal_views(query, views)
        minimum = bounded_minimum_views(query, views)
        table.add_row(
            num_nodes,
            timed(bounded_match, query, graph),
            timed(bounded_match_join, query, minimal, views, repeat=2),
            timed(bounded_match_join, query, minimum, views, repeat=2),
        )
    return table


# ----------------------------------------------------------------------
# Summary statistics (Exp-1/Exp-4 narrative numbers)
# ----------------------------------------------------------------------
def exp_summary(scale: float = 1.0) -> Table:
    table = Table(
        "Summary", "View cache statistics and overall savings",
        ["dataset", "|V(G)|/|G|", "views used (min)", "MatchJoin_min/Match", "|result|"],
        notes="Paper reference points: view extensions at 14.4% (Amazon), "
              "12% (Citation), 4% (YouTube) of the data; 3-6 views used per "
              "YouTube query; simulation matching via views saves >= 51%.",
    )
    for name, dataset, sizes, dag in (
        ("amazon", workloads.amazon, (6, 9), False),
        ("citation", workloads.citation, (6, 9), True),
        ("youtube", workloads.youtube, (6, 9), False),
    ):
        graph, views = dataset(scale)
        query = workloads.pick_query(
            views, sizes[0], sizes[1], graph=graph, require_dag=dag, tag=name
        )
        minimum = minimum_views(query, views)
        t_match = timed(match, query, graph, repeat=3)
        t_min = timed(match_join, query, minimum, views, repeat=3)
        result = match(query, graph)
        table.add_row(
            name,
            views.extension_fraction(graph),
            len(minimum.views_used()),
            t_min / t_match if t_match else float("nan"),
            result.result_size,
        )
    return table


#: Registry used by run_all and the pytest-benchmark modules.
EXPERIMENTS: Dict[str, Callable[[float], Table]] = {
    "fig8a": exp_fig8a,
    "fig8b": exp_fig8b,
    "fig8c": exp_fig8c,
    "fig8d": exp_fig8d,
    "fig8e": exp_fig8e,
    "fig8f": exp_fig8f,
    "fig8g": exp_fig8g,
    "fig8h": exp_fig8h,
    "fig8i": exp_fig8i,
    "fig8j": exp_fig8j,
    "fig8k": exp_fig8k,
    "fig8l": exp_fig8l,
    "summary": exp_summary,
}
