"""Benchmark harness regenerating every figure of the paper's evaluation.

Each experiment of Section VII / Fig. 8 has a runner in
:mod:`~repro.bench.experiments` producing the same rows/series the paper
plots; :mod:`~repro.bench.workloads` builds the datasets, view caches
and query workloads; :mod:`~repro.bench.reporting` renders tables.

Run the full sweep (and regenerate the measurement tables embedded in
EXPERIMENTS.md) with::

    python -m repro.bench.run_all            # full scale (~minutes)
    python -m repro.bench.run_all --scale .5 # half-size quick pass

The ``benchmarks/`` directory wires the same runners into
pytest-benchmark (one module per subfigure).
"""

from repro.bench.reporting import Table
from repro.bench.experiments import EXPERIMENTS

__all__ = ["EXPERIMENTS", "Table"]
