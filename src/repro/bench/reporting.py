"""Result tables for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


@dataclass
class Table:
    """One experiment's results: a header row plus data rows.

    Mirrors one subfigure of Fig. 8 -- the first column is the x-axis
    (pattern size, |V|, alpha, ...), the remaining columns one series
    each (algorithm -> seconds, or a ratio).
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            rendered = [
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
            ]
            lines.append("| " + " | ".join(rendered) + " |")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def print(self) -> None:
        print(self.to_markdown())
        print()


def timed(fn: Callable, *args, repeat: int = 1, **kwargs) -> float:
    """Wall-clock seconds of the best of ``repeat`` calls."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def ascii_chart(table: Table, width: int = 56) -> str:
    """Render the table's numeric series as horizontal ASCII bars.

    One block per x-axis row, one bar per numeric column, all scaled to
    the table's global maximum -- a terminal stand-in for the paper's
    figure panels.
    """
    numeric_columns = [
        (index, header)
        for index, header in enumerate(table.headers[1:], start=1)
        if all(isinstance(row[index], (int, float)) for row in table.rows)
    ]
    if not numeric_columns:
        return "(no numeric series to chart)"
    peak = max(
        (float(row[index]) for row in table.rows for index, _ in numeric_columns),
        default=0.0,
    )
    if peak <= 0:
        return "(all-zero series)"
    label_width = max(len(str(header)) for _, header in numeric_columns)
    lines = [f"{table.experiment}: {table.title}"]
    for row in table.rows:
        lines.append(f"{row[0]}")
        for index, header in numeric_columns:
            value = float(row[index])
            bar = "#" * max(1, int(round(value / peak * width))) if value else ""
            rendered = f"{value:.4f}" if isinstance(row[index], float) else str(row[index])
            lines.append(f"  {str(header):<{label_width}} |{bar:<{width}}| {rendered}")
    return "\n".join(lines)
