"""Workload construction for the Fig. 8 experiments.

Everything is deterministic and memoized: pytest-benchmark modules and
the standalone runner share one cache of generated graphs, materialized
view sets and query workloads.

Scaling: the paper runs on 0.55M-1.6M-node datasets and 0.3M-1M-node
synthetic graphs on a 2008-era JVM; this harness defaults to ~25-30K
node stand-ins (see docs/ARCHITECTURE.md "Benchmarks") and exposes a
``scale`` multiplier.  All comparisons are relative, so the figure *shapes*
survive the down-scaling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datasets import (
    amazon_graph,
    amazon_views,
    citation_graph,
    citation_views,
    densification_graph,
    generate_views,
    query_from_views,
    random_graph,
    youtube_graph,
    youtube_views,
)
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.simulation import bounded_match, match
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition

_cache: Dict = {}

#: Pattern-size axes used by the paper's subfigures.
AMAZON_SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (6, 12), (8, 8), (8, 12), (8, 16)]
CITATION_SIZES = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)]
YOUTUBE_SIZES = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)]
CONTAINMENT_SIZES = [(6, 6), (6, 12), (7, 7), (7, 14), (8, 8), (8, 16), (9, 9), (9, 18), (10, 10), (10, 20)]


def _memo(key, factory):
    if key not in _cache:
        _cache[key] = factory()
    return _cache[key]


def clear_cache() -> None:
    _cache.clear()


# ----------------------------------------------------------------------
# Datasets with materialized view caches
# ----------------------------------------------------------------------
def amazon(scale: float = 1.0) -> Tuple[DataGraph, ViewSet]:
    def build():
        graph = amazon_graph(int(30_000 * scale), int(90_000 * scale), seed=11)
        views = amazon_views()
        views.materialize(graph)
        return graph, views

    return _memo(("amazon", scale), build)


def citation(scale: float = 1.0) -> Tuple[DataGraph, ViewSet]:
    def build():
        graph = citation_graph(int(25_000 * scale), int(60_000 * scale), seed=11)
        views = citation_views()
        views.materialize(graph)
        return graph, views

    return _memo(("citation", scale), build)


def youtube(scale: float = 1.0) -> Tuple[DataGraph, ViewSet]:
    def build():
        graph = youtube_graph(int(30_000 * scale), int(85_000 * scale), seed=11)
        views = youtube_views()
        views.materialize(graph)
        return graph, views

    return _memo(("youtube", scale), build)


def synthetic(num_nodes: int, bounded: bool = False) -> Tuple[DataGraph, ViewSet]:
    """Synthetic graph with |E| = 2|V| plus the 22-view suite."""
    def build():
        graph = random_graph(num_nodes, 2 * num_nodes, seed=17)
        views = generate_views(
            tuple(f"l{i}" for i in range(10)), 22, seed=17,
            bounded=bounded, max_bound=3,
        )
        views.materialize(graph)
        return graph, views

    return _memo(("synthetic", num_nodes, bounded), build)


def densification(num_nodes: int, alpha: float) -> Tuple[DataGraph, ViewSet]:
    def build():
        graph = densification_graph(num_nodes, alpha, seed=19)
        views = generate_views(tuple(f"l{i}" for i in range(10)), 22, seed=17)
        views.materialize(graph)
        return graph, views

    return _memo(("densification", num_nodes, alpha), build)


# ----------------------------------------------------------------------
# Bounded view suites (promotions of the simulation suites)
# ----------------------------------------------------------------------
def bounded_suite(views: ViewSet, bound: int, tag: str) -> ViewSet:
    """Promote every view of ``views`` to a bounded view with ``fe = bound``."""
    def build():
        promoted = ViewSet()
        for definition in views:
            pattern = definition.pattern
            bp = pattern.bounded(default=bound)
            promoted.add(ViewDefinition(f"{definition.name}@{bound}", bp))
        return promoted

    return _memo(("bounded_suite", tag, bound), build)


def bounded_dataset(
    name: str, bound: int, scale: float = 1.0
) -> Tuple[DataGraph, ViewSet]:
    """Dataset plus a materialized bounded view suite with edge bound k."""
    base = {"amazon": amazon, "citation": citation, "youtube": youtube}[name]

    def build():
        graph, plain_views = base(scale)
        views = bounded_suite(plain_views, bound, tag=f"{name}:{scale}")
        views.materialize(graph)
        return graph, views

    return _memo(("bounded_dataset", name, bound, scale), build)


def synthetic_bounded(num_nodes: int, bound: int) -> Tuple[DataGraph, ViewSet]:
    def build():
        graph, plain_views = synthetic(num_nodes)
        views = bounded_suite(plain_views, bound, tag=f"syn:{num_nodes}")
        views.materialize(graph)
        return graph, views

    return _memo(("synthetic_bounded", num_nodes, bound), build)


# ----------------------------------------------------------------------
# Query workloads
# ----------------------------------------------------------------------
def pick_query(
    views: ViewSet,
    num_nodes: int,
    num_edges: int,
    graph: Optional[DataGraph] = None,
    require_dag: bool = False,
    tag: str = "",
) -> Pattern:
    """A query of roughly the requested size, contained in ``views`` by
    construction; when ``graph`` is given, prefer a seed whose query has
    a nonempty answer so timing compares real work, not early exits."""
    def build():
        fallback = None
        for seed in range(12):
            query = query_from_views(
                views, num_nodes, num_edges, seed=seed, require_dag=require_dag
            )
            if fallback is None:
                fallback = query
            if graph is None:
                return query
            if isinstance(query, BoundedPattern):
                result = bounded_match(query, graph)
            else:
                result = match(query, graph)
            if result.result_size:
                return query
        return fallback

    return _memo(("query", tag, num_nodes, num_edges, require_dag), build)


def query_suite(
    views: ViewSet,
    sizes: List[Tuple[int, int]],
    graph: Optional[DataGraph] = None,
    require_dag: bool = False,
    tag: str = "",
) -> List[Tuple[Tuple[int, int], Pattern]]:
    return [
        (size, pick_query(views, size[0], size[1], graph=graph,
                          require_dag=require_dag, tag=tag))
        for size in sizes
    ]


def overlapping_views(seed: int = 17) -> Tuple[ViewSet, ViewSet]:
    """A view suite with *coverage overlap* for the minimum-vs-minimal
    experiment (Fig. 8(h)).

    Mirrors the paper's Fig. 4 setup: many small (1-2 edge) views listed
    first, plus a handful of large composite views (stitches of the
    small ones) listed last.  Algorithm ``minimal`` scans in order and
    accumulates small views; greedy ``minimum`` grabs the composites --
    which is exactly what separates card(minimum) from card(minimal).

    Returns ``(full_suite, composites_only)``; queries should be built
    from the composites so that every query edge is coverable both ways.
    """
    def build():
        labels = tuple(f"l{i}" for i in range(10))
        small = generate_views(labels, 22, seed=seed, name_prefix="S")
        composites = ViewSet()
        for index in range(6):
            pattern = query_from_views(small, 6, 8, seed=seed + 100 + index)
            composites.add(ViewDefinition(f"BIG{index}", pattern))
        full = ViewSet(list(small) + list(composites))
        return full, composites

    return _memo(("overlapping_views", seed), build)
