"""Run every Fig. 8 experiment and print (or save) the result tables.

Usage::

    python -m repro.bench.run_all                 # all experiments
    python -m repro.bench.run_all --only fig8a fig8g
    python -m repro.bench.run_all --scale 0.5     # quick half-size pass
    python -m repro.bench.run_all --out results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", nargs="*", default=None,
        help=f"experiment ids to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="size multiplier for graphs (default 1.0)",
    )
    parser.add_argument(
        "--out", default=None, help="also write the tables to this markdown file"
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render each experiment as an ASCII bar chart",
    )
    args = parser.parse_args(argv)

    chosen = args.only if args.only else list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    sections = []
    for name in chosen:
        start = time.perf_counter()
        table = EXPERIMENTS[name](args.scale)
        elapsed = time.perf_counter() - start
        table.print()
        if args.chart:
            from repro.bench.reporting import ascii_chart

            print(ascii_chart(table))
            print()
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        sections.append(table.to_markdown())

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"tables written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
