"""Serialization for view definitions and materialized extensions.

A view cache lives across processes (that is its point), so extensions
must round-trip to disk.  The JSON layout keeps the per-view-edge match
sets and, for bounded views, the distance index ``I(V)``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graph.io import (
    node_from_json as _node_from_json,
    node_to_json as _node_to_json,
    pattern_from_json,
    pattern_to_json,
)
from repro.views.storage import ViewSet
from repro.views.view import MaterializedView, ViewDefinition


def definition_to_json(definition: ViewDefinition) -> Dict[str, Any]:
    """Encode a view definition (name + defining pattern) as JSON."""
    return {
        "name": definition.name,
        "pattern": pattern_to_json(definition.pattern),
    }


def definition_from_json(doc: Dict[str, Any]) -> ViewDefinition:
    """Rebuild a :class:`ViewDefinition` written by
    :func:`definition_to_json` (bounded patterns included)."""
    return ViewDefinition(doc["name"], pattern_from_json(doc["pattern"]))


def extension_to_json(extension: MaterializedView) -> Dict[str, Any]:
    """Encode an extension ``V(G)`` -- per-view-edge match sets plus,
    for bounded views, the distance index ``I(V)`` (Section VI-A) --
    with deterministic ordering for stable diffs."""
    doc: Dict[str, Any] = {
        "definition": definition_to_json(extension.definition),
        "edge_matches": [
            {
                "edge": [_node_to_json(edge[0]), _node_to_json(edge[1])],
                "pairs": [
                    [_node_to_json(v), _node_to_json(w)] for v, w in sorted(pairs, key=repr)
                ],
            }
            for edge, pairs in extension.edge_matches.items()
        ],
    }
    if extension.distances is not None:
        doc["distances"] = [
            [_node_to_json(v), _node_to_json(w), d]
            for (v, w), d in sorted(extension.distances.items(), key=repr)
        ]
    return doc


def extension_from_json(doc: Dict[str, Any]) -> MaterializedView:
    """Rebuild a :class:`MaterializedView` written by
    :func:`extension_to_json`, restoring tuple node identities."""
    definition = definition_from_json(doc["definition"])
    edge_matches = {}
    for entry in doc["edge_matches"]:
        edge = (_node_from_json(entry["edge"][0]), _node_from_json(entry["edge"][1]))
        edge_matches[edge] = {
            (_node_from_json(v), _node_from_json(w)) for v, w in entry["pairs"]
        }
    distances = None
    if "distances" in doc:
        distances = {
            (_node_from_json(v), _node_from_json(w)): d
            for v, w, d in doc["distances"]
        }
    return MaterializedView(definition, edge_matches, distances=distances)


def write_viewset(views: ViewSet, path: Union[str, Path]) -> None:
    """Persist definitions and any materialized extensions."""
    doc = {
        "definitions": [definition_to_json(d) for d in views],
        "extensions": [
            extension_to_json(views.extension(name))
            for name in views.names()
            if views.is_materialized(name)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)


def read_viewset(path: Union[str, Path]) -> ViewSet:
    """Load a :class:`ViewSet` written by :func:`write_viewset`,
    re-installing any persisted extensions (so a cache materialized in
    one process is immediately usable by MatchJoin in another)."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    views = ViewSet(definition_from_json(d) for d in doc["definitions"])
    for ext_doc in doc.get("extensions", ()):
        views.set_extension(extension_from_json(ext_doc))
    return views
