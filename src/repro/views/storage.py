"""A named cache of view definitions and their materialized extensions.

``ViewSet`` plays the role of ``V`` / ``V(G)`` in the paper: an ordered
collection of view definitions, optionally materialized against a data
graph, with the size accounting used throughout Section VII ("the views
take 14.4% of ... the entire Amazon dataset", "no more than 4% of the
size of the Youtube graph").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.graph.digraph import DataGraph
from repro.views.view import MaterializedView, ViewDefinition, materialize


class ViewSet:
    """An ordered, name-keyed set of views with optional extensions."""

    def __init__(self, definitions: Optional[Iterable[ViewDefinition]] = None) -> None:
        self._definitions: Dict[str, ViewDefinition] = {}
        self._extensions: Dict[str, MaterializedView] = {}
        for definition in definitions or ():
            self.add(definition)

    # ------------------------------------------------------------------
    # Definition management
    # ------------------------------------------------------------------
    def add(self, definition: ViewDefinition) -> None:
        if definition.name in self._definitions:
            raise ValueError(f"duplicate view name {definition.name!r}")
        self._definitions[definition.name] = definition

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(self._definitions.values())

    def definition(self, name: str) -> ViewDefinition:
        return self._definitions[name]

    def definitions(self) -> List[ViewDefinition]:
        return list(self._definitions.values())

    def names(self) -> List[str]:
        return list(self._definitions)

    def subset(self, names: Iterable[str]) -> "ViewSet":
        """A new ViewSet over the given definitions, sharing extensions."""
        chosen = ViewSet(self._definitions[name] for name in names)
        for name in chosen.names():
            if name in self._extensions:
                chosen._extensions[name] = self._extensions[name]
        return chosen

    # ------------------------------------------------------------------
    # Size accounting (Table I)
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """``card(V)``: number of view definitions."""
        return len(self._definitions)

    @property
    def definition_size(self) -> int:
        """``|V|``: total size of all view definitions."""
        return sum(d.size for d in self._definitions.values())

    @property
    def extension_size(self) -> int:
        """``|V(G)|``: total size of all materialized extensions."""
        return sum(e.size for e in self._extensions.values())

    def extension_fraction(self, graph: DataGraph) -> float:
        """``|V(G)| / |G|`` -- the fractions quoted in Section VII."""
        return self.extension_size / graph.size if graph.size else 0.0

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, graph: DataGraph, names: Optional[Iterable[str]] = None) -> None:
        """Materialize (cache) extensions for the given views on ``graph``."""
        for name in names if names is not None else list(self._definitions):
            self._extensions[name] = materialize(self._definitions[name], graph)

    def is_materialized(self, name: str) -> bool:
        return name in self._extensions

    def extension(self, name: str) -> MaterializedView:
        if name not in self._extensions:
            raise KeyError(
                f"view {name!r} has no materialized extension; call "
                "materialize() first"
            )
        return self._extensions[name]

    def extensions(self) -> Dict[str, MaterializedView]:
        return dict(self._extensions)

    def set_extension(self, extension: MaterializedView) -> None:
        """Install an externally built/maintained extension."""
        if extension.name not in self._definitions:
            raise KeyError(f"unknown view {extension.name!r}")
        self._extensions[extension.name] = extension

    def drop_extension(self, name: str) -> None:
        self._extensions.pop(name, None)

    def __repr__(self) -> str:
        return (
            f"ViewSet(card={self.cardinality}, "
            f"materialized={len(self._extensions)})"
        )
