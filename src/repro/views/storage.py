"""A named cache of view definitions and their materialized extensions.

``ViewSet`` plays the role of ``V`` / ``V(G)`` in the paper: an ordered
collection of view definitions, optionally materialized against a data
graph, with the size accounting used throughout Section VII ("the views
take 14.4% of ... the entire Amazon dataset", "no more than 4% of the
size of the Youtube graph").
"""

from __future__ import annotations

import logging
import warnings
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.views.view import MaterializedView, ViewDefinition, materialize

log = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.views.maintenance import Delta, DeltaReport, IncrementalViewSet


class ViewSet:
    """An ordered, name-keyed set of views with optional extensions.

    Every mutation -- adding a definition, materializing, installing or
    dropping an extension -- bumps :attr:`version`, a monotonically
    increasing counter, and stamps the touched view's *per-view*
    version (:meth:`view_version`) with it.  Consumers that cache
    anything derived from the catalog (notably
    :class:`~repro.engine.engine.QueryEngine`) embed version stamps in
    their cache keys -- the engine keys each answer on the
    :meth:`version_vector` of exactly the views its plan reads, so a
    maintenance update only strands the answers that actually depended
    on a changed view.

    A ViewSet can also *own* its maintenance backend: :meth:`track`
    builds an :class:`~repro.views.maintenance.IncrementalViewSet` over
    the current definitions, and :meth:`apply_delta` routes update
    batches through it, re-importing only the extensions the batch
    changed (so unchanged views keep their version stamps and dependent
    cached answers stay live).
    """

    def __init__(self, definitions: Optional[Iterable[ViewDefinition]] = None) -> None:
        self._definitions: Dict[str, ViewDefinition] = {}
        self._extensions: Dict[str, MaterializedView] = {}
        self._version = 0
        self._definitions_version = 0
        self._view_versions: Dict[str, int] = {}
        self._maintenance: Optional["IncrementalViewSet"] = None
        self._maintenance_seq = 0
        self._stale: Set[str] = set()
        for definition in definitions or ():
            self.add(definition)

    @property
    def version(self) -> int:
        """Mutation counter: increases on every definition or extension
        change (the cache-invalidation token for cached *answers*)."""
        return self._version

    @property
    def definitions_version(self) -> int:
        """Counter bumped only when the definitions change.  Containment
        decisions (Theorem 3) depend on definitions alone, so caches of
        λ mappings key on this and survive extension refreshes."""
        return self._definitions_version

    def view_version(self, name: str) -> int:
        """The per-view version stamp of view ``name``.

        Stamps are the value of the global :attr:`version` counter at
        the view's last definition/extension change, so they are unique
        across views and across a view's whole lifetime (including
        remove / re-add cycles) -- two equal stamps always denote the
        same extension state.  Raises ``KeyError`` for unknown views.
        """
        if name not in self._definitions:
            raise KeyError(f"unknown view {name!r}")
        return self._view_versions[name]

    def version_vector(self, names: Optional[Iterable[str]] = None) -> Tuple[int, ...]:
        """The per-view stamps of the given views (default: all), in
        the given order -- the cache-key material for consumers that
        read exactly those views."""
        return tuple(
            self.view_version(name)
            for name in (names if names is not None else self._definitions)
        )

    def _stamp(self, name: str) -> None:
        self._version += 1
        self._view_versions[name] = self._version

    # ------------------------------------------------------------------
    # Definition management
    # ------------------------------------------------------------------
    def add(self, definition: ViewDefinition) -> None:
        """Register a new view definition (names must be unique)."""
        if definition.name in self._definitions:
            raise ValueError(f"duplicate view name {definition.name!r}")
        self._definitions[definition.name] = definition
        self._stamp(definition.name)
        self._definitions_version += 1

    def remove(self, name: str) -> None:
        """Evict view ``name``: drop the definition *and* any cached
        extension.

        Raises ``KeyError`` when no such definition exists.  Bumps both
        :attr:`version` and :attr:`definitions_version` -- removing a
        view can change containment decisions (a query that was only
        coverable through it must now plan differently), so cached λ
        mappings and cached answers both become unreachable.
        """
        if name not in self._definitions:
            raise KeyError(f"unknown view {name!r}")
        del self._definitions[name]
        self._extensions.pop(name, None)
        self._view_versions.pop(name, None)
        self._stale.discard(name)
        self._version += 1
        self._definitions_version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(self._definitions.values())

    def definition(self, name: str) -> ViewDefinition:
        """The definition registered under ``name`` (KeyError if absent)."""
        return self._definitions[name]

    def definitions(self) -> List[ViewDefinition]:
        """All definitions, in registration order (the ``V`` of the paper)."""
        return list(self._definitions.values())

    def names(self) -> List[str]:
        """View names in registration order."""
        return list(self._definitions)

    def subset(self, names: Iterable[str]) -> "ViewSet":
        """A new ViewSet over the given definitions, sharing extensions."""
        chosen = ViewSet(self._definitions[name] for name in names)
        for name in chosen.names():
            if name in self._extensions:
                chosen._extensions[name] = self._extensions[name]
        return chosen

    # ------------------------------------------------------------------
    # Size accounting (Table I)
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """``card(V)``: number of view definitions."""
        return len(self._definitions)

    @property
    def definition_size(self) -> int:
        """``|V|``: total size of all view definitions."""
        return sum(d.size for d in self._definitions.values())

    @property
    def extension_size(self) -> int:
        """``|V(G)|``: total size of all materialized extensions."""
        return sum(e.size for e in self._extensions.values())

    def extension_fraction(self, graph: DataGraph) -> float:
        """``|V(G)| / |G|`` -- the fractions quoted in Section VII."""
        return self.extension_size / graph.size if graph.size else 0.0

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, graph: DataGraph, names: Optional[Iterable[str]] = None) -> None:
        """Materialize (cache) extensions for the given views on ``graph``.

        Evaluates each view on ``G`` and stores ``V(G)`` (Section II-B);
        defaults to all definitions.  Bumps :attr:`version`.

        ``graph`` may be a mutable :class:`DataGraph`, a frozen
        :class:`~repro.graph.compact.CompactGraph`, or a
        :class:`~repro.shard.sharded.ShardedGraph`.  Against a snapshot
        (sharded or not), simulation extensions are bound to its id
        space (the snapshot token recorded in :attr:`snapshot_token`),
        which is what unlocks the MatchJoin integer fast path at query
        time.  For shard-parallel materialization with a worker pool,
        use :func:`repro.shard.materialize.parallel_materialize`, which
        installs the same extensions through :meth:`set_extension`.
        """
        for name in names if names is not None else list(self._definitions):
            started = perf_counter()
            self._extensions[name] = materialize(self._definitions[name], graph)
            self._stale.discard(name)
            self._stamp(name)
            log.debug(
                "materialized view %s: %d items in %.1f ms",
                name,
                self._extensions[name].size,
                (perf_counter() - started) * 1e3,
            )

    @property
    def snapshot_token(self) -> Optional[int]:
        """The snapshot token shared by *every* materialized extension,
        or ``None`` when there are no extensions, any extension is not
        snapshot-bound (materialized from a mutable graph), or
        the extensions come from different snapshots.  Derived from the
        extensions themselves, so partial re-materializations can never
        misreport the catalog's provenance."""
        token: Optional[int] = None
        if not self._extensions:
            return None
        for extension in self._extensions.values():
            compact = extension.compact
            if compact is None:
                return None
            if token is None:
                token = compact.token
            elif compact.token != token:
                return None
        return token

    def is_materialized(self, name: str) -> bool:
        """Whether view ``name`` currently has a cached extension."""
        return name in self._extensions

    def extension(self, name: str) -> MaterializedView:
        """The cached extension ``V(G)`` of view ``name``.

        Raises ``KeyError`` when the view was never materialized --
        MatchJoin runs on extensions only (Theorem 1), so there is no
        silent fallback to evaluating the view.
        """
        if name not in self._extensions:
            raise KeyError(
                f"view {name!r} has no materialized extension; call "
                "materialize() first"
            )
        return self._extensions[name]

    def extensions(self) -> Dict[str, MaterializedView]:
        """A name-keyed snapshot of every cached extension."""
        return dict(self._extensions)

    def set_extension(self, extension: MaterializedView) -> None:
        """Install an externally built/maintained extension.

        The entry point for incremental maintenance (Section I cites
        [15]): a fresh extension replaces the stale one and bumps
        :attr:`version` so dependent caches invalidate.
        """
        if extension.name not in self._definitions:
            raise KeyError(f"unknown view {extension.name!r}")
        self._extensions[extension.name] = extension
        self._stale.discard(extension.name)
        self._stamp(extension.name)

    def rebind_extension(self, extension: MaterializedView) -> None:
        """Install a *logically identical* extension without bumping any
        version counter.

        The provenance-only sibling of :meth:`set_extension`: the match
        sets must be unchanged and only the id-space payload differs
        (re-stamped onto a refreshed snapshot via
        :meth:`~repro.views.view.CompactExtension.rebound` or
        :func:`~repro.views.view.bind_extension`).  Because no version
        moves, cached answers over the view stay live -- which is the
        point: snapshot refreshes must not masquerade as data changes.
        """
        if extension.name not in self._definitions:
            raise KeyError(f"unknown view {extension.name!r}")
        if extension.name not in self._extensions:
            raise KeyError(
                f"view {extension.name!r} has no extension to rebind"
            )
        self._extensions[extension.name] = extension

    def drop_extension(self, name: str) -> None:
        """Forget a cached extension (no-op when not materialized)."""
        if self._extensions.pop(name, None) is not None:
            self._stale.discard(name)
            self._stamp(name)

    # ------------------------------------------------------------------
    # Staleness (the bounded-view maintenance contract)
    # ------------------------------------------------------------------
    def mark_stale(self, name: str) -> None:
        """Flag view ``name``'s cached extension as stale and bump its
        version stamp (evicting dependent cached answers).

        The staleness contract exists for **bounded views**: their
        extensions shift non-locally under edge updates (every
        distance in ``I(V)`` can change), so the maintenance pipeline
        cannot refresh them incrementally -- instead it marks them
        stale, and readers (notably
        :class:`~repro.engine.engine.QueryEngine`) rematerialize a
        stale view from the refreshed graph before the next use.  The
        extension object itself is *kept* (``extension(name)`` still
        returns it) so that callers who explicitly want the
        last-materialized state can read it; :meth:`is_stale` is the
        signal that it no longer reflects the graph.
        """
        if name not in self._definitions:
            raise KeyError(f"unknown view {name!r}")
        if name in self._extensions:
            self._stale.add(name)
            self._stamp(name)

    def is_stale(self, name: str) -> bool:
        """Whether view ``name``'s cached extension is flagged stale
        (always ``False`` when nothing is materialized)."""
        return name in self._stale

    def stale_views(self) -> Tuple[str, ...]:
        """Names of every stale-flagged view, in registration order."""
        return tuple(name for name in self._definitions if name in self._stale)

    # ------------------------------------------------------------------
    # Maintenance backend (the delta pipeline's view layer)
    # ------------------------------------------------------------------
    @property
    def maintenance(self) -> Optional["IncrementalViewSet"]:
        """The owned maintenance backend (``None`` until :meth:`track`)."""
        return self._maintenance

    def track(
        self, graph: DataGraph, *, budget: Optional[int] = None
    ) -> "IncrementalViewSet":
        """Own a maintenance backend over ``graph`` for the current
        simulation definitions.

        Builds an :class:`~repro.views.maintenance.IncrementalViewSet`
        (which copies ``graph``), imports its freshly materialized
        extensions, and returns it.  From here on,
        :meth:`apply_delta` keeps the cached extensions consistent
        under edge updates, re-importing (and version-stamping) only
        the views each batch actually changed.  ``budget`` is the
        affected-area budget for incremental insertions.

        Bounded views cannot be maintained incrementally (their
        extensions shift non-locally with distances) and are **not
        tracked**: the tracker records their names in
        ``skipped_bounded`` and a :class:`UserWarning` is emitted so
        callers learn those views are unmaintained.  After each
        graph-changing :meth:`apply_delta`, skipped bounded views with
        cached extensions are flagged stale (:meth:`is_stale`) with
        their version stamps bumped, and must be rematerialized before
        the next read.  Definitions added after this call are likewise
        not maintained.
        """
        from repro.views.maintenance import IncrementalViewSet

        if self._maintenance is not None:
            raise ValueError("a maintenance backend is already attached")
        tracker = IncrementalViewSet(
            self._definitions.values(), graph, budget=budget
        )
        if tracker.skipped_bounded:
            warnings.warn(
                "bounded views are not maintained incrementally and were "
                f"skipped by track(): {', '.join(tracker.skipped_bounded)}; "
                "apply_delta() will flag them stale -- rematerialize "
                "before reading them after updates",
                UserWarning,
                stacklevel=2,
            )
        self._maintenance = tracker
        self._maintenance_seq = tracker.seq
        for name in tracker.names():
            self.set_extension(tracker.extension(name))
        return tracker

    def apply_delta(self, delta: "Delta") -> "DeltaReport":
        """Apply an update batch through the owned maintenance backend.

        Routes ``delta`` to the tracker, then re-imports extensions for
        exactly the views the batch changed -- each import bumps that
        view's version stamp (and the global :attr:`version`), so
        cached answers reading a changed view become unreachable while
        answers over untouched views stay live.  Requires
        :meth:`track` first.

        Bounded views are not maintained by the tracker; when the batch
        actually changed the graph (``applied > 0``), every bounded
        view with a cached extension is flagged stale via
        :meth:`mark_stale` -- bumping its version stamp so dependent
        cached answers are evicted -- and reported in the returned
        :class:`~repro.views.maintenance.DeltaReport` as
        ``stale_bounded``.
        """
        if self._maintenance is None:
            raise ValueError(
                "no maintenance backend attached; call track(graph) first"
            )
        report = self._maintenance.apply_delta(delta)
        self.import_maintenance()
        if report.applied:
            stale = tuple(
                name
                for name, definition in self._definitions.items()
                if definition.is_bounded and self.is_stale(name)
            )
            if stale:
                report = report._replace(stale_bounded=stale)
                from repro.obs.metrics import get_registry

                get_registry().counter(
                    "repro_maintenance_stale_bounded_total"
                ).inc(len(stale))
                log.info(
                    "delta left %d bounded view(s) stale: %s",
                    len(stale), ", ".join(sorted(map(str, stale))),
                )
        return report

    def import_maintenance(self) -> List[str]:
        """Pull pending extension refreshes from the owned backend.

        Returns the names imported.  Normally :meth:`apply_delta` calls
        this; it is exposed for consumers that drive the tracker
        directly (single ``insert_edge`` / ``delete_edge`` calls).

        Whenever the tracker applied *any* update since the last sync
        (its ``seq`` advanced), every materialized bounded view is
        flagged stale here -- this is the single choke point both the
        batch and the direct-drive paths go through, so bounded
        staleness cannot be bypassed by driving the tracker by hand."""
        tracker = self._maintenance
        if tracker is None:
            return []
        advanced = tracker.seq > self._maintenance_seq
        changed = tracker.changed_since(self._maintenance_seq)
        self._maintenance_seq = tracker.seq
        for name in changed:
            self.set_extension(tracker.extension(name))
        if advanced:
            for name, definition in self._definitions.items():
                if definition.is_bounded and name in self._extensions:
                    self.mark_stale(name)
        return changed

    def __repr__(self) -> str:
        return (
            f"ViewSet(card={self.cardinality}, "
            f"materialized={len(self._extensions)})"
        )
