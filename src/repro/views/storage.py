"""A named cache of view definitions and their materialized extensions.

``ViewSet`` plays the role of ``V`` / ``V(G)`` in the paper: an ordered
collection of view definitions, optionally materialized against a data
graph, with the size accounting used throughout Section VII ("the views
take 14.4% of ... the entire Amazon dataset", "no more than 4% of the
size of the Youtube graph").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.graph.digraph import DataGraph
from repro.views.view import MaterializedView, ViewDefinition, materialize


class ViewSet:
    """An ordered, name-keyed set of views with optional extensions.

    Every mutation -- adding a definition, materializing, installing or
    dropping an extension -- bumps :attr:`version`, a monotonically
    increasing counter.  Consumers that cache anything derived from the
    catalog (notably :class:`~repro.engine.engine.QueryEngine`) embed
    the version in their cache keys, so stale entries are unreachable
    by construction after any catalog change.
    """

    def __init__(self, definitions: Optional[Iterable[ViewDefinition]] = None) -> None:
        self._definitions: Dict[str, ViewDefinition] = {}
        self._extensions: Dict[str, MaterializedView] = {}
        self._version = 0
        self._definitions_version = 0
        for definition in definitions or ():
            self.add(definition)

    @property
    def version(self) -> int:
        """Mutation counter: increases on every definition or extension
        change (the cache-invalidation token for cached *answers*)."""
        return self._version

    @property
    def definitions_version(self) -> int:
        """Counter bumped only when the definitions change.  Containment
        decisions (Theorem 3) depend on definitions alone, so caches of
        λ mappings key on this and survive extension refreshes."""
        return self._definitions_version

    # ------------------------------------------------------------------
    # Definition management
    # ------------------------------------------------------------------
    def add(self, definition: ViewDefinition) -> None:
        """Register a new view definition (names must be unique)."""
        if definition.name in self._definitions:
            raise ValueError(f"duplicate view name {definition.name!r}")
        self._definitions[definition.name] = definition
        self._version += 1
        self._definitions_version += 1

    def remove(self, name: str) -> None:
        """Evict view ``name``: drop the definition *and* any cached
        extension.

        Raises ``KeyError`` when no such definition exists.  Bumps both
        :attr:`version` and :attr:`definitions_version` -- removing a
        view can change containment decisions (a query that was only
        coverable through it must now plan differently), so cached λ
        mappings and cached answers both become unreachable.
        """
        if name not in self._definitions:
            raise KeyError(f"unknown view {name!r}")
        del self._definitions[name]
        self._extensions.pop(name, None)
        self._version += 1
        self._definitions_version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(self._definitions.values())

    def definition(self, name: str) -> ViewDefinition:
        """The definition registered under ``name`` (KeyError if absent)."""
        return self._definitions[name]

    def definitions(self) -> List[ViewDefinition]:
        """All definitions, in registration order (the ``V`` of the paper)."""
        return list(self._definitions.values())

    def names(self) -> List[str]:
        """View names in registration order."""
        return list(self._definitions)

    def subset(self, names: Iterable[str]) -> "ViewSet":
        """A new ViewSet over the given definitions, sharing extensions."""
        chosen = ViewSet(self._definitions[name] for name in names)
        for name in chosen.names():
            if name in self._extensions:
                chosen._extensions[name] = self._extensions[name]
        return chosen

    # ------------------------------------------------------------------
    # Size accounting (Table I)
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """``card(V)``: number of view definitions."""
        return len(self._definitions)

    @property
    def definition_size(self) -> int:
        """``|V|``: total size of all view definitions."""
        return sum(d.size for d in self._definitions.values())

    @property
    def extension_size(self) -> int:
        """``|V(G)|``: total size of all materialized extensions."""
        return sum(e.size for e in self._extensions.values())

    def extension_fraction(self, graph: DataGraph) -> float:
        """``|V(G)| / |G|`` -- the fractions quoted in Section VII."""
        return self.extension_size / graph.size if graph.size else 0.0

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, graph: DataGraph, names: Optional[Iterable[str]] = None) -> None:
        """Materialize (cache) extensions for the given views on ``graph``.

        Evaluates each view on ``G`` and stores ``V(G)`` (Section II-B);
        defaults to all definitions.  Bumps :attr:`version`.

        ``graph`` may be a mutable :class:`DataGraph`, a frozen
        :class:`~repro.graph.compact.CompactGraph`, or a
        :class:`~repro.shard.sharded.ShardedGraph`.  Against a snapshot
        (sharded or not), simulation extensions are bound to its id
        space (the snapshot token recorded in :attr:`snapshot_token`),
        which is what unlocks the MatchJoin integer fast path at query
        time.  For shard-parallel materialization with a worker pool,
        use :func:`repro.shard.materialize.parallel_materialize`, which
        installs the same extensions through :meth:`set_extension`.
        """
        for name in names if names is not None else list(self._definitions):
            self._extensions[name] = materialize(self._definitions[name], graph)
            self._version += 1

    @property
    def snapshot_token(self) -> Optional[int]:
        """The snapshot token shared by *every* materialized extension,
        or ``None`` when there are no extensions, any extension is not
        snapshot-bound (mutable-graph or bounded materialization), or
        the extensions come from different snapshots.  Derived from the
        extensions themselves, so partial re-materializations can never
        misreport the catalog's provenance."""
        token: Optional[int] = None
        if not self._extensions:
            return None
        for extension in self._extensions.values():
            compact = extension.compact
            if compact is None:
                return None
            if token is None:
                token = compact.token
            elif compact.token != token:
                return None
        return token

    def is_materialized(self, name: str) -> bool:
        """Whether view ``name`` currently has a cached extension."""
        return name in self._extensions

    def extension(self, name: str) -> MaterializedView:
        """The cached extension ``V(G)`` of view ``name``.

        Raises ``KeyError`` when the view was never materialized --
        MatchJoin runs on extensions only (Theorem 1), so there is no
        silent fallback to evaluating the view.
        """
        if name not in self._extensions:
            raise KeyError(
                f"view {name!r} has no materialized extension; call "
                "materialize() first"
            )
        return self._extensions[name]

    def extensions(self) -> Dict[str, MaterializedView]:
        """A name-keyed snapshot of every cached extension."""
        return dict(self._extensions)

    def set_extension(self, extension: MaterializedView) -> None:
        """Install an externally built/maintained extension.

        The entry point for incremental maintenance (Section I cites
        [15]): a fresh extension replaces the stale one and bumps
        :attr:`version` so dependent caches invalidate.
        """
        if extension.name not in self._definitions:
            raise KeyError(f"unknown view {extension.name!r}")
        self._extensions[extension.name] = extension
        self._version += 1

    def drop_extension(self, name: str) -> None:
        """Forget a cached extension (no-op when not materialized)."""
        if self._extensions.pop(name, None) is not None:
            self._version += 1

    def __repr__(self) -> str:
        return (
            f"ViewSet(card={self.cardinality}, "
            f"materialized={len(self._extensions)})"
        )
