"""View definitions and materialized view extensions.

A :class:`ViewDefinition` wraps a (bounded) pattern with a stable name.
:func:`materialize` evaluates it on a data graph and returns a
:class:`MaterializedView` -- the view extension ``V(G)``: for every view
edge ``e``, the match set ``Se`` (data-graph edges for simulation views,
node pairs for bounded views), plus the distance index ``I(V)`` mapping
each materialized pair to its actual shortest-path distance in ``G``
(bounded views only; Section VI-A).

The extension deliberately does *not* keep a reference to ``G``:
MatchJoin must run "without accessing G at all" (Theorem 1), and keeping
the graph out of the extension object makes that guarantee structural.

Materializing against a frozen :class:`~repro.graph.compact.CompactGraph`
snapshot additionally attaches a :class:`CompactExtension` -- the same
match sets in the snapshot's integer-id space, pre-grouped by source and
by target, stamped with the snapshot's token/version.  MatchJoin
recognises extensions that share a snapshot and runs its fixpoint
directly on the id-space indexes (still never touching adjacency, so
Theorem 1's guarantee is intact).
"""

from __future__ import annotations

import sys
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.simulation.bounded import bounded_match_with_distances
from repro.simulation.compact_engine import IdEdgeMatches, compact_match_with_ids
from repro.simulation.simulation import match as _match

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]


class CompactExtension:
    """Id-space form of one extension, bound to one snapshot.

    Attributes
    ----------
    token / version:
        The owning snapshot's :attr:`snapshot_token` /
        :attr:`snapshot_version`.  Two extensions exchange raw ids only
        when their tokens agree.
    nodes:
        The id -> node key decode table, shared by reference with the
        snapshot (and with every sibling extension of the same
        snapshot).
    by_source / by_target:
        ``{view edge: {id: set of ids}}`` -- the match sets grouped both
        ways, ready for the MatchJoin fixpoint.  Treated as immutable;
        consumers copy before refining.
    distances:
        For bounded views, the id-space distance index ``I(V)``:
        ``{(source id, target id): distance}`` over every materialized
        pair, minimized across view edges -- the same semantics as
        :attr:`MaterializedView.distances`, so BMatchJoin's id-space
        bound filtering is pair-for-pair identical to the node-key
        path.  ``None`` for simulation views (pairs are data edges,
        distance 1 by construction).
    """

    __slots__ = (
        "token",
        "version",
        "nodes",
        "by_source",
        "by_target",
        "distances",
    )

    def __init__(
        self,
        snapshot: CompactGraph,
        id_matches: IdEdgeMatches,
        by_target: Optional[IdEdgeMatches] = None,
        distances: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> None:
        self.token = snapshot.snapshot_token
        self.version = snapshot.snapshot_version
        self.nodes: List[Node] = snapshot.node_table
        self.by_source: IdEdgeMatches = id_matches
        if by_target is None:
            by_target = {}
            for edge, grouped in id_matches.items():
                reverse: Dict[int, Set[int]] = {}
                for v, targets in grouped.items():
                    for w in targets:
                        reverse.setdefault(w, set()).add(v)
                by_target[edge] = reverse
        self.by_target = by_target
        self.distances = distances

    def rebound(self, snapshot) -> "CompactExtension":
        """The same match sets re-stamped onto ``snapshot``.

        Valid only when ``snapshot`` *extends* this payload's id space
        -- i.e. it was refreshed from the snapshot this extension was
        materialized against (``snapshot.extends_token == self.token``),
        which guarantees every pre-existing node kept its id.  The
        maintenance pipeline uses this to keep the MatchJoin fast path
        engaged for views an update did not touch, at zero cost.
        """
        if getattr(snapshot, "extends_token", None) != self.token:
            raise ValueError(
                "snapshot does not extend this extension's id space; "
                "re-materialize or bind_extension() instead"
            )
        clone = CompactExtension.__new__(CompactExtension)
        clone.token = snapshot.snapshot_token
        clone.version = snapshot.snapshot_version
        clone.nodes = snapshot.node_table
        clone.by_source = self.by_source
        clone.by_target = self.by_target
        clone.distances = self.distances
        return clone


class ViewDefinition:
    """A named view: a (bounded) graph pattern query used as a view.

    Parameters
    ----------
    name:
        Unique identifier used by caches and reports.
    pattern:
        The defining :class:`Pattern` or :class:`BoundedPattern`.
    """

    __slots__ = ("name", "pattern")

    def __init__(self, name: str, pattern: Pattern) -> None:
        if not name:
            raise ValueError("view name must be non-empty")
        if pattern.num_edges == 0:
            raise ValueError(
                f"view {name!r} has no edges; edge-less views cannot "
                "contribute match sets"
            )
        self.name = name
        self.pattern = pattern

    @property
    def is_bounded(self) -> bool:
        """Whether this is a bounded view (Section VI): its edges match
        paths up to a bound, and its extension carries ``I(V)``."""
        return isinstance(self.pattern, BoundedPattern)

    @property
    def size(self) -> int:
        """``|V|`` for a single definition: nodes + edges."""
        return self.pattern.size

    def __repr__(self) -> str:
        kind = "bounded" if self.is_bounded else "simulation"
        return (
            f"ViewDefinition({self.name!r}, {kind}, "
            f"nodes={self.pattern.num_nodes}, edges={self.pattern.num_edges})"
        )


class MaterializedView:
    """The extension ``V(G)`` of a view in some data graph.

    Attributes
    ----------
    definition:
        The :class:`ViewDefinition` this extension belongs to.
    edge_matches:
        ``{view edge: Se}``; empty sets everywhere when the view did not
        match the graph.
    distances:
        For bounded views, ``{(v, v'): d}`` over all materialized pairs
        -- the index ``I(V)``.  ``None`` for simulation views, whose
        pairs are data edges (distance 1 by construction).
    compact:
        Optional :class:`CompactExtension` carrying the same match sets
        in snapshot id space (set when the view was materialized
        against a :class:`~repro.graph.compact.CompactGraph`).
    """

    __slots__ = ("definition", "edge_matches", "distances", "compact", "_size")

    def __init__(
        self,
        definition: ViewDefinition,
        edge_matches: Dict[PEdge, Set[NodePair]],
        distances: Optional[Dict[NodePair, int]] = None,
        compact: Optional[CompactExtension] = None,
    ) -> None:
        self.definition = definition
        self.edge_matches = edge_matches
        self.distances = distances
        self.compact = compact
        self._size: Optional[int] = None

    @property
    def snapshot_version(self) -> Optional[int]:
        """Version of the snapshot this extension was materialized
        against (``None`` when built from a mutable graph)."""
        return self.compact.version if self.compact is not None else None

    @property
    def name(self) -> str:
        """Name of the owning view definition (the cache key)."""
        return self.definition.name

    @property
    def is_empty(self) -> bool:
        """True when the view did not match ``G`` (every ``Se`` empty)."""
        return not any(self.edge_matches.values())

    @property
    def num_pairs(self) -> int:
        """Total number of materialized pairs across all view edges."""
        return sum(len(pairs) for pairs in self.edge_matches.values())

    @property
    def size(self) -> int:
        """``|V(G)|`` contribution: nodes touched + pairs stored.

        Computed once and cached: the match sets are fixed at
        construction (maintenance builds fresh extensions rather than
        mutating them in place), and the adaptive planner reads sizes
        on every plan, so recounting pairs each time would dominate
        planning cost.
        """
        if self._size is None:
            nodes: Set[Node] = set()
            for pairs in self.edge_matches.values():
                for v, w in pairs:
                    nodes.add(v)
                    nodes.add(w)
            self._size = len(nodes) + self.num_pairs
        return self._size

    def pairs_of(self, view_edge: PEdge) -> Set[NodePair]:
        """The match set ``Se`` of one view edge -- what MatchJoin's
        merge step (Fig. 2 lines 1-4) unions over λ-images."""
        return self.edge_matches[view_edge]

    def distance_of(self, pair: NodePair) -> int:
        """``I(V)`` lookup: actual distance of a materialized pair."""
        if self.distances is None:
            return 1
        return self.distances[pair]

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, pairs={self.num_pairs})"


def materialize(definition: ViewDefinition, graph: DataGraph) -> MaterializedView:
    """Evaluate a view on ``G`` and build its extension.

    Simulation views store the match sets of the unique maximum match;
    bounded views additionally store the distance index ``I(V)``.
    ``graph`` may be a frozen :class:`CompactGraph` or a
    :class:`~repro.shard.sharded.ShardedGraph`, in which case
    simulation extensions also carry the id-space
    :class:`CompactExtension` payload for the MatchJoin fast path
    (composite ids for sharded graphs, computed shard by shard).
    """
    pattern = definition.pattern
    # Shard layer dispatch (sys.modules probe: if the shard subpackage
    # was never imported, graph cannot be a ShardedGraph).
    shard_module = sys.modules.get("repro.shard.sharded")
    sharded = shard_module is not None and isinstance(
        graph, shard_module.ShardedGraph
    )
    if isinstance(pattern, BoundedPattern):
        if sharded:
            from repro.shard.materialize import materialize_bounded_view

            return materialize_bounded_view(definition, graph)
        if isinstance(graph, CompactGraph):
            return _flatten_if_shared(
                _materialize_bounded_compact(definition, graph), graph
            )
        result, per_edge_distances = bounded_match_with_distances(pattern, graph)
        if not result:
            return MaterializedView(
                definition,
                {edge: set() for edge in pattern.edges()},
                distances={},
            )
        index: Dict[NodePair, int] = {}
        for pair_distances in per_edge_distances.values():
            for pair, distance in pair_distances.items():
                previous = index.get(pair)
                if previous is None or distance < previous:
                    index[pair] = distance
        return MaterializedView(definition, result.edge_matches, distances=index)
    if sharded:
        from repro.shard.materialize import materialize_view

        return materialize_view(definition, graph)
    if isinstance(graph, CompactGraph):
        result, id_matches = compact_match_with_ids(pattern, graph)
        if id_matches is None:
            id_matches = {edge: {} for edge in pattern.edges()}
        compact = CompactExtension(graph, id_matches)
        if not result:
            return _flatten_if_shared(
                MaterializedView(
                    definition,
                    {edge: set() for edge in pattern.edges()},
                    compact=compact,
                ),
                graph,
            )
        return _flatten_if_shared(
            MaterializedView(definition, result.edge_matches, compact=compact),
            graph,
        )
    result = _match(pattern, graph)
    if not result:
        return MaterializedView(
            definition, {edge: set() for edge in pattern.edges()}
        )
    return MaterializedView(definition, result.edge_matches)


def _flatten_if_shared(view: MaterializedView, graph: CompactGraph):
    """Upgrade to a flat-buffer extension when the snapshot is shared
    (pickles as a segment handle; see :mod:`repro.views.flatpack`)."""
    from repro.graph.flatbuf import SharedCompactGraph

    if not isinstance(graph, SharedCompactGraph):
        return view
    from repro.views.flatpack import flatten_view

    return flatten_view(view, graph)


def decode_distance_index(
    id_distances: Dict[Tuple[int, int], int], nodes: List[Node]
) -> Dict[NodePair, int]:
    """Decode an id-space distance index to node keys (one table pass)."""
    decode = nodes.__getitem__
    return {
        (decode(v), decode(w)): d for (v, w), d in id_distances.items()
    }


def _materialize_bounded_compact(
    definition: ViewDefinition, graph: CompactGraph
) -> MaterializedView:
    """Bounded materialization against a frozen snapshot.

    Runs the id-space bounded engine and attaches a
    :class:`CompactExtension` whose :attr:`~CompactExtension.distances`
    carries the distance index ``I(V)`` in id space -- built during
    materialization, never re-derived per query -- so the BMatchJoin
    fast path can bound-filter without decoding a single pair.  The
    node-key index stored on the :class:`MaterializedView` is decoded
    from the same id-space table, so the two views of ``I(V)`` cannot
    drift.
    """
    from repro.simulation.compact_bounded import compact_bounded_match_with_ids

    pattern = definition.pattern
    result, id_matches, id_distances = compact_bounded_match_with_ids(
        pattern, graph, with_distances=True
    )
    if id_matches is None:
        empty_ids: IdEdgeMatches = {edge: {} for edge in pattern.edges()}
        return MaterializedView(
            definition,
            {edge: set() for edge in pattern.edges()},
            distances={},
            compact=CompactExtension(graph, empty_ids, distances={}),
        )
    compact = CompactExtension(graph, id_matches, distances=id_distances)
    return MaterializedView(
        definition,
        result.edge_matches,
        distances=decode_distance_index(id_distances, graph.node_table),
        compact=compact,
    )


def bind_extension(extension: MaterializedView, snapshot) -> MaterializedView:
    """A copy of ``extension`` whose id-space payload is bound to
    ``snapshot`` (a :class:`CompactGraph` or
    :class:`~repro.shard.sharded.ShardedGraph`).

    The node-key match sets are shared, only the integer-id payload is
    (re)built -- O(|V(G)|), no re-evaluation.  This is how the
    maintenance pipeline re-engages the MatchJoin fast path for a view
    whose extension was refreshed incrementally: the tracker hands back
    node-key match sets, and binding stamps them into the refreshed
    snapshot's id space.  Bounded views are returned unchanged: they
    sit outside incremental maintenance (binding a stale bounded
    extension onto a fresh token would launder outdated distances), so
    they are *rematerialized* -- with a fresh id-space distance payload
    -- rather than re-bound.
    """
    if extension.definition.is_bounded:
        return extension
    id_of = snapshot.id_of
    id_matches: IdEdgeMatches = {}
    for edge, pairs in extension.edge_matches.items():
        grouped: Dict[int, Set[int]] = {}
        for v, w in pairs:
            grouped.setdefault(id_of(v), set()).add(id_of(w))
        id_matches[edge] = grouped
    return _flatten_if_shared(
        MaterializedView(
            extension.definition,
            extension.edge_matches,
            distances=extension.distances,
            compact=CompactExtension(snapshot, id_matches),
        ),
        snapshot,
    )
