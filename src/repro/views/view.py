"""View definitions and materialized view extensions.

A :class:`ViewDefinition` wraps a (bounded) pattern with a stable name.
:func:`materialize` evaluates it on a data graph and returns a
:class:`MaterializedView` -- the view extension ``V(G)``: for every view
edge ``e``, the match set ``Se`` (data-graph edges for simulation views,
node pairs for bounded views), plus the distance index ``I(V)`` mapping
each materialized pair to its actual shortest-path distance in ``G``
(bounded views only; Section VI-A).

The extension deliberately does *not* keep a reference to ``G``:
MatchJoin must run "without accessing G at all" (Theorem 1), and keeping
the graph out of the extension object makes that guarantee structural.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern, Pattern
from repro.simulation.bounded import bounded_match_with_distances
from repro.simulation.simulation import match as _match

PNode = Hashable
PEdge = Tuple[PNode, PNode]
Node = Hashable
NodePair = Tuple[Node, Node]


class ViewDefinition:
    """A named view: a (bounded) graph pattern query used as a view.

    Parameters
    ----------
    name:
        Unique identifier used by caches and reports.
    pattern:
        The defining :class:`Pattern` or :class:`BoundedPattern`.
    """

    __slots__ = ("name", "pattern")

    def __init__(self, name: str, pattern: Pattern) -> None:
        if not name:
            raise ValueError("view name must be non-empty")
        if pattern.num_edges == 0:
            raise ValueError(
                f"view {name!r} has no edges; edge-less views cannot "
                "contribute match sets"
            )
        self.name = name
        self.pattern = pattern

    @property
    def is_bounded(self) -> bool:
        """Whether this is a bounded view (Section VI): its edges match
        paths up to a bound, and its extension carries ``I(V)``."""
        return isinstance(self.pattern, BoundedPattern)

    @property
    def size(self) -> int:
        """``|V|`` for a single definition: nodes + edges."""
        return self.pattern.size

    def __repr__(self) -> str:
        kind = "bounded" if self.is_bounded else "simulation"
        return (
            f"ViewDefinition({self.name!r}, {kind}, "
            f"nodes={self.pattern.num_nodes}, edges={self.pattern.num_edges})"
        )


class MaterializedView:
    """The extension ``V(G)`` of a view in some data graph.

    Attributes
    ----------
    definition:
        The :class:`ViewDefinition` this extension belongs to.
    edge_matches:
        ``{view edge: Se}``; empty sets everywhere when the view did not
        match the graph.
    distances:
        For bounded views, ``{(v, v'): d}`` over all materialized pairs
        -- the index ``I(V)``.  ``None`` for simulation views, whose
        pairs are data edges (distance 1 by construction).
    """

    __slots__ = ("definition", "edge_matches", "distances")

    def __init__(
        self,
        definition: ViewDefinition,
        edge_matches: Dict[PEdge, Set[NodePair]],
        distances: Optional[Dict[NodePair, int]] = None,
    ) -> None:
        self.definition = definition
        self.edge_matches = edge_matches
        self.distances = distances

    @property
    def name(self) -> str:
        """Name of the owning view definition (the cache key)."""
        return self.definition.name

    @property
    def is_empty(self) -> bool:
        """True when the view did not match ``G`` (every ``Se`` empty)."""
        return not any(self.edge_matches.values())

    @property
    def num_pairs(self) -> int:
        """Total number of materialized pairs across all view edges."""
        return sum(len(pairs) for pairs in self.edge_matches.values())

    @property
    def size(self) -> int:
        """``|V(G)|`` contribution: nodes touched + pairs stored."""
        nodes: Set[Node] = set()
        for pairs in self.edge_matches.values():
            for v, w in pairs:
                nodes.add(v)
                nodes.add(w)
        return len(nodes) + self.num_pairs

    def pairs_of(self, view_edge: PEdge) -> Set[NodePair]:
        """The match set ``Se`` of one view edge -- what MatchJoin's
        merge step (Fig. 2 lines 1-4) unions over λ-images."""
        return self.edge_matches[view_edge]

    def distance_of(self, pair: NodePair) -> int:
        """``I(V)`` lookup: actual distance of a materialized pair."""
        if self.distances is None:
            return 1
        return self.distances[pair]

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, pairs={self.num_pairs})"


def materialize(definition: ViewDefinition, graph: DataGraph) -> MaterializedView:
    """Evaluate a view on ``G`` and build its extension.

    Simulation views store the match sets of the unique maximum match;
    bounded views additionally store the distance index ``I(V)``.
    """
    pattern = definition.pattern
    if isinstance(pattern, BoundedPattern):
        result, per_edge_distances = bounded_match_with_distances(pattern, graph)
        if not result:
            return MaterializedView(
                definition,
                {edge: set() for edge in pattern.edges()},
                distances={},
            )
        index: Dict[NodePair, int] = {}
        for pair_distances in per_edge_distances.values():
            for pair, distance in pair_distances.items():
                previous = index.get(pair)
                if previous is None or distance < previous:
                    index[pair] = distance
        return MaterializedView(definition, result.edge_matches, distances=index)
    result = _match(pattern, graph)
    if not result:
        return MaterializedView(
            definition, {edge: set() for edge in pattern.edges()}
        )
    return MaterializedView(definition, result.edge_matches)
