"""Flat-buffer view extensions: zero-copy shippable ``V(G)`` payloads.

Materializing against a :class:`~repro.graph.flatbuf.SharedCompactGraph`
produces a :class:`FlatMaterializedView`: the same extension object as
always, plus

* a :class:`FlatExtension` payload whose per-view-edge **match pairs
  live in one flat segment** (``pairs_indptr`` CSR over parallel
  ``pairs_src`` / ``pairs_tgt`` id arrays, bounded views adding the
  minimized ``I(V)`` as ``dist_*`` triples), and
* precomputed per-edge **key and node frozensets** (``src_keys``,
  ``tgt_keys``, ``src_nodes``, ``tgt_nodes``) that the flat MatchJoin
  fixpoint (:func:`repro.core.matchjoin.flat_candidate_fixpoint`) uses
  for batch set-ops instead of dict churn.

Pickling ships segment handles + a small meta tuple -- the decoded
node-key sets, grouped id indexes and distance tables are **not**
serialized; a pool worker attaches the segments and materializes each
per-edge structure lazily on first touch.  The snapshot's own store is
referenced (not copied) for the id -> node-key decode table, so when a
payload dict carrying the snapshot and twenty extensions goes through
one ``pickle.dumps``, the node table ships exactly once and every
worker-side object resolves to the same attached segment.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.graph.flatbuf import FlatStore, SharedCompactGraph, _LazyNodeTable
from repro.views.view import (
    CompactExtension,
    MaterializedView,
    ViewDefinition,
)

PEdge = Tuple[Hashable, Hashable]
Node = Hashable
NodePair = Tuple[Node, Node]


# ----------------------------------------------------------------------
# Worker-side lazy structures
# ----------------------------------------------------------------------
class _PerEdgeLazy(dict):
    """``{view edge: <structure>}`` decoded per edge on first access."""

    __slots__ = ("_pack", "_kind")

    def __init__(self, pack: "_AttachedPack", kind: str) -> None:
        super().__init__()
        self._pack = pack
        self._kind = kind

    def __missing__(self, edge):
        value = self._pack.build(self._kind, edge)
        dict.__setitem__(self, edge, value)
        return value

    def get(self, edge, default=None):
        try:
            return self[edge]
        except KeyError:
            return default

    def _ensure_all(self) -> None:
        for edge in self._pack.edge_order:
            self[edge]

    def __contains__(self, edge) -> bool:
        return edge in self._pack.edge_index

    def __len__(self) -> int:
        return len(self._pack.edge_order)

    def __iter__(self):
        return iter(self._pack.edge_order)

    def keys(self):
        self._ensure_all()
        return dict.keys(self)

    def values(self):
        self._ensure_all()
        return dict.values(self)

    def items(self):
        self._ensure_all()
        return dict.items(self)

    def __eq__(self, other):
        self._ensure_all()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        return not self.__eq__(other)

    __hash__ = None


class _LazyDistances(dict):
    """A distance index decoded from the flat triples on first use.

    ``decode=None`` yields the id-space table (``CompactExtension
    .distances``); with a node table it yields the node-key form
    (``MaterializedView.distances``).
    """

    __slots__ = ("_store", "_decode", "_ready")

    def __init__(self, store: FlatStore, decode=None) -> None:
        super().__init__()
        self._store = store
        self._decode = decode
        self._ready = False

    def _ensure(self) -> None:
        if not self._ready:
            store = self._store
            src = store.ints("dist_src")
            tgt = store.ints("dist_tgt")
            val = store.ints("dist_val")
            decode = self._decode
            if decode is None:
                self.update(zip(zip(src, tgt), val))
            else:
                self.update(
                    ((decode(v), decode(w)), d)
                    for v, w, d in zip(src, tgt, val)
                )
            self._ready = True

    def __missing__(self, key):
        if self._ready:
            raise KeyError(key)
        self._ensure()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._ensure()
        return dict.get(self, key, default)

    def __contains__(self, key) -> bool:
        self._ensure()
        return dict.__contains__(self, key)

    def __len__(self) -> int:
        self._ensure()
        return dict.__len__(self)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def items(self):
        self._ensure()
        return dict.items(self)

    def values(self):
        self._ensure()
        return dict.values(self)

    def keys(self):
        self._ensure()
        return dict.keys(self)

    def __eq__(self, other):
        self._ensure()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        return not self.__eq__(other)

    __hash__ = None


class _AttachedPack:
    """Shared decode context for one attached extension store."""

    __slots__ = ("store", "nodes", "edge_order", "edge_index")

    def __init__(self, store: FlatStore, nodes, edge_order: List[PEdge]):
        self.store = store
        self.nodes = nodes
        self.edge_order = edge_order
        self.edge_index = {edge: k for k, edge in enumerate(edge_order)}

    def _slices(self, edge: PEdge):
        k = self.edge_index[edge]  # KeyError for foreign edges, as dicts do
        indptr = self.store.ints("pairs_indptr")
        lo, hi = indptr[k], indptr[k + 1]
        return (
            self.store.ints("pairs_src")[lo:hi],
            self.store.ints("pairs_tgt")[lo:hi],
        )

    def build(self, kind: str, edge: PEdge):
        src, tgt = self._slices(edge)
        if kind == "by_source":
            grouped: Dict[int, Set[int]] = {}
            for v, w in zip(src, tgt):
                group = grouped.get(v)
                if group is None:
                    grouped[v] = {w}
                else:
                    group.add(w)
            return grouped
        if kind == "by_target":
            grouped = {}
            for v, w in zip(src, tgt):
                group = grouped.get(w)
                if group is None:
                    grouped[w] = {v}
                else:
                    group.add(v)
            return grouped
        if kind == "src_keys":
            return frozenset(src)
        if kind == "tgt_keys":
            return frozenset(tgt)
        decode = self.nodes.__getitem__
        if kind == "src_nodes":
            return frozenset(map(decode, frozenset(src)))
        if kind == "tgt_nodes":
            return frozenset(map(decode, frozenset(tgt)))
        if kind == "pairs":
            return set(zip(map(decode, src), map(decode, tgt)))
        raise AssertionError(kind)


# ----------------------------------------------------------------------
# FlatExtension
# ----------------------------------------------------------------------
class FlatExtension(CompactExtension):
    """A :class:`CompactExtension` backed by a flat segment.

    Adds the per-view-edge frozensets the flat fixpoint consumes and a
    ``__reduce__`` that ships segment handles instead of the grouped
    indexes.  In the creator process every inherited field references
    the ordinary materialization products (same in-process performance);
    in a worker they are the lazy decoders above.
    """

    __slots__ = (
        "src_keys",
        "tgt_keys",
        "src_nodes",
        "tgt_nodes",
        "store",
        "snap_store",
        "nodes_extra",
        "edge_order",
    )

    @classmethod
    def pack(
        cls, snapshot: SharedCompactGraph, base: CompactExtension
    ) -> "FlatExtension":
        """Creator-side: flatten ``base`` (bound to ``snapshot``)."""
        edge_order = list(base.by_source)
        indptr = array("q", [0])
        src = array("q")
        tgt = array("q")
        total = 0
        for edge in edge_order:
            for v, targets in base.by_source[edge].items():
                src.extend([v] * len(targets))
                tgt.extend(targets)
                total += len(targets)
            indptr.append(total)
        arrays = {"pairs_indptr": indptr, "pairs_src": src, "pairs_tgt": tgt}
        if base.distances is not None:
            d_src = array("q")
            d_tgt = array("q")
            d_val = array("q")
            for (v, w), d in base.distances.items():
                d_src.append(v)
                d_tgt.append(w)
                d_val.append(d)
            arrays.update(dist_src=d_src, dist_tgt=d_tgt, dist_val=d_val)
        store = FlatStore.pack(arrays=arrays, blobs={})
        flat = cls.__new__(cls)
        flat.token = base.token
        flat.version = base.version
        flat.nodes = base.nodes
        flat.by_source = base.by_source
        flat.by_target = base.by_target
        flat.distances = base.distances
        decode = base.nodes.__getitem__
        flat.src_keys = {}
        flat.tgt_keys = {}
        flat.src_nodes = {}
        flat.tgt_nodes = {}
        for edge in edge_order:
            src_keys = frozenset(base.by_source[edge])
            tgt_keys = frozenset(base.by_target[edge])
            flat.src_keys[edge] = src_keys
            flat.tgt_keys[edge] = tgt_keys
            flat.src_nodes[edge] = frozenset(map(decode, src_keys))
            flat.tgt_nodes[edge] = frozenset(map(decode, tgt_keys))
        flat.store = store
        flat.snap_store = snapshot.flat_store
        patch = snapshot._patch
        flat.nodes_extra = list(patch["nodes"]) if patch else []
        flat.edge_order = edge_order
        return flat

    def pair_rows(self, view_edge: PEdge):
        """The raw ``(src, tgt)`` id rows of one view edge.

        Parallel ``"q"`` slices straight out of the segment -- the unit
        the flat fixpoint sweeps with batch set-ops.  Works identically
        creator-side and worker-side (both hold ``store`` +
        ``edge_order``); nothing is decoded or grouped.
        """
        k = self.edge_order.index(view_edge)
        ints = self.store.ints
        indptr = ints("pairs_indptr")
        lo, hi = indptr[k], indptr[k + 1]
        return ints("pairs_src")[lo:hi], ints("pairs_tgt")[lo:hi]

    def __reduce__(self):
        return (
            _attach_extension,
            (
                self.store,
                self.snap_store,
                self.nodes_extra,
                self.edge_order,
                self.token,
                self.version,
                self.distances is not None,
            ),
        )

    def rebound(self, snapshot) -> CompactExtension:
        """Flatness-preserving re-stamp onto a refreshed shared
        snapshot (same contract as the base method)."""
        if not isinstance(snapshot, SharedCompactGraph):
            return CompactExtension.rebound(self, snapshot)
        if getattr(snapshot, "extends_token", None) != self.token:
            raise ValueError(
                "snapshot does not extend this extension's id space; "
                "re-materialize or bind_extension() instead"
            )
        clone = FlatExtension.__new__(FlatExtension)
        clone.token = snapshot.snapshot_token
        clone.version = snapshot.snapshot_version
        clone.nodes = snapshot.node_table
        clone.by_source = self.by_source
        clone.by_target = self.by_target
        clone.distances = self.distances
        clone.src_keys = self.src_keys
        clone.tgt_keys = self.tgt_keys
        clone.src_nodes = self.src_nodes
        clone.tgt_nodes = self.tgt_nodes
        clone.store = self.store
        clone.snap_store = snapshot.flat_store
        patch = snapshot._patch
        clone.nodes_extra = list(patch["nodes"]) if patch else []
        clone.edge_order = self.edge_order
        return clone


def _attach_extension(
    store: FlatStore,
    snap_store: FlatStore,
    nodes_extra: List[Node],
    edge_order: List[PEdge],
    token: int,
    version: int,
    bounded: bool,
) -> FlatExtension:
    nodes = _LazyNodeTable(snap_store, nodes_extra or None)
    pack = _AttachedPack(store, nodes, edge_order)
    flat = FlatExtension.__new__(FlatExtension)
    flat.token = token
    flat.version = version
    flat.nodes = nodes
    flat.by_source = _PerEdgeLazy(pack, "by_source")
    flat.by_target = _PerEdgeLazy(pack, "by_target")
    flat.distances = _LazyDistances(store) if bounded else None
    flat.src_keys = _PerEdgeLazy(pack, "src_keys")
    flat.tgt_keys = _PerEdgeLazy(pack, "tgt_keys")
    flat.src_nodes = _PerEdgeLazy(pack, "src_nodes")
    flat.tgt_nodes = _PerEdgeLazy(pack, "tgt_nodes")
    flat.store = store
    flat.snap_store = snap_store
    flat.nodes_extra = nodes_extra
    flat.edge_order = edge_order
    return flat


# ----------------------------------------------------------------------
# FlatMaterializedView
# ----------------------------------------------------------------------
class FlatMaterializedView(MaterializedView):
    """A :class:`MaterializedView` whose pickle is a segment handle.

    Creator-side it is a plain materialized view (node-key sets and the
    flat payload both present).  Worker-side reconstruction decodes
    ``edge_matches`` (and the node-key distance index) lazily from the
    payload's segment, so specs that run entirely in id space never pay
    the decode at all.
    """

    __slots__ = ()

    def __reduce__(self):
        return (_attach_view, (self.definition, self.compact))


def _attach_view(
    definition: ViewDefinition, flat: FlatExtension
) -> FlatMaterializedView:
    pack = _AttachedPack(flat.store, flat.nodes, flat.edge_order)
    edge_matches = _PerEdgeLazy(pack, "pairs")
    distances = (
        _LazyDistances(flat.store, decode=flat.nodes.__getitem__)
        if flat.distances is not None
        else None
    )
    return FlatMaterializedView(definition, edge_matches, distances, flat)


def flatten_view(
    view: MaterializedView, snapshot: SharedCompactGraph
) -> FlatMaterializedView:
    """The flat form of a freshly materialized view (idempotent)."""
    if isinstance(view, FlatMaterializedView):
        return view
    flat = FlatExtension.pack(snapshot, view.compact)
    return FlatMaterializedView(
        view.definition, view.edge_matches, view.distances, flat
    )


def preserve_flatness(
    view: MaterializedView, payload: CompactExtension
) -> MaterializedView:
    """Rewrap a rebind product so flat views stay flat.

    The maintenance pipeline re-stamps unchanged views onto refreshed
    snapshots via ``payload.rebound(snapshot)``; when the rebound
    payload is still flat, the view object should stay a
    :class:`FlatMaterializedView` so its pickle stays a handle.
    """
    if isinstance(payload, FlatExtension):
        return FlatMaterializedView(
            view.definition, view.edge_matches, view.distances, payload
        )
    return MaterializedView(
        view.definition, view.edge_matches, view.distances, payload
    )
