"""Workload-driven view selection (Section VIII, future-work item 1).

"One issue is to decide what views to cache such that a set of
frequently used pattern queries can be answered by using the views."
Given a workload of queries and a pool of candidate views, greedy
set-cover over the combined universe of ``(query, pattern edge)``
elements picks a small cache that contains *every* workload query --
the multi-query generalization of algorithm ``minimum``.

:func:`candidate_views_from_workload` derives a natural candidate pool
when none is supplied: every single-edge subpattern (always sufficient)
plus each whole query (so popular query shapes can be cached outright).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.containment import _view_match_fn
from repro.graph.pattern import Pattern
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition

PEdge = Tuple[Hashable, Hashable]
Element = Tuple[int, PEdge]  # (query index, pattern edge)


def maintenance_cost(counters: Optional[Dict[str, int]]) -> float:
    """A unitless work proxy for what keeping one view fresh has cost.

    Derived from a :class:`~repro.views.maintenance.ViewStats` snapshot:
    the affected area visited by incremental steps, plus a heavy weight
    per full recomputation and per extension rebuild.  The advisor
    divides a view's benefit by (size + this), so rarely-maintained
    views rank above churn-heavy ones of equal benefit.
    """
    if not counters:
        return 0.0
    return float(
        counters.get("affected_area", 0)
        + 10 * counters.get("recomputes", 0)
        + counters.get("extension_builds", 0)
    )


def selection_stats(
    views: ViewSet,
    maintenance=None,
    plan_log: Iterable = (),
) -> Dict[str, Dict[str, object]]:
    """Per-view cache statistics: size, maintenance cost, hit count.

    One row per view definition: whether (and how large) its extension
    is materialized, the maintenance counters the attached tracker has
    accumulated (``maintenance`` overrides ``views.maintenance``), and
    how many delivered answers in ``plan_log`` (an iterable of
    :class:`~repro.engine.plan.PlanChoiceRecord`) read the view.  This
    is the shared input of the
    :class:`~repro.engine.advisor.WorkloadAdvisor`'s scoring and the
    ``"selection"`` section of ``repro stats --format json``.
    """
    tracker = maintenance if maintenance is not None else views.maintenance
    tracked = tracker.stats() if tracker is not None else {}
    hits: Dict[str, int] = {}
    for record in plan_log:
        for name in getattr(record, "views_used", ()):
            hits[name] = hits.get(name, 0) + 1
    out: Dict[str, Dict[str, object]] = {}
    for name in views.names():
        materialized = views.is_materialized(name)
        extension = views.extension(name) if materialized else None
        stats = tracked.get(name)
        counters = stats.snapshot() if stats is not None else None
        out[name] = {
            "materialized": materialized,
            "stale": views.is_stale(name) if materialized else False,
            "bounded": views.definition(name).is_bounded,
            "size": extension.size if extension is not None else None,
            "pairs": extension.num_pairs if extension is not None else None,
            "hits": hits.get(name, 0),
            "maintenance": counters,
            "maintenance_cost": maintenance_cost(counters),
        }
    return out


def candidate_views_from_workload(queries: Sequence[Pattern]) -> ViewSet:
    """Single-edge subpatterns (deduplicated structurally) plus whole
    queries, as a candidate pool for :func:`select_views_for_workload`."""
    views = ViewSet()
    seen: Set = set()
    for qi, query in enumerate(queries):
        for ei, edge in enumerate(query.edges()):
            sub = query.subpattern([edge])
            key = _structure_key(sub)
            if key in seen:
                continue
            seen.add(key)
            views.add(ViewDefinition(f"edge_q{qi}_{ei}", sub))
        key = _structure_key(query)
        if key not in seen:
            seen.add(key)
            views.add(ViewDefinition(f"whole_q{qi}", query.copy()))
    return views


def _structure_key(pattern: Pattern):
    """A canonical-ish key: sorted (source cond, target cond, bound) triples."""
    from repro.graph.pattern import BoundedPattern

    rows = []
    for edge in pattern.edges():
        bound = (
            repr(pattern.bound(edge))
            if isinstance(pattern, BoundedPattern)
            else "1"
        )
        rows.append(
            (repr(pattern.condition(edge[0]).key()),
             repr(pattern.condition(edge[1]).key()), bound)
        )
    return tuple(sorted(rows))


def select_views_for_workload(
    queries: Sequence[Pattern],
    candidates: Optional[ViewSet] = None,
    max_views: Optional[int] = None,
) -> Tuple[ViewSet, Dict[int, List[str]]]:
    """Greedy multi-query view selection.

    Returns ``(selected, per_query_views)`` where ``selected`` contains
    every chosen view and ``per_query_views[i]`` names the views whose
    matches cover query ``i``.  Raises ``ValueError`` when the candidate
    pool cannot cover some query (impossible with the default pool) or
    when ``max_views`` is too small.
    """
    queries = list(queries)
    if candidates is None:
        candidates = candidate_views_from_workload(queries)
    elif not isinstance(candidates, ViewSet):
        candidates = ViewSet(candidates)

    # Coverage of each candidate over the combined element universe.
    coverage: Dict[str, Set[Element]] = {}
    universe: Set[Element] = set()
    for qi, query in enumerate(queries):
        view_match = _view_match_fn(query, candidates.definitions())
        edge_set = query.edge_set()
        universe.update((qi, edge) for edge in edge_set)
        for definition in candidates:
            match = view_match(query, definition)
            bucket = coverage.setdefault(definition.name, set())
            bucket.update((qi, edge) for edge in match.covered & edge_set)

    reachable: Set[Element] = set()
    for elements in coverage.values():
        reachable |= elements
    if reachable != universe:
        missing = universe - reachable
        raise ValueError(
            f"candidate pool cannot cover {len(missing)} workload edges, "
            f"e.g. {next(iter(missing))}"
        )

    chosen: List[str] = []
    covered: Set[Element] = set()
    while covered != universe:
        if max_views is not None and len(chosen) >= max_views:
            raise ValueError(
                f"workload not coverable within max_views={max_views}"
            )
        best = max(
            (name for name in coverage if name not in chosen),
            key=lambda name: len(coverage[name] - covered),
        )
        gain = coverage[best] - covered
        if not gain:  # pragma: no cover - guarded by reachability check
            break
        chosen.append(best)
        covered |= gain

    selected = candidates.subset(chosen)
    per_query: Dict[int, List[str]] = {qi: [] for qi in range(len(queries))}
    for name in chosen:
        for qi, _ in coverage[name]:
            if name not in per_query[qi]:
                per_query[qi].append(name)
    return selected, per_query
