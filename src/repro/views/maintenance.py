"""Incremental maintenance of materialized simulation views.

The paper's practicality argument leans on cached views staying fresh:
"incremental methods are already in place to efficiently maintain
cached pattern views (e.g., [15])".  This module is the view layer of
the delta-driven maintenance pipeline:

* **deletions are incremental**: the maximum simulation after an edge
  deletion is contained in the one before, so a witness-counter cascade
  (the same machinery as the matching engines) prunes exactly the
  invalidated matches -- cost proportional to the affected area, not to
  ``|G|``.
* **insertions are incremental too**, in the spirit of the paper's
  [15]: simulation grows monotonically under insertions, so the only
  pairs that can *join* the match are label-compatible ancestors of the
  inserted edge's source.  :meth:`IncrementalView._insert_incremental`
  seeds revival candidates from exactly those pairs (a backward closure
  over the pattern x graph product), revives them through the existing
  witness-counter machinery, and falls back to a recomputation only
  when the affected area exceeds a configurable ``budget``.
* **batches** arrive as a :class:`Delta` -- an ordered sequence of edge
  insertions/deletions applied as one maintenance round via
  :meth:`IncrementalViewSet.apply_delta`, with per-view change
  accounting (:meth:`IncrementalViewSet.changed_since`) so downstream
  caches evict only what an update actually touched.

A standalone :class:`IncrementalView` owns its own copy of the graph so
that callers cannot desynchronize it; inside an
:class:`IncrementalViewSet` the trackers share the set's single copy
(``shared=True``) and all updates flow through the set.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern
from repro.obs import trace
from repro.obs.metrics import SIZE_BUCKETS, get_registry
from repro.simulation.simulation import maximum_simulation
from repro.views.view import MaterializedView, ViewDefinition

log = logging.getLogger(__name__)

PNode = Hashable
Node = Hashable

#: Delta op kinds.
INSERT = "insert"
DELETE = "delete"


class MaintenanceEvent(NamedTuple):
    """One applied graph update, delivered to subscribers.

    ``op`` is ``"insert"`` or ``"delete"``; ``source``/``target`` are
    the data-graph edge endpoints.  Events fire *after* the view state
    is consistent again, so a subscriber may read extensions directly.
    """

    op: str
    source: Node
    target: Node


class Delta:
    """An ordered batch of edge insertions and deletions.

    The unit of work of the maintenance pipeline: one delta flows
    through the view trackers (:meth:`IncrementalViewSet.apply_delta`),
    the graph snapshot (:meth:`~repro.graph.digraph.DataGraph.apply_delta`
    plus journal-driven snapshot refresh) and the engine caches as a
    single maintenance round.  Build one with the fluent helpers::

        delta = Delta().insert("a", "b").delete("c", "d")

    or from an iterable of ``(op, source, target)`` triples, or from a
    text update stream via :meth:`parse`.
    """

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterable[Tuple[str, Node, Node]] = ()) -> None:
        self._ops: List[Tuple[str, Node, Node]] = []
        for op, source, target in ops:
            self._add(op, source, target)

    def _add(self, op: str, source: Node, target: Node) -> None:
        if op not in (INSERT, DELETE):
            raise ValueError(
                f"unknown delta op {op!r}; expected {INSERT!r} or {DELETE!r}"
            )
        self._ops.append((op, source, target))

    def insert(self, source: Node, target: Node) -> "Delta":
        """Append an edge insertion; returns ``self`` for chaining."""
        self._ops.append((INSERT, source, target))
        return self

    def delete(self, source: Node, target: Node) -> "Delta":
        """Append an edge deletion; returns ``self`` for chaining."""
        self._ops.append((DELETE, source, target))
        return self

    @property
    def ops(self) -> Tuple[Tuple[str, Node, Node], ...]:
        """The batch as an immutable tuple of ``(op, source, target)``."""
        return tuple(self._ops)

    @classmethod
    def parse(cls, lines: Iterable[str]) -> "Delta":
        """Parse a text update stream (the ``repro maintain`` format).

        One op per line: ``+ <source> <target>`` or ``insert <source>
        <target>`` for insertions, ``- ...`` / ``delete ...`` for
        deletions.  Node keys are decoded as JSON scalars when they
        parse (so ``3`` is the integer node 3) and kept as raw strings
        otherwise.  Blank lines and ``#`` comments (full-line only) are
        skipped.

        Malformed input raises :class:`ValueError` naming the offending
        1-based line number: a line with anything other than exactly
        three whitespace-separated tokens (missing operands *and*
        trailing junk alike), or an unrecognized op token.
        """
        ops: List[Tuple[str, Node, Node]] = []
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            if len(tokens) != 3:
                raise ValueError(
                    f"malformed delta line {lineno}: {raw.rstrip()!r} "
                    f"(expected 3 tokens '<op> <source> <target>', "
                    f"got {len(tokens)})"
                )
            op = {"+": INSERT, "-": DELETE, INSERT: INSERT, DELETE: DELETE}.get(
                tokens[0]
            )
            if op is None:
                raise ValueError(
                    f"unknown delta op {tokens[0]!r} on line {lineno}: "
                    f"{raw.rstrip()!r} (expected '+', '-', "
                    f"{INSERT!r} or {DELETE!r})"
                )
            ops.append((op, _parse_key(tokens[1]), _parse_key(tokens[2])))
        return cls(ops)

    def __iter__(self) -> Iterator[Tuple[str, Node, Node]]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __repr__(self) -> str:
        inserts = sum(1 for op, _, _ in self._ops if op == INSERT)
        return (
            f"Delta(ops={len(self._ops)}, inserts={inserts}, "
            f"deletes={len(self._ops) - inserts})"
        )


def _parse_key(token: str) -> Node:
    try:
        return json.loads(token)
    except (ValueError, json.JSONDecodeError):
        return token


@dataclass
class ViewStats:
    """Per-view maintenance counters (cumulative since construction).

    ``incremental_inserts`` counts relevant insertions absorbed by the
    affected-area revival path; ``recomputes`` counts fallbacks (empty
    view revived, or the revival area exceeded the budget).
    ``affected_area`` totals the revival-candidate pairs examined --
    the cost measure of the paper's [15]-style insertion handling.
    """

    insertions: int = 0
    deletions: int = 0
    irrelevant_inserts: int = 0
    incremental_inserts: int = 0
    recomputes: int = 0
    revived_pairs: int = 0
    removed_pairs: int = 0
    affected_area: int = 0
    extension_builds: int = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (JSON-ready, used by reports and the CLI)."""
        return {
            "insertions": self.insertions,
            "deletions": self.deletions,
            "irrelevant_inserts": self.irrelevant_inserts,
            "incremental_inserts": self.incremental_inserts,
            "recomputes": self.recomputes,
            "revived_pairs": self.revived_pairs,
            "removed_pairs": self.removed_pairs,
            "affected_area": self.affected_area,
            "extension_builds": self.extension_builds,
        }


class DeltaReport(NamedTuple):
    """Outcome of one :meth:`IncrementalViewSet.apply_delta` round.

    ``applied``/``skipped`` count ops (already-present insertions and
    missing-edge deletions are skipped); ``changed_views`` names the
    views whose extensions actually changed -- the eviction set for
    downstream caches; ``per_view`` maps every maintained view to the
    stat deltas this round produced (same keys as
    :meth:`ViewStats.snapshot`).  ``stale_bounded`` names the bounded
    views the round left stale (filled by
    :meth:`~repro.views.storage.ViewSet.apply_delta`: bounded views are
    not maintained incrementally, so any graph-changing round strands
    their cached extensions until rematerialization).
    """

    applied: int
    skipped: int
    changed_views: Tuple[str, ...]
    per_view: Dict[str, Dict[str, int]]
    stale_bounded: Tuple[str, ...] = ()


def _meter_delta(report: "DeltaReport") -> None:
    """Record one maintenance round into the process-global registry:
    batch size, revival-vs-recompute outcomes, pair churn."""
    reg = get_registry()
    reg.counter("repro_maintenance_ops_applied_total").inc(report.applied)
    reg.counter("repro_maintenance_ops_skipped_total").inc(report.skipped)
    reg.histogram("repro_maintenance_delta_ops", SIZE_BUCKETS).observe(
        report.applied + report.skipped
    )
    revivals = recomputes = revived = removed = 0
    for stats in report.per_view.values():
        revivals += stats.get("incremental_inserts", 0)
        recomputes += stats.get("recomputes", 0)
        revived += stats.get("revived_pairs", 0)
        removed += stats.get("removed_pairs", 0)
    reg.counter("repro_maintenance_revivals_total").inc(revivals)
    reg.counter("repro_maintenance_recomputes_total").inc(recomputes)
    reg.counter("repro_maintenance_revived_pairs_total").inc(revived)
    reg.counter("repro_maintenance_removed_pairs_total").inc(removed)


class IncrementalView:
    """A simulation view kept consistent under edge updates.

    Parameters
    ----------
    definition:
        The simulation view to maintain (bounded views change
        non-locally under updates and are rejected).
    graph:
        The data graph.  Copied by default so external mutations cannot
        desynchronize the tracker; with ``shared=True`` the tracker
        adopts ``graph`` as-is and expects its owner (an
        :class:`IncrementalViewSet`) to route every update.
    budget:
        Affected-area budget for incremental insertions: when the
        revival-candidate closure exceeds this many pairs the tracker
        falls back to recomputing the view.  ``None`` (default) never
        falls back.
    """

    def __init__(
        self,
        definition: ViewDefinition,
        graph: DataGraph,
        *,
        shared: bool = False,
        budget: Optional[int] = None,
    ) -> None:
        if isinstance(definition.pattern, BoundedPattern):
            raise TypeError(
                "IncrementalView maintains simulation views; bounded views "
                "change non-locally under updates (distances), rematerialize "
                "them instead"
            )
        self.definition = definition
        self.budget = budget
        self.stats = ViewStats()
        self._shared = shared
        self._graph = graph if shared else graph.copy()
        self._sim: Optional[Dict[PNode, Set[Node]]] = None
        self._counters: Dict[Tuple[PNode, PNode], Dict[Node, int]] = {}
        self._extension_cache: Optional[MaterializedView] = None
        self._recompute()

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _compatible(self, x: PNode, v: Node) -> bool:
        # An endpoint not yet in the graph (add_edge auto-creates nodes)
        # will exist with no labels/attributes once the edge is applied.
        if v not in self._graph:
            return self.definition.pattern.condition(x).matches(frozenset(), {})
        return self.definition.pattern.condition(x).matches(
            self._graph.labels(v), self._graph.attrs(v)
        )

    def _recompute(self) -> None:
        pattern = self.definition.pattern
        self._sim = maximum_simulation(pattern, self._graph, self._compatible)
        self._counters = {}
        self._extension_cache = None
        if self._sim is None:
            return
        for x in pattern.nodes():
            for y in pattern.successors(x):
                targets = self._sim[y]
                self._counters[(x, y)] = {
                    v: sum(1 for w in self._graph.successors(v) if w in targets)
                    for v in self._sim[x]
                }

    # ------------------------------------------------------------------
    # Updates (standalone mode)
    # ------------------------------------------------------------------
    def insert_edge(self, source: Node, target: Node) -> bool:
        """Apply an edge insertion; returns whether the extension changed."""
        self._require_owned()
        if self._graph.has_edge(source, target):
            return False
        self._graph.add_edge(source, target)
        return self._after_insert(source, target)

    def delete_edge(self, source: Node, target: Node) -> bool:
        """Apply an edge deletion (no-op when the edge is absent);
        returns whether the extension changed."""
        self._require_owned()
        if not self._graph.has_edge(source, target):
            return False
        self._graph.remove_edge(source, target)
        return self._after_delete(source, target)

    def _require_owned(self) -> None:
        if self._shared:
            raise RuntimeError(
                f"view {self.definition.name!r} is maintained by an "
                "IncrementalViewSet; apply updates through the set"
            )

    # ------------------------------------------------------------------
    # Update internals (graph already mutated by the caller)
    # ------------------------------------------------------------------
    def _after_insert(self, source: Node, target: Node) -> bool:
        """Refresh state after ``source -> target`` joined the graph."""
        self.stats.insertions += 1
        if self._sim is None:
            # No counter state to revive from; recompute when the edge
            # could matter at all (rare: the view was entirely empty).
            if not self._relevant(source, target):
                self.stats.irrelevant_inserts += 1
                return False
            self.stats.recomputes += 1
            self._recompute()
            changed = self._sim is not None
            if changed:
                self._extension_cache = None
            return changed
        if not self._relevant(source, target):
            # No label-compatible view edge: provably no effect, O(1)
            # per pattern edge.
            self.stats.irrelevant_inserts += 1
            return False
        outcome = self._insert_incremental(source, target)
        if outcome is None:
            # Affected area exceeded the budget: recompute (the paper's
            # [15] bounds insertion cost by the affected area; past the
            # budget a recomputation is the cheaper correct choice).
            self.stats.recomputes += 1
            self._recompute()
            return True
        changed, revived, area = outcome
        self.stats.incremental_inserts += 1
        self.stats.revived_pairs += revived
        self.stats.affected_area += area
        if changed:
            self._extension_cache = None
        return changed

    def _insert_incremental(
        self, source: Node, target: Node
    ) -> Optional[Tuple[bool, int, int]]:
        """Affected-area revival after ``source -> target`` was added.

        Simulation is monotone under insertions, so the new maximum
        simulation extends the tracked one; the only candidates that
        can join are label-compatible pairs whose data node reaches
        ``source`` backwards along a compatible pattern path.  The
        method (1) collects that candidate closure (bounded by
        :attr:`budget`; returns ``None`` on overflow), (2) tentatively
        admits all candidates and rebuilds exactly the witness counters
        the admission could have changed, then (3) runs the standard
        counter-cascade refinement, which can only evict tentative
        candidates.  Returns ``(extension changed, pairs revived,
        affected-area size)``.
        """
        pattern = self.definition.pattern
        graph = self._graph
        sim = self._sim
        assert sim is not None
        budget = self.budget

        # --- (1) revival candidates: backward product closure --------
        in_r: Set[Tuple[PNode, Node]] = set()
        queue: deque = deque()
        for x in pattern.nodes():
            if source in sim[x] or not self._compatible(x, source):
                continue
            if any(
                self._compatible(y, target) for y in pattern.successors(x)
            ):
                in_r.add((x, source))
                queue.append((x, source))
        if budget is not None and len(in_r) > budget:
            return None
        while queue:
            x, v = queue.popleft()
            for x1 in pattern.predecessors(x):
                present = sim[x1]
                for v1 in graph.predecessors(v):
                    pair = (x1, v1)
                    if v1 in present or pair in in_r:
                        continue
                    if not self._compatible(x1, v1):
                        continue
                    in_r.add(pair)
                    if budget is not None and len(in_r) > budget:
                        return None
                    queue.append(pair)

        # --- (2) tentative admission + affected counters --------------
        # Old pairs whose witness sets may have grown: predecessors of
        # revived pairs, plus the inserted edge's own source.  Their
        # counters are rebuilt from scratch against the admitted state,
        # which keeps them exact for the cascade below (and for every
        # later deletion).
        affected_old: Set[Tuple[PNode, PNode, Node]] = set()
        for y, w in in_r:
            for x in pattern.predecessors(y):
                present = sim[x]
                for v in graph.predecessors(w):
                    if v in present:
                        affected_old.add((x, y, v))
        for x in pattern.nodes():
            if source in sim[x]:
                for y in pattern.successors(x):
                    affected_old.add((x, y, source))
        revived_by_node: Dict[PNode, List[Node]] = {}
        for x, v in in_r:
            revived_by_node.setdefault(x, []).append(v)
        for x, values in revived_by_node.items():
            sim[x].update(values)
        counters = self._counters
        for x, y, v in affected_old:
            counters[(x, y)][v] = len(sim[y].intersection(graph.successors(v)))
        for x, v in in_r:
            for y in pattern.successors(x):
                counters[(x, y)][v] = len(
                    sim[y].intersection(graph.successors(v))
                )

        # --- (3) cascade: only tentative candidates can fall ----------
        removals: deque = deque()
        removed: Set[Tuple[PNode, Node]] = set()
        for pair in in_r:
            x, v = pair
            for y in pattern.successors(x):
                if counters[(x, y)][v] == 0:
                    removed.add(pair)
                    sim[x].discard(v)
                    removals.append(pair)
                    break
        while removals:
            y, w = removals.popleft()
            for y1 in pattern.successors(y):
                counters[(y, y1)].pop(w, None)
            for x in pattern.predecessors(y):
                counter = counters[(x, y)]
                candidates = sim[x]
                for v in graph.predecessors(w):
                    if v in candidates:
                        counter[v] -= 1
                        if counter[v] == 0:
                            # Only revived pairs can hit zero: the old
                            # simulation is still a valid simulation of
                            # the grown graph.
                            candidates.discard(v)
                            removed.add((x, v))
                            removals.append((x, v))
        survived = len(in_r) - len(removed)
        if survived:
            changed = True
        else:
            # No pair revived, but the inserted edge itself may be a
            # fresh match of some view edge.
            changed = any(
                source in sim[x] and target in sim[y]
                for x, y in pattern.edges()
            )
        if changed:
            self._extension_cache = None
        return changed, survived, len(in_r)

    def _after_delete(self, source: Node, target: Node) -> bool:
        """Refresh state after ``source -> target`` left the graph."""
        self.stats.deletions += 1
        changed = self._prune_after_deletion(source, target)
        if changed:
            self._extension_cache = None
        return changed

    def _prune_after_deletion(self, source: Node, target: Node) -> bool:
        """Counter cascade after ``source -> target`` left the graph;
        returns whether any match pair was lost."""
        if self._sim is None:
            # The view was empty; deletions cannot revive it.
            return False
        pattern = self.definition.pattern
        changed = False
        removals: deque = deque()
        for x in pattern.nodes():
            if source not in self._sim[x]:
                continue
            for y in pattern.successors(x):
                if target not in self._sim[y]:
                    continue
                counter = self._counters[(x, y)]
                counter[source] -= 1
                # The pair (source, target) just left this view edge's
                # match set, whether or not ``source`` survives.
                changed = True
                if counter[source] == 0 and source in self._sim[x]:
                    self._sim[x].discard(source)
                    self.stats.removed_pairs += 1
                    removals.append((x, source))
        while removals:
            y, w = removals.popleft()
            if not self._sim[y]:
                self._sim = None
                self._counters = {}
                return True
            for x in pattern.predecessors(y):
                counter = self._counters[(x, y)]
                candidates = self._sim[x]
                for v in self._graph.predecessors(w):
                    if v in candidates:
                        counter[v] -= 1
                        if counter[v] == 0:
                            candidates.discard(v)
                            self.stats.removed_pairs += 1
                            removals.append((x, v))
            if not self._sim[y]:
                self._sim = None
                self._counters = {}
                return True
        return changed

    def _relevant(self, source: Node, target: Node) -> bool:
        """Could the inserted edge interact with any view edge?"""
        pattern = self.definition.pattern
        for x in pattern.nodes():
            if not self._compatible(x, source):
                continue
            for y in pattern.successors(x):
                if self._compatible(y, target):
                    return True
        return False

    # ------------------------------------------------------------------
    # Extension access
    # ------------------------------------------------------------------
    def extension(self) -> MaterializedView:
        """The current (always consistent) materialized extension.

        Cached behind a dirty flag: repeated reads between updates (or
        across updates that provably left the view unchanged) return
        the same object without rebuilding the edge-match sets.
        """
        cached = self._extension_cache
        if cached is not None:
            return cached
        self.stats.extension_builds += 1
        pattern = self.definition.pattern
        if self._sim is None:
            extension = MaterializedView(
                self.definition, {edge: set() for edge in pattern.edges()}
            )
        else:
            edge_matches: Dict[Tuple[PNode, PNode], Set[Tuple[Node, Node]]] = {}
            for edge in pattern.edges():
                x, y = edge
                targets = self._sim[y]
                edge_matches[edge] = {
                    (v, w)
                    for v in self._sim[x]
                    for w in self._graph.successors(v)
                    if w in targets
                }
            extension = MaterializedView(self.definition, edge_matches)
        self._extension_cache = extension
        return extension

    @property
    def graph(self) -> DataGraph:
        """Read-only view of the tracker's graph (for assertions)."""
        return self._graph


class IncrementalViewSet:
    """Maintain a whole view cache under one shared update stream.

    Tracks one graph copy (not one per view) and fans each update out to
    per-view :class:`IncrementalView` state (constructed with
    ``shared=True``).  The public surface mirrors the cache workflow:
    apply updates -- singly or as :class:`Delta` batches -- then read
    fully consistent extensions, or a
    :class:`~repro.views.storage.ViewSet` snapshot via
    :meth:`as_viewset`.  Per-update change accounting
    (:attr:`seq` / :meth:`changed_since`) tells cache layers exactly
    which views an update stream touched.

    Bounded view definitions are *not* maintainable (their extensions
    shift non-locally with distances); they are skipped at construction
    and their names recorded in :attr:`skipped_bounded` so owners (see
    :meth:`~repro.views.storage.ViewSet.track`) can warn and flag them
    stale after updates.
    """

    def __init__(
        self,
        definitions: Iterable[ViewDefinition],
        graph: DataGraph,
        *,
        budget: Optional[int] = None,
    ) -> None:
        self._graph = graph.copy()
        self._budget = budget
        self._trackers: Dict[str, IncrementalView] = {}
        self._subscribers: List[Callable[[MaintenanceEvent], None]] = []
        self._seq = 0
        self._changed_at: Dict[str, int] = {}
        skipped: List[str] = []
        for definition in definitions:
            if isinstance(definition.pattern, BoundedPattern):
                # Bounded views change non-locally under updates (the
                # whole distance index can shift); they are recorded --
                # not tracked -- so callers can flag them stale.
                skipped.append(definition.name)
                continue
            self._trackers[definition.name] = IncrementalView(
                definition, self._graph, shared=True, budget=budget
            )
        self.skipped_bounded: Tuple[str, ...] = tuple(skipped)

    def names(self) -> List[str]:
        """Names of the maintained views, in registration order."""
        return list(self._trackers)

    def definition(self, name: str) -> ViewDefinition:
        """The definition of maintained view ``name``."""
        return self._trackers[name].definition

    @property
    def graph(self) -> DataGraph:
        """The set's maintained graph copy.

        This *is* the current state of ``G`` as far as the maintained
        views are concerned; the engine adopts it on
        ``attach_maintenance`` so direct evaluation and snapshot
        refresh follow the same update stream.  Treat it as read-only:
        mutations must flow through :meth:`insert_edge` /
        :meth:`delete_edge` / :meth:`apply_delta`.
        """
        return self._graph

    @property
    def budget(self) -> Optional[int]:
        """The shared affected-area budget (``None``: never fall back)."""
        return self._budget

    # ------------------------------------------------------------------
    # Change accounting (what cache layers key on)
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Number of updates applied so far (skipped ops excluded)."""
        return self._seq

    def changed_since(self, seq: int) -> List[str]:
        """Views whose extensions changed after update number ``seq``
        (in registration order) -- the minimal eviction/refresh set for
        a consumer that last synchronized at ``seq``."""
        return [
            name
            for name in self._trackers
            if self._changed_at.get(name, 0) > seq
        ]

    def stats(self) -> Dict[str, ViewStats]:
        """Per-view cumulative maintenance counters."""
        return {name: tracker.stats for name, tracker in self._trackers.items()}

    # ------------------------------------------------------------------
    # Change notification (the hook cache layers subscribe to)
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[MaintenanceEvent], None]) -> None:
        """Register ``callback`` to run after every applied update.

        This is the invalidation hook the paper's deployment story
        needs: a query engine caching answers over ``V(G)`` subscribes
        here and discards (or refreshes) state when ``G`` changes.
        Callbacks fire after the view state is consistent.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[MaintenanceEvent], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, event: MaintenanceEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, source: Node, target: Node) -> bool:
        """Apply one edge insertion across every maintained view.

        Irrelevant insertions (no label-compatible view edge) cost
        ``O(1)`` per view edge; relevant ones revive matches through
        the affected-area closure (recomputing only the views whose
        closure exceeds the budget).  Returns whether any view
        extension changed; already-present edges are a no-op.
        """
        if self._graph.has_edge(source, target):
            return False
        self._graph.add_edge(source, target)
        return self._fan_out("_after_insert", INSERT, source, target)

    def delete_edge(self, source: Node, target: Node) -> bool:
        """Apply one edge deletion: shared removal, then each view's
        witness-counter cascade prunes exactly the invalidated matches.
        Returns whether any view extension changed; missing edges are a
        no-op (mirroring :meth:`insert_edge`)."""
        if not self._graph.has_edge(source, target):
            return False
        self._graph.remove_edge(source, target)
        return self._fan_out("_after_delete", DELETE, source, target)

    def _fan_out(self, method: str, op: str, source: Node, target: Node) -> bool:
        self._seq += 1
        any_changed = False
        for name, tracker in self._trackers.items():
            if getattr(tracker, method)(source, target):
                self._changed_at[name] = self._seq
                any_changed = True
        self._notify(MaintenanceEvent(op, source, target))
        return any_changed

    def apply_delta(self, delta: Delta) -> DeltaReport:
        """Apply a :class:`Delta` batch as one maintenance round.

        Ops apply in order (already-present insertions and missing
        deletions are skipped); subscribers still see one event per
        applied op, in order, against consistent state -- the batch
        buys coalesced *accounting*, not reordering.  The returned
        :class:`DeltaReport` names the views the whole round actually
        changed, which is what cache layers evict.
        """
        before = {
            name: tracker.stats.snapshot()
            for name, tracker in self._trackers.items()
        }
        start_seq = self._seq
        applied = skipped = 0
        with trace.span("maintenance.delta") as delta_span:
            for op, source, target in delta:
                present = self._graph.has_edge(source, target)
                if (op == INSERT) == present:
                    skipped += 1
                    continue
                if op == INSERT:
                    self.insert_edge(source, target)
                else:
                    self.delete_edge(source, target)
                applied += 1
            if delta_span is not None:
                delta_span.set(applied=applied, skipped=skipped)
        per_view = {}
        for name, tracker in self._trackers.items():
            after = tracker.stats.snapshot()
            per_view[name] = {
                key: after[key] - before[name][key] for key in after
            }
        report = DeltaReport(
            applied=applied,
            skipped=skipped,
            changed_views=tuple(self.changed_since(start_seq)),
            per_view=per_view,
        )
        _meter_delta(report)
        return report

    def extension(self, name: str) -> MaterializedView:
        """The current, always-consistent extension of view ``name``."""
        return self._trackers[name].extension()

    def as_viewset(self):
        """A consistent :class:`~repro.views.storage.ViewSet` snapshot
        (definitions plus freshly built extensions)."""
        from repro.views.storage import ViewSet

        views = ViewSet(t.definition for t in self._trackers.values())
        for name, tracker in self._trackers.items():
            views.set_extension(tracker.extension())
        return views
