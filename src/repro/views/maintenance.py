"""Incremental maintenance of materialized simulation views.

The paper's practicality argument leans on cached views staying fresh:
"incremental methods are already in place to efficiently maintain
cached pattern views (e.g., [15])".  This module provides a correct
maintenance layer for *simulation* views:

* **deletions are truly incremental**: the maximum simulation after an
  edge deletion is contained in the one before, so a witness-counter
  cascade (the same machinery as the matching engines) prunes exactly
  the invalidated matches -- cost proportional to the affected area,
  not to ``|G|``.
* **insertions** use a relevance fast path: an inserted edge whose
  endpoints cannot label-match any view edge provably leaves the
  extension unchanged and costs O(|V|); relevant insertions trigger a
  recomputation of the view's simulation (the paper's [15] develops the
  full affected-area insertion algorithm; a greatest-fixpoint revival
  can cascade arbitrarily far, so the safe simple choice is to recompute
  -- still amortized-cheap when most updates do not touch view labels).

The tracker owns its own copy of the graph so that callers cannot
desynchronize it; updates go through :meth:`IncrementalView.insert_edge`
and :meth:`IncrementalView.delete_edge`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, List, NamedTuple, Optional, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.pattern import BoundedPattern
from repro.simulation.simulation import maximum_simulation
from repro.views.view import MaterializedView, ViewDefinition

PNode = Hashable
Node = Hashable


class MaintenanceEvent(NamedTuple):
    """One applied graph update, delivered to subscribers.

    ``op`` is ``"insert"`` or ``"delete"``; ``source``/``target`` are
    the data-graph edge endpoints.  Events fire *after* the view state
    is consistent again, so a subscriber may read extensions directly.
    """

    op: str
    source: Node
    target: Node


class IncrementalView:
    """A simulation view kept consistent under edge updates."""

    def __init__(self, definition: ViewDefinition, graph: DataGraph) -> None:
        if isinstance(definition.pattern, BoundedPattern):
            raise TypeError(
                "IncrementalView maintains simulation views; bounded views "
                "change non-locally under updates (distances), rematerialize "
                "them instead"
            )
        self.definition = definition
        self._graph = graph.copy()
        self._sim: Optional[Dict[PNode, Set[Node]]] = None
        self._counters: Dict[Tuple[PNode, PNode], Dict[Node, int]] = {}
        self._recompute()

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _compatible(self, x: PNode, v: Node) -> bool:
        # An endpoint not yet in the graph (add_edge auto-creates nodes)
        # will exist with no labels/attributes once the edge is applied.
        if v not in self._graph:
            return self.definition.pattern.condition(x).matches(frozenset(), {})
        return self.definition.pattern.condition(x).matches(
            self._graph.labels(v), self._graph.attrs(v)
        )

    def _recompute(self) -> None:
        pattern = self.definition.pattern
        self._sim = maximum_simulation(pattern, self._graph, self._compatible)
        self._counters = {}
        if self._sim is None:
            return
        for x in pattern.nodes():
            for y in pattern.successors(x):
                targets = self._sim[y]
                self._counters[(x, y)] = {
                    v: sum(1 for w in self._graph.successors(v) if w in targets)
                    for v in self._sim[x]
                }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, source: Node, target: Node) -> None:
        """Apply an edge insertion and refresh the view state."""
        if self._graph.has_edge(source, target):
            return
        self._graph.add_edge(source, target)
        if self._relevant(source, target) or self._sim is None:
            # Revival may cascade arbitrarily far for a greatest
            # fixpoint; recompute (see module docstring).
            self._recompute()

    def delete_edge(self, source: Node, target: Node) -> None:
        """Apply an edge deletion, pruning invalidated matches only."""
        self._graph.remove_edge(source, target)
        self._prune_after_deletion(source, target)

    def _prune_after_deletion(self, source: Node, target: Node) -> None:
        """Counter cascade after ``source -> target`` left the graph."""
        if self._sim is None:
            # The view was empty; deletions cannot revive it.
            return
        pattern = self.definition.pattern
        removals: deque = deque()
        for x in pattern.nodes():
            if source not in self._sim[x]:
                continue
            for y in pattern.successors(x):
                if target not in self._sim[y]:
                    continue
                counter = self._counters[(x, y)]
                counter[source] -= 1
                if counter[source] == 0 and source in self._sim[x]:
                    self._sim[x].discard(source)
                    removals.append((x, source))
        while removals:
            y, w = removals.popleft()
            if not self._sim[y]:
                self._sim = None
                self._counters = {}
                return
            for x in pattern.predecessors(y):
                counter = self._counters[(x, y)]
                candidates = self._sim[x]
                for v in self._graph.predecessors(w):
                    if v in candidates:
                        counter[v] -= 1
                        if counter[v] == 0:
                            candidates.discard(v)
                            removals.append((x, v))
            if not self._sim[y]:
                self._sim = None
                self._counters = {}
                return

    def _relevant(self, source: Node, target: Node) -> bool:
        """Could the inserted edge interact with any view edge?"""
        pattern = self.definition.pattern
        for x in pattern.nodes():
            if not self._compatible(x, source):
                continue
            for y in pattern.successors(x):
                if self._compatible(y, target):
                    return True
        return False

    # ------------------------------------------------------------------
    # Extension access
    # ------------------------------------------------------------------
    def extension(self) -> MaterializedView:
        """The current (always consistent) materialized extension."""
        pattern = self.definition.pattern
        if self._sim is None:
            return MaterializedView(
                self.definition, {edge: set() for edge in pattern.edges()}
            )
        edge_matches: Dict[Tuple[PNode, PNode], Set[Tuple[Node, Node]]] = {}
        for edge in pattern.edges():
            x, y = edge
            targets = self._sim[y]
            edge_matches[edge] = {
                (v, w)
                for v in self._sim[x]
                for w in self._graph.successors(v)
                if w in targets
            }
        return MaterializedView(self.definition, edge_matches)

    @property
    def graph(self) -> DataGraph:
        """Read-only view of the tracker's graph copy (for assertions)."""
        return self._graph


class IncrementalViewSet:
    """Maintain a whole view cache under one shared update stream.

    Tracks one graph copy (not one per view) and fans each update out to
    per-view :class:`IncrementalView`-style state.  The public surface
    mirrors the cache workflow: apply updates, then read a fully
    consistent :class:`~repro.views.storage.ViewSet` snapshot via
    :meth:`as_viewset`.
    """

    def __init__(self, definitions, graph: DataGraph) -> None:
        self._graph = graph.copy()
        self._trackers = {}
        self._subscribers: List[Callable[[MaintenanceEvent], None]] = []
        for definition in definitions:
            tracker = IncrementalView.__new__(IncrementalView)
            tracker.definition = definition
            tracker._graph = self._graph  # shared copy
            tracker._sim = None
            tracker._counters = {}
            tracker._recompute()
            self._trackers[definition.name] = tracker

    def names(self):
        """Names of the maintained views, in registration order."""
        return list(self._trackers)

    def definition(self, name: str) -> ViewDefinition:
        """The definition of maintained view ``name``."""
        return self._trackers[name].definition

    # ------------------------------------------------------------------
    # Change notification (the hook cache layers subscribe to)
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[MaintenanceEvent], None]) -> None:
        """Register ``callback`` to run after every applied update.

        This is the invalidation hook the paper's deployment story
        needs: a query engine caching answers over ``V(G)`` subscribes
        here and discards (or refreshes) state when ``G`` changes.
        Callbacks fire after the view state is consistent.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[MaintenanceEvent], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, event: MaintenanceEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, source: Node, target: Node) -> None:
        """Apply one edge insertion across every maintained view.

        Irrelevant insertions (no label-compatible view edge) cost
        ``O(|V|)`` per view; relevant ones recompute the affected views
        only (see the module docstring for why insertion revival is not
        done incrementally).
        """
        if self._graph.has_edge(source, target):
            return
        # Decide relevance per view *before* mutating the shared graph,
        # then recompute only the affected trackers.
        affected = [
            tracker
            for tracker in self._trackers.values()
            if tracker._sim is None or tracker._relevant(source, target)
        ]
        self._graph.add_edge(source, target)
        for tracker in affected:
            tracker._recompute()
        self._notify(MaintenanceEvent("insert", source, target))

    def delete_edge(self, source: Node, target: Node) -> None:
        """Apply one edge deletion: shared removal, then each view's
        witness-counter cascade prunes exactly the invalidated matches."""
        self._graph.remove_edge(source, target)
        for tracker in self._trackers.values():
            tracker._prune_after_deletion(source, target)
        self._notify(MaintenanceEvent("delete", source, target))

    def extension(self, name: str) -> MaterializedView:
        """The current, always-consistent extension of view ``name``."""
        return self._trackers[name].extension()

    def as_viewset(self):
        """A consistent :class:`~repro.views.storage.ViewSet` snapshot
        (definitions plus freshly built extensions)."""
        from repro.views.storage import ViewSet

        views = ViewSet(t.definition for t in self._trackers.values())
        for name, tracker in self._trackers.items():
            views.set_extension(tracker.extension())
        return views
