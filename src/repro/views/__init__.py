"""Views: definitions, materialized extensions, caching and maintenance.

A *view definition* ``V`` is itself a (bounded) graph pattern query; its
*extension* ``V(G)`` in a data graph is the query result, kept as
per-view-edge match sets (Section II-B).  For bounded views the
extension also carries the distance index ``I(V)`` of Section VI-A:
the actual distance of every materialized pair, so that BMatchJoin can
filter pairs against each query edge's own bound in O(1).

* :class:`~repro.views.view.ViewDefinition`, :func:`~repro.views.view.materialize`
* :class:`~repro.views.storage.ViewSet` -- a named cache of definitions
  and extensions with per-view version stamps and size accounting (for
  the ``|V(G)|/|G|`` fractions the paper reports); optionally owns a
  maintenance backend (:meth:`~repro.views.storage.ViewSet.track` /
  :meth:`~repro.views.storage.ViewSet.apply_delta`).
* :mod:`~repro.views.maintenance` -- the delta pipeline's view layer:
  :class:`~repro.views.maintenance.Delta` batches, incremental
  deletions *and* affected-area-bounded incremental insertions (in the
  spirit of the paper's [15]), per-view change accounting.
* :mod:`~repro.views.selection` -- workload-driven view selection
  (future-work item no. 1 in Section VIII).
"""

from repro.views.view import (
    MaterializedView,
    ViewDefinition,
    bind_extension,
    materialize,
)
from repro.views.storage import ViewSet
from repro.views.maintenance import Delta

__all__ = [
    "Delta",
    "MaterializedView",
    "ViewDefinition",
    "ViewSet",
    "bind_extension",
    "materialize",
]
