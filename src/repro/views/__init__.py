"""Views: definitions, materialized extensions, caching and maintenance.

A *view definition* ``V`` is itself a (bounded) graph pattern query; its
*extension* ``V(G)`` in a data graph is the query result, kept as
per-view-edge match sets (Section II-B).  For bounded views the
extension also carries the distance index ``I(V)`` of Section VI-A:
the actual distance of every materialized pair, so that BMatchJoin can
filter pairs against each query edge's own bound in O(1).

* :class:`~repro.views.view.ViewDefinition`, :func:`~repro.views.view.materialize`
* :class:`~repro.views.storage.ViewSet` -- a named cache of definitions
  and extensions with size accounting (for the ``|V(G)|/|G|`` fractions
  the paper reports).
* :mod:`~repro.views.maintenance` -- incremental maintenance of cached
  extensions under edge insertions/deletions (the paper defers this to
  [15]; a correct recompute-localized variant is provided).
* :mod:`~repro.views.selection` -- workload-driven view selection
  (future-work item no. 1 in Section VIII).
"""

from repro.views.view import MaterializedView, ViewDefinition, materialize
from repro.views.storage import ViewSet

__all__ = ["MaterializedView", "ViewDefinition", "ViewSet", "materialize"]
