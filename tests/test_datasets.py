"""Tests for the dataset generators and workload builders."""

import pytest

from repro.core.containment import contains
from repro.core.bounded.bcontainment import bounded_contains
from repro.datasets import (
    amazon_graph,
    amazon_views,
    citation_graph,
    citation_views,
    densification_graph,
    generate_views,
    query_from_views,
    random_bounded_pattern,
    random_query,
    random_graph,
    youtube_graph,
    youtube_views,
)
from repro.datasets.synthetic import DEFAULT_LABELS
from repro.graph import ANY, BoundedPattern
from repro.graph.scc import is_dag
from repro.graph.stats import graph_stats


class TestSyntheticGenerator:
    def test_sizes(self):
        g = random_graph(500, 1000, seed=1)
        assert g.num_nodes == 500
        assert 900 <= g.num_edges <= 1100

    def test_deterministic(self):
        a = random_graph(200, 400, seed=7)
        b = random_graph(200, 400, seed=7)
        assert set(a.edges()) == set(b.edges())
        assert all(a.labels(n) == b.labels(n) for n in a.nodes())

    def test_different_seeds_differ(self):
        a = random_graph(200, 400, seed=1)
        b = random_graph(200, 400, seed=2)
        assert set(a.edges()) != set(b.edges())

    def test_labels_from_alphabet(self):
        g = random_graph(100, 200, labels=("x", "y"), seed=0)
        for node in g.nodes():
            assert g.labels(node) <= {"x", "y"}

    def test_densification_law(self):
        g = densification_graph(1000, 1.15, seed=0)
        expected = int(round(1000**1.15))
        assert abs(g.num_edges - expected) < expected * 0.2

    def test_densification_alpha_validation(self):
        with pytest.raises(ValueError):
            densification_graph(100, 3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_graph(0, 10)

    def test_no_self_loops(self):
        g = random_graph(100, 300, seed=3)
        assert all(s != t for s, t in g.edges())


class TestRealDatasetStandins:
    @pytest.mark.parametrize(
        "factory,label_pool,attrs",
        [
            (amazon_graph, ("Book", "Music", "DVD", "Video", "Toy", "Software"),
             ("group", "salesrank", "rating")),
            (citation_graph, ("DB", "AI", "SYS", "NET", "THEORY", "IR"),
             ("area", "venue", "year")),
        ],
    )
    def test_schema(self, factory, label_pool, attrs):
        g = factory(500, 1500, seed=2)
        assert g.num_nodes == 500
        some = next(iter(g.nodes()))
        assert g.labels(some) & set(label_pool)
        for attr in attrs:
            assert attr in g.attrs(some)

    def test_youtube_schema(self):
        g = youtube_graph(500, 1400, seed=2)
        some = next(iter(g.nodes()))
        assert "video" in g.labels(some)
        for attr in "CALRV":
            assert attr in g.attrs(some)

    def test_citation_is_dag(self):
        g = citation_graph(800, 2500, seed=1)
        assert is_dag(g)
        # Citations point strictly backward in time.
        for source, target in g.edges():
            assert g.attrs(target)["year"] < g.attrs(source)["year"]

    def test_stats_capture_label_skew(self):
        g = amazon_graph(2000, 6000, seed=0)
        stats = graph_stats(g)
        assert stats.label_counts["Book"] > stats.label_counts["Software"]

    def test_reciprocity_produces_mutual_edges(self):
        g = youtube_graph(1000, 4000, seed=0)
        mutual = sum(1 for s, t in g.edges() if g.has_edge(t, s))
        assert mutual > 0


class TestViewSuites:
    @pytest.mark.parametrize(
        "suite,graph_factory",
        [
            (amazon_views, lambda: amazon_graph(8000, 24000, seed=1)),
            (citation_views, lambda: citation_graph(8000, 20000, seed=1)),
            (youtube_views, lambda: youtube_graph(8000, 23000, seed=1)),
        ],
    )
    def test_twelve_views_materialize(self, suite, graph_factory):
        """All 12 views materialize, and (at this reduced scale) at most
        one is empty -- at the benchmark scale of ~30K nodes all twelve
        are nonempty."""
        views = suite()
        assert len(views) == 12
        graph = graph_factory()
        views.materialize(graph)
        empty = [v.name for v in views if views.extension(v.name).is_empty]
        assert len(empty) <= 1, empty

    def test_extension_fraction_below_half(self):
        views = youtube_views()
        g = youtube_graph(3000, 9000, seed=1)
        views.materialize(g)
        assert views.extension_fraction(g) < 0.5

    def test_amazon_views_count_extension(self):
        views = amazon_views(count=15)
        assert len(views) == 15


class TestRandomQueries:
    def test_dag_query(self):
        q = random_query(6, 9, DEFAULT_LABELS, seed=1, cyclic=False)
        assert q.num_nodes == 6
        assert is_dag(q)
        assert q.is_connected()

    def test_cyclic_query(self):
        q = random_query(6, 9, DEFAULT_LABELS, seed=1, cyclic=True)
        assert not is_dag(q)
        assert q.is_connected()

    def test_bounded_pattern_bounds_in_range(self):
        q = random_bounded_pattern(5, 8, DEFAULT_LABELS, max_bound=3, seed=2)
        assert isinstance(q, BoundedPattern)
        for edge in q.edges():
            bound = q.bound(edge)
            assert bound is ANY or 1 <= bound <= 3

    def test_star_probability(self):
        q = random_bounded_pattern(
            5, 8, DEFAULT_LABELS, max_bound=3, seed=2, star_probability=1.0
        )
        assert all(q.bound(e) is ANY for e in q.edges())

    def test_edge_floor_validation(self):
        with pytest.raises(ValueError):
            random_query(5, 2, DEFAULT_LABELS)


class TestGenerateViews:
    def test_count_and_determinism(self):
        a = generate_views(DEFAULT_LABELS, 22, seed=5)
        b = generate_views(DEFAULT_LABELS, 22, seed=5)
        assert len(a) == 22
        assert a.names() == b.names()
        for name in a.names():
            assert set(a.definition(name).pattern.edges()) == set(
                b.definition(name).pattern.edges()
            )

    def test_bounded_views(self):
        views = generate_views(DEFAULT_LABELS, 10, seed=1, bounded=True, max_bound=4)
        assert all(v.is_bounded for v in views)


class TestQueryFromViews:
    @pytest.mark.parametrize("seed", range(8))
    def test_containment_by_construction(self, seed):
        views = generate_views(DEFAULT_LABELS, 22, seed=3)
        q = query_from_views(views, 5, 8, seed=seed)
        assert contains(q, views).holds

    @pytest.mark.parametrize("seed", range(8))
    def test_bounded_containment_by_construction(self, seed):
        views = generate_views(DEFAULT_LABELS, 22, seed=3, bounded=True)
        q = query_from_views(views, 5, 8, seed=seed)
        assert isinstance(q, BoundedPattern)
        assert bounded_contains(q, views).holds

    def test_require_dag(self):
        views = citation_views()
        for seed in range(6):
            q = query_from_views(views, 6, 9, seed=seed, require_dag=True)
            assert is_dag(q)
            assert contains(q, views).holds

    def test_rejects_empty_viewset(self):
        from repro.views import ViewSet

        with pytest.raises(ValueError):
            query_from_views(ViewSet(), 4, 4)

    def test_sizes_approach_targets(self):
        views = generate_views(DEFAULT_LABELS, 22, seed=3)
        q = query_from_views(views, 6, 10, seed=0)
        assert q.num_edges >= 10 - 3
        assert q.num_nodes >= 4
