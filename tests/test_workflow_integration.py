"""End-to-end scenario tests tying the subsystems together.

The flagship scenario is the one the paper's conclusion sketches: pick
views for a *workload* of frequent queries, materialize just those,
keep them maintained, and answer every workload query from the cache.
"""

import random

import pytest

from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.minimization import minimize
from repro.core.rewriting import hybrid_answer, partial_answer
from repro.simulation import match
from repro.views import ViewSet
from repro.views.maintenance import IncrementalViewSet
from repro.views.selection import select_views_for_workload

from helpers import build_graph, build_pattern, random_labeled_graph


def org_graph(seed=2):
    rng = random.Random(seed)
    g = random_labeled_graph(rng, 400, 1400, labels="ABCDE")
    return g


def workload():
    q1 = build_pattern(
        {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
    )
    q2 = build_pattern(
        {"b": "B", "c": "C", "d": "D"}, [("b", "c"), ("c", "d"), ("d", "b")]
    )
    q3 = build_pattern(
        {"a": "A", "b": "B", "e": "E"}, [("a", "b"), ("a", "e")]
    )
    return [q1, q2, q3]


class TestWorkloadToAnswers:
    def test_select_materialize_answer(self):
        graph = org_graph()
        queries = workload()
        selected, per_query = select_views_for_workload(queries)
        selected.materialize(graph)
        for qi, query in enumerate(queries):
            cache = selected.subset(per_query[qi])
            containment = contains(query, cache)
            assert containment.holds
            result = match_join(query, containment, cache)
            assert result.edge_matches == match(query, graph).edge_matches

    def test_selection_then_maintenance(self):
        """The selected cache stays correct under graph churn."""
        graph = org_graph()
        queries = workload()[:2]
        selected, per_query = select_views_for_workload(queries)
        tracked = IncrementalViewSet(selected.definitions(), graph)

        rng = random.Random(7)
        for _ in range(25):
            if rng.random() < 0.5 and graph.num_edges:
                edge = rng.choice(list(graph.edges()))
                graph.remove_edge(*edge)
                tracked.delete_edge(*edge)
            else:
                a, b = rng.randrange(400), rng.randrange(400)
                if a == b or graph.has_edge(a, b):
                    continue
                graph.add_edge(a, b)
                tracked.insert_edge(a, b)

        snapshot = tracked.as_viewset()
        for qi, query in enumerate(queries):
            cache = snapshot.subset(per_query[qi])
            containment = contains(query, cache)
            assert containment.holds
            result = match_join(query, containment, cache)
            assert result.edge_matches == match(query, graph).edge_matches


class TestMinimizeThenAnswer:
    def test_minimized_query_through_views(self):
        """Minimize a redundant query, answer the smaller one from
        views, reconstruct the original's answer via the mapping."""
        graph = org_graph()
        query = build_pattern(
            {"a": "A", "b1": "B", "b2": "B", "c": "C"},
            [("a", "b1"), ("a", "b2"), ("b1", "c"), ("b2", "c")],
        )
        outcome = minimize(query)
        assert outcome.minimized.num_edges == 2

        views = ViewSet()
        from repro.views import ViewDefinition

        for i, edge in enumerate(outcome.minimized.edges()):
            views.add(ViewDefinition(f"m{i}", outcome.minimized.subpattern([edge])))
        views.materialize(graph)
        containment = contains(outcome.minimized, views)
        assert containment.holds
        small = match_join(outcome.minimized, containment, views)

        full = match(query, graph)
        for edge in query.edges():
            reconstructed = set()
            for target in outcome.mapping[edge]:
                reconstructed |= small.edge_matches[target]
            assert reconstructed == full.edge_matches[edge]


class TestGracefulDegradation:
    def test_partial_then_hybrid_then_full(self):
        """As coverage grows the same interfaces degrade gracefully:
        partial (over-approximate) -> hybrid (exact, some graph access)
        -> MatchJoin (exact, no graph access)."""
        graph = org_graph()
        query = workload()[0]
        from repro.views import ViewDefinition

        edges = query.edges()
        half = ViewSet([ViewDefinition("half", query.subpattern([edges[0]]))])
        half.materialize(graph)

        partial = partial_answer(query, half)
        assert 0 < partial.coverage < 1
        exact = match(query, graph)
        for edge in partial.covered:
            assert exact.edge_matches[edge] <= partial.result.edge_matches[edge]

        hybrid = hybrid_answer(query, half, graph)
        assert hybrid.edge_matches == exact.edge_matches

        full = ViewSet(
            ViewDefinition(f"e{i}", query.subpattern([edge]))
            for i, edge in enumerate(edges)
        )
        full.materialize(graph)
        containment = contains(query, full)
        assert containment.holds
        joined = match_join(query, containment, full)
        assert joined.edge_matches == exact.edge_matches
