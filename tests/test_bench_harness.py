"""Tests for the benchmark harness plumbing (not the timings)."""

import pytest

from repro.bench import workloads
from repro.bench.reporting import Table, timed
from repro.core.containment import contains
from repro.core.bounded.bcontainment import bounded_contains


class TestTable:
    def make(self):
        t = Table("Fig. X", "demo", ["x", "alg1 (s)", "alg2 (s)"])
        t.add_row("(4,6)", 0.5, 0.25)
        t.add_row("(6,9)", 1.0, 0.5)
        return t

    def test_columns(self):
        t = self.make()
        assert t.column("x") == ["(4,6)", "(6,9)"]
        assert t.column("alg2 (s)") == [0.25, 0.5]

    def test_markdown(self):
        t = self.make()
        t.notes = "a note"
        md = t.to_markdown()
        assert "### Fig. X: demo" in md
        assert "| (4,6) | 0.5000 | 0.2500 |" in md
        assert md.endswith("a note")

    def test_print(self, capsys):
        self.make().print()
        assert "Fig. X" in capsys.readouterr().out

    def test_timed_returns_best(self):
        calls = []

        def fn():
            calls.append(1)

        elapsed = timed(fn, repeat=3)
        assert len(calls) == 3
        assert elapsed >= 0


class TestWorkloads:
    def setup_method(self):
        workloads.clear_cache()

    def teardown_method(self):
        workloads.clear_cache()

    def test_memoization(self):
        g1, v1 = workloads.synthetic(600)
        g2, v2 = workloads.synthetic(600)
        assert g1 is g2 and v1 is v2
        g3, _ = workloads.synthetic(700)
        assert g3 is not g1

    def test_synthetic_shape(self):
        graph, views = workloads.synthetic(800)
        assert graph.num_nodes == 800
        assert abs(graph.num_edges - 1600) < 400
        assert views.cardinality == 22
        assert views.is_materialized(views.names()[0])

    def test_pick_query_contained_and_preferring_nonempty(self):
        graph, views = workloads.synthetic(800)
        query = workloads.pick_query(views, 4, 6, graph=graph, tag="t800")
        assert contains(query, views).holds

    def test_bounded_suite_promotion(self):
        graph, views = workloads.synthetic(600)
        bounded = workloads.bounded_suite(views, 3, tag="t600")
        assert bounded.cardinality == views.cardinality
        for definition in bounded:
            assert definition.is_bounded
            for edge in definition.pattern.edges():
                assert definition.pattern.bound(edge) == 3

    def test_bounded_dataset_materializes(self):
        graph, views = workloads.synthetic_bounded(600, 2)
        assert all(views.is_materialized(n) for n in views.names())
        query = workloads.pick_query(views, 3, 4, graph=graph, tag="b600")
        assert bounded_contains(query, views).holds

    def test_overlapping_views_structure(self):
        full, composites = workloads.overlapping_views()
        assert len(full) == len(composites) + 22
        # Small views come first (minimal scans in order).
        assert full.names()[0].startswith("S")
        assert full.names()[-1].startswith("BIG")


class TestExperimentRegistry:
    def test_all_figures_registered(self):
        from repro.bench.experiments import EXPERIMENTS

        expected = {f"fig8{c}" for c in "abcdefghijkl"} | {"summary"}
        assert set(EXPERIMENTS) == expected

    def test_tiny_scale_run(self):
        """One experiment end-to-end at tiny scale produces a table with
        the right columns."""
        from repro.bench.experiments import exp_fig8d

        workloads.clear_cache()
        try:
            table = exp_fig8d(scale=0.1)
        finally:
            workloads.clear_cache()
        assert table.headers[0] == "|V|"
        assert len(table.rows) == 8
        for row in table.rows:
            assert all(value >= 0 for value in row[1:])

    def test_run_all_cli_unknown_experiment(self):
        from repro.bench.run_all import main

        with pytest.raises(SystemExit):
            main(["--only", "nonsense"])

    def test_run_all_writes_output(self, tmp_path, capsys):
        from repro.bench.run_all import main

        workloads.clear_cache()
        out = tmp_path / "results.md"
        try:
            rc = main(["--only", "fig8g", "--scale", "0.1", "--chart",
                       "--out", str(out)])
        finally:
            workloads.clear_cache()
        assert rc == 0
        text = out.read_text()
        assert "Fig. 8(g)" in text
        printed = capsys.readouterr().out
        assert "contain QDAG" in printed
        assert "|#" in printed  # the ASCII chart rendered


class TestAsciiChart:
    def test_chart_renders_bars(self):
        from repro.bench.reporting import ascii_chart

        t = Table("Fig. Z", "demo", ["x", "a (s)", "b (s)"])
        t.add_row("p1", 1.0, 0.5)
        t.add_row("p2", 2.0, 1.0)
        chart = ascii_chart(t, width=10)
        assert "Fig. Z" in chart
        lines = [l for l in chart.splitlines() if "|" in l]
        assert len(lines) == 4
        # The 2.0 bar must be full width.
        assert "#" * 10 in chart

    def test_chart_skips_non_numeric(self):
        from repro.bench.reporting import ascii_chart

        t = Table("Fig. Z", "demo", ["x", "name"])
        t.add_row("p1", "hello")
        assert "no numeric series" in ascii_chart(t)

    def test_chart_all_zero(self):
        from repro.bench.reporting import ascii_chart

        t = Table("Fig. Z", "demo", ["x", "a (s)"])
        t.add_row("p1", 0.0)
        assert "all-zero" in ascii_chart(t)
