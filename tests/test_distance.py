"""Tests for the distance oracles (BFS caches, weighted pattern APSP)."""

import random

import networkx as nx
import pytest

from repro.graph import ANY, BoundedPattern, DataGraph
from repro.simulation.distance import (
    INF,
    BoundedDistanceCache,
    WeightedPatternDistances,
    reachable_from,
    reverse_reachable_within,
)

from helpers import build_graph, random_labeled_graph


class TestReachability:
    def test_reachable_from(self):
        g = build_graph({i: "X" for i in range(5)}, [(0, 1), (1, 2), (3, 4)])
        assert reachable_from(g, 0) == {1, 2}
        assert reachable_from(g, 2) == set()

    def test_reachable_through_cycle_includes_self(self):
        g = build_graph({1: "X", 2: "X"}, [(1, 2), (2, 1)])
        assert reachable_from(g, 1) == {1, 2}


class TestReverseReachableWithin:
    def make(self):
        return build_graph(
            {i: "X" for i in range(6)},
            [(0, 1), (1, 2), (2, 3), (4, 2), (5, 4)],
        )

    def test_bounded(self):
        g = self.make()
        assert reverse_reachable_within(g, {2}, 1) == {1, 4}
        assert reverse_reachable_within(g, {2}, 2) == {0, 1, 4, 5}

    def test_multi_source(self):
        g = self.make()
        assert reverse_reachable_within(g, {2, 3}, 1) == {1, 2, 4}

    def test_unbounded(self):
        g = self.make()
        assert reverse_reachable_within(g, {3}, ANY) == {0, 1, 2, 4, 5}

    def test_agrees_with_bfs_on_random_graphs(self):
        rng = random.Random(9)
        for _ in range(10):
            g = random_labeled_graph(rng, 15, 40)
            targets = {rng.randrange(15) for _ in range(3)}
            bound = rng.randint(1, 4)
            expected = {
                v
                for v in g.nodes()
                if any(t in g.descendants_within(v, bound) for t in targets)
            }
            assert reverse_reachable_within(g, targets, bound) == expected


class TestBoundedDistanceCache:
    def test_descendants_and_memoization(self):
        g = build_graph({i: "X" for i in range(4)}, [(0, 1), (1, 2), (2, 3)])
        cache = BoundedDistanceCache(g)
        assert cache.descendants(0, 2) == {1: 1, 2: 2}
        # Narrower query answered from the cached wider one.
        assert cache.descendants(0, 1) == {1: 1}
        assert cache.descendants(0, 3) == {1: 1, 2: 2, 3: 3}

    def test_within(self):
        g = build_graph({i: "X" for i in range(4)}, [(0, 1), (1, 2)])
        cache = BoundedDistanceCache(g)
        assert cache.within(0, 2, 2)
        assert not cache.within(0, 2, 1)
        assert cache.within(0, 2, ANY)
        assert not cache.within(2, 0, ANY)

    def test_matches_networkx_shortest_paths(self):
        rng = random.Random(13)
        g = random_labeled_graph(rng, 20, 60)
        nxg = nx.DiGraph(list(g.edges()))
        cache = BoundedDistanceCache(g)
        for source in list(g.nodes())[:10]:
            mine = cache.descendants(source, 4)
            if source not in nxg:
                assert mine == {}
                continue
            lengths = nx.single_source_shortest_path_length(nxg, source, cutoff=4)
            lengths.pop(source, None)
            # Nonempty-path semantics: source reachable through a cycle.
            if source in g.descendants_within(source, 4):
                lengths[source] = g.descendants_within(source, 4)[source]
            assert mine == lengths


class TestWeightedPatternDistances:
    def make(self):
        q = BoundedPattern()
        for n in "abcd":
            q.add_node(n, n.upper())
        q.add_edge("a", "b", 2)
        q.add_edge("b", "c", 3)
        q.add_edge("a", "c", 10)
        q.add_edge("c", "d", ANY)
        return q

    def test_min_weight_paths(self):
        d = WeightedPatternDistances(self.make())
        assert d.distance("a", "b") == 2
        assert d.distance("a", "c") == 5  # through b, cheaper than direct 10
        assert d.distance("b", "c") == 3

    def test_star_edges_are_infinite_for_distance(self):
        d = WeightedPatternDistances(self.make())
        assert d.distance("c", "d") == INF
        assert d.distance("a", "d") == INF

    def test_reaches_traverses_star_edges(self):
        d = WeightedPatternDistances(self.make())
        assert d.reaches("a", "d")
        assert d.reaches("c", "d")
        assert not d.reaches("d", "a")

    def test_within(self):
        d = WeightedPatternDistances(self.make())
        assert d.within("a", "c", 5)
        assert not d.within("a", "c", 4)
        assert d.within("a", "d", ANY)
        assert not d.within("a", "d", 100)

    def test_nonempty_path_semantics(self):
        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b", "B")
        q.add_edge("a", "b", 1)
        q.add_edge("b", "a", 2)
        d = WeightedPatternDistances(q)
        # a -> a only through the cycle: weight 3.
        assert d.distance("a", "a") == 3
        assert d.reaches("a", "a")

    def test_matches_networkx_dijkstra(self):
        rng = random.Random(21)
        q = BoundedPattern()
        n = 8
        for i in range(n):
            q.add_node(i, f"L{i}")
        for _ in range(16):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b and not q.has_edge(a, b):
                q.add_edge(a, b, rng.randint(1, 5))
        d = WeightedPatternDistances(q)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        for edge in q.edges():
            nxg.add_edge(*edge, weight=q.bound(edge))
        for source in range(n):
            for target in range(n):
                if source == target:
                    continue  # nonempty-path semantics differ; checked above
                try:
                    expected = nx.dijkstra_path_length(nxg, source, target)
                except nx.NetworkXNoPath:
                    expected = INF
                assert d.distance(source, target) == expected
