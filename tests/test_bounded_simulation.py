"""Tests for bounded simulation (BMatch) and its distance machinery."""

import random

import pytest

from repro.graph import ANY, BoundedPattern, DataGraph
from repro.simulation import bounded_match, match
from repro.simulation.bounded import (
    bounded_match_with_distances,
    bounded_simulates,
    maximum_bounded_simulation,
)

from helpers import (
    build_bounded,
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
    reference_bounded_simulation,
)


class TestBasics:
    def test_edge_to_path(self):
        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        result = bounded_match(q, g)
        assert result
        assert result.edge_matches[("a", "b")] == {(1, 3)}

    def test_bound_too_small(self):
        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 1)])
        assert not bounded_match(q, g)

    def test_star_bound_reaches_any_depth(self):
        nodes = {i: "X" for i in range(2, 9)}
        nodes[1] = "A"
        nodes[9] = "B"
        edges = [(i, i + 1) for i in range(1, 9)]
        g = build_graph(nodes, edges)
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", ANY)])
        result = bounded_match(q, g)
        assert result.edge_matches[("a", "b")] == {(1, 9)}

    def test_nonempty_path_semantics_self(self):
        # A->A requires a cycle; a single node does not match.
        g = build_graph({1: "A"}, [])
        q = build_bounded({"a1": "A", "a2": "A"}, [("a1", "a2", 2)])
        assert not bounded_match(q, g)
        g2 = build_graph({1: "A"}, [(1, 1)])
        assert bounded_match(q, g2)

    def test_bound_one_equals_plain_simulation(self):
        rng = random.Random(3)
        g = random_labeled_graph(rng, 20, 45)
        plain = random_pattern(rng, 3, 4)
        bounded = plain.bounded(default=1)
        plain_result = match(plain, g)
        bounded_result = bounded_match(bounded, g)
        assert bool(plain_result) == bool(bounded_result)
        if plain_result:
            assert plain_result.edge_matches == {
                e: set(pairs) for e, pairs in bounded_result.edge_matches.items()
            }

    def test_larger_bound_matches_superset(self):
        rng = random.Random(4)
        g = random_labeled_graph(rng, 25, 60)
        base = random_pattern(rng, 3, 3)
        q2 = base.bounded(default=2)
        q4 = base.bounded(default=4)
        r2 = bounded_match(q2, g)
        r4 = bounded_match(q4, g)
        if r2:
            assert r4
            for edge, pairs in r2.edge_matches.items():
                assert pairs <= r4.edge_matches[edge]


class TestPaperExample8:
    """Fig. 3 graph with the bounds of Example 8."""

    def setup_method(self):
        self.g = build_graph(
            {
                "PM1": "PM", "DB1": "DB", "DB2": "DB", "AI1": "AI", "AI2": "AI",
                "SE1": "SE", "SE2": "SE", "Bio1": "Bio",
            },
            [
                ("PM1", "AI2"), ("DB1", "AI2"), ("DB2", "AI2"),
                ("AI1", "SE1"), ("AI2", "SE2"), ("SE1", "DB2"), ("SE2", "DB1"),
                ("AI2", "Bio1"), ("SE1", "Bio1"),
                ("PM1", "AI1"),
            ],
        )
        q = BoundedPattern()
        for node, label in [
            ("PM", "PM"), ("AI", "AI"), ("DB", "DB"), ("SE", "SE"), ("Bio", "Bio"),
        ]:
            q.add_node(node, label)
        q.add_edge("PM", "AI", 1)
        q.add_edge("DB", "AI", 1)
        q.add_edge("AI", "SE", 1)
        q.add_edge("SE", "DB", 1)
        q.add_edge("AI", "Bio", 2)
        self.q = q

    def test_example_8_table(self):
        result = bounded_match(self.q, self.g)
        em = result.edge_matches
        assert em[("PM", "AI")] == {("PM1", "AI1"), ("PM1", "AI2")}
        assert em[("AI", "Bio")] == {("AI1", "Bio1"), ("AI2", "Bio1")}
        assert em[("DB", "AI")] == {("DB1", "AI2"), ("DB2", "AI2")}
        assert em[("AI", "SE")] == {("AI1", "SE1"), ("AI2", "SE2")}
        assert em[("SE", "DB")] == {("SE1", "DB2"), ("SE2", "DB1")}

    def test_example_8_distances(self):
        _, distances = bounded_match_with_distances(self.q, self.g)
        assert distances[("AI", "Bio")][("AI1", "Bio1")] == 2
        assert distances[("AI", "Bio")][("AI2", "Bio1")] == 1


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances(self, seed):
        rng = random.Random(seed + 1000)
        g = random_labeled_graph(rng, rng.randint(3, 18), rng.randint(3, 45))
        base = random_pattern(rng, rng.randint(2, 4), rng.randint(1, 5))
        q = BoundedPattern()
        for node in base.nodes():
            q.add_node(node, base.condition(node))
        for source, target in base.edges():
            bound = rng.choice([1, 2, 3, ANY])
            q.add_edge(source, target, bound)
        expected = reference_bounded_simulation(q, g)
        actual = maximum_bounded_simulation(q, g)
        assert actual == expected

    def test_match_sets_respect_bounds(self):
        rng = random.Random(0)
        g = random_labeled_graph(rng, 20, 50)
        base = random_pattern(rng, 3, 4)
        q = base.bounded(default=2)
        result = bounded_match(q, g)
        if not result:
            pytest.skip("no match for this instance")
        for edge, pairs in result.edge_matches.items():
            for v, w in pairs:
                assert w in g.descendants_within(v, 2)


class TestDistancesOutput:
    def test_distances_match_bfs(self):
        g = build_graph(
            {1: "A", 2: "X", 3: "B", 4: "B"}, [(1, 2), (2, 3), (1, 4)]
        )
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)])
        _, distances = bounded_match_with_distances(q, g)
        assert distances[("a", "b")] == {(1, 3): 2, (1, 4): 1}

    def test_empty_result_distances(self):
        g = build_graph({1: "A"}, [])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        result, distances = bounded_match_with_distances(q, g)
        assert not result
        assert distances == {}

    def test_bounded_simulates(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 5)])
        assert bounded_simulates(q, g)
