"""Tests for the graph simulation engine (Match)."""

import random

import pytest

from repro.graph import DataGraph, P, Pattern
from repro.simulation import match
from repro.simulation.simulation import maximum_simulation, simulates

from helpers import (
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
    reference_edge_matches,
    reference_simulation,
)


class TestBasicMatching:
    def test_single_edge(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        result = match(q, g)
        assert result
        assert result.node_matches == {"a": {1}, "b": {2}}
        assert result.edge_matches == {("a", "b"): {(1, 2)}}

    def test_label_mismatch_fails(self):
        g = build_graph({1: "A", 2: "C"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        result = match(q, g)
        assert not result
        assert result.edge_matches == {}

    def test_missing_edge_fails(self):
        g = build_graph({1: "A", 2: "B"}, [(2, 1)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert not match(q, g)

    def test_simulation_not_isomorphism(self):
        # One data node may match several pattern nodes and vice versa.
        g = build_graph({1: "A", 2: "B"}, [(1, 2), (2, 2)])
        q = build_pattern({"a": "A", "b1": "B", "b2": "B"}, [("a", "b1"), ("b1", "b2")])
        result = match(q, g)
        assert result.node_matches["b1"] == {2}
        assert result.node_matches["b2"] == {2}

    def test_cycle_pattern_on_cycle_graph(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        result = match(q, g)
        assert result.node_matches == {"a": {1}, "b": {2}}

    def test_cycle_pattern_on_dag_fails(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        assert not match(q, g)

    def test_propagation_prunes_chain(self):
        # c-labeled sink missing => whole chain fails.
        g = build_graph({1: "A", 2: "B", 3: "C"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        assert not match(q, g)

    def test_sink_pattern_node_matches_all_labeled(self):
        # 3 has no valid predecessor but still matches the sink node "b".
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        result = match(q, g)
        assert result.node_matches["b"] == {2, 3}
        assert result.edge_matches[("a", "b")] == {(1, 2)}

    def test_empty_graph_fails(self):
        q = build_pattern({"a": "A"}, [])
        assert not match(q, DataGraph())


class TestAttributePatterns:
    def test_predicate_conditions(self):
        g = DataGraph()
        g.add_node(1, labels="video", attrs={"rate": 5, "category": "Music"})
        g.add_node(2, labels="video", attrs={"rate": 2, "category": "Music"})
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        q = Pattern()
        q.add_node("hi", (P("rate") >= 4).with_label("video"))
        q.add_node("any", P("category") == "Music")
        q.add_edge("hi", "any")
        result = match(q, g)
        assert result.node_matches["hi"] == {1}
        assert result.node_matches["any"] == {1, 2}


class TestPaperExample2:
    def setup_method(self):
        self.g = build_graph(
            {
                "Bob": "PM", "Walt": "PM", "Mat": "DBA", "Fred": "DBA",
                "Mary": "DBA", "Dan": "PRG", "Pat": "PRG", "Bill": "PRG",
                "Jean": "BA", "Emmy": "ST",
            },
            [
                ("Bob", "Mat"), ("Walt", "Mat"), ("Bob", "Dan"), ("Walt", "Bill"),
                ("Fred", "Pat"), ("Mat", "Pat"), ("Mary", "Bill"),
                ("Dan", "Fred"), ("Pat", "Mary"), ("Pat", "Mat"), ("Bill", "Mat"),
                ("Walt", "Jean"), ("Jean", "Emmy"),
            ],
        )
        self.q = build_pattern(
            {"PM": "PM", "DBA1": "DBA", "DBA2": "DBA", "PRG1": "PRG", "PRG2": "PRG"},
            [
                ("PM", "DBA1"), ("PM", "PRG2"), ("DBA1", "PRG1"),
                ("PRG1", "DBA2"), ("DBA2", "PRG2"), ("PRG2", "DBA1"),
            ],
        )

    def test_example_2_table(self):
        result = match(self.q, self.g)
        em = result.edge_matches
        assert em[("PM", "DBA1")] == {("Bob", "Mat"), ("Walt", "Mat")}
        assert em[("PM", "PRG2")] == {("Bob", "Dan"), ("Walt", "Bill")}
        cycle_dp = {("Fred", "Pat"), ("Mat", "Pat"), ("Mary", "Bill")}
        cycle_pd = {("Dan", "Fred"), ("Pat", "Mary"), ("Pat", "Mat"), ("Bill", "Mat")}
        assert em[("DBA1", "PRG1")] == cycle_dp
        assert em[("DBA2", "PRG2")] == cycle_dp
        assert em[("PRG1", "DBA2")] == cycle_pd
        assert em[("PRG2", "DBA1")] == cycle_pd

    def test_result_size(self):
        result = match(self.q, self.g)
        assert result.result_size == 2 + 2 + 3 + 3 + 4 + 4


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        g = random_labeled_graph(rng, rng.randint(3, 25), rng.randint(3, 60))
        q = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 7))
        expected_sim = reference_simulation(q, g)
        result = match(q, g)
        if expected_sim is None:
            assert not result
        else:
            assert result.node_matches == expected_sim
            assert result.edge_matches == reference_edge_matches(q, g, expected_sim)

    def test_maximum_simulation_is_a_simulation(self):
        rng = random.Random(0)
        g = random_labeled_graph(rng, 20, 50)
        q = random_pattern(rng, 4, 6)
        sim = maximum_simulation(
            q, g, lambda u, v: q.condition(u).matches(g.labels(v), g.attrs(v))
        )
        if sim is None:
            pytest.skip("instance had no match")
        for u in q.nodes():
            for v in sim[u]:
                for u1 in q.successors(u):
                    assert any(w in sim[u1] for w in g.successors(v))


class TestSimulates:
    def test_true_and_false(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        q_yes = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        q_no = build_pattern({"a": "A", "b": "B"}, [("b", "a")])
        assert simulates(q_yes, g)
        assert not simulates(q_no, g)
