"""Unit tests for SCC computation and the rank machinery."""

import networkx as nx
import pytest

from repro.graph import DataGraph, Pattern
from repro.graph.scc import (
    condensation,
    edge_ranks,
    is_dag,
    node_ranks,
    nontrivial_scc_nodes,
    tarjan_scc,
)


def cyclic_pattern():
    q = Pattern()
    for n, l in [("pm", "PM"), ("d1", "DBA"), ("d2", "DBA"), ("p1", "PRG"), ("p2", "PRG")]:
        q.add_node(n, l)
    for e in [("pm", "d1"), ("pm", "p2"), ("d1", "p1"), ("p1", "d2"), ("d2", "p2"), ("p2", "d1")]:
        q.add_edge(*e)
    return q


class TestTarjan:
    def test_single_node(self):
        g = DataGraph()
        g.add_node(1)
        assert tarjan_scc(g) == [[1]]

    def test_simple_cycle(self):
        g = DataGraph(edges=[(1, 2), (2, 3), (3, 1)])
        comps = tarjan_scc(g)
        assert len(comps) == 1
        assert set(comps[0]) == {1, 2, 3}

    def test_chain_reverse_topological(self):
        g = DataGraph(edges=[(1, 2), (2, 3)])
        comps = tarjan_scc(g)
        assert [set(c) for c in comps] == [{3}, {2}, {1}]

    def test_matches_networkx_on_random_graphs(self):
        import random

        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(2, 30)
            edges = {
                (rng.randrange(n), rng.randrange(n)) for _ in range(rng.randint(1, 80))
            }
            g = DataGraph()
            for i in range(n):
                g.add_node(i)
            g.add_edges_from(edges)
            mine = {frozenset(c) for c in tarjan_scc(g)}
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(n))
            nxg.add_edges_from(edges)
            theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
            assert mine == theirs

    def test_deep_graph_no_recursion_error(self):
        n = 50_000
        g = DataGraph(edges=[(i, i + 1) for i in range(n)])
        assert len(tarjan_scc(g)) == n + 1


class TestCondensation:
    def test_condensation_edges(self):
        g = DataGraph(edges=[(1, 2), (2, 1), (2, 3)])
        comp_of, succ = condensation(g)
        assert comp_of[1] == comp_of[2] != comp_of[3]
        assert succ[comp_of[1]] == {comp_of[3]}
        assert succ[comp_of[3]] == set()


class TestRanks:
    def test_chain_ranks(self):
        q = Pattern()
        for n in "abc":
            q.add_node(n, n.upper())
        q.add_edge("a", "b")
        q.add_edge("b", "c")
        ranks = node_ranks(q)
        assert ranks == {"c": 0, "b": 1, "a": 2}

    def test_cycle_shares_rank(self):
        q = Pattern()
        for n in "ab":
            q.add_node(n, n.upper())
        q.add_edge("a", "b")
        q.add_edge("b", "a")
        ranks = node_ranks(q)
        assert ranks["a"] == ranks["b"] == 0

    def test_paper_style_cyclic_pattern(self):
        q = cyclic_pattern()
        ranks = node_ranks(q)
        # The 4-node collaboration cycle is one SCC (rank 0, a leaf);
        # PM sits above it.
        assert ranks["d1"] == ranks["d2"] == ranks["p1"] == ranks["p2"] == 0
        assert ranks["pm"] == 1

    def test_edge_rank_is_target_rank(self):
        q = Pattern()
        for n in "abc":
            q.add_node(n, n.upper())
        q.add_edge("a", "b")
        q.add_edge("b", "c")
        ranks = edge_ranks(q)
        assert ranks[("a", "b")] == 1
        assert ranks[("b", "c")] == 0

    def test_diamond_rank(self):
        q = Pattern()
        for n in "abcd":
            q.add_node(n, n.upper())
        for e in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
            q.add_edge(*e)
        ranks = node_ranks(q)
        assert ranks["d"] == 0
        assert ranks["b"] == ranks["c"] == 1
        assert ranks["a"] == 2


class TestCyclicityHelpers:
    def test_dag_detection(self):
        q = Pattern()
        for n in "ab":
            q.add_node(n, n.upper())
        q.add_edge("a", "b")
        assert is_dag(q)
        assert nontrivial_scc_nodes(q) == set()

    def test_cycle_detection(self):
        assert not is_dag(cyclic_pattern())
        assert nontrivial_scc_nodes(cyclic_pattern()) == {"d1", "d2", "p1", "p2"}

    def test_self_loop_counts_as_cyclic(self):
        g = DataGraph(edges=[(1, 1), (1, 2)])
        assert not is_dag(g)
        assert nontrivial_scc_nodes(g) == {1}
