"""Property-based tests (hypothesis) for the core invariants.

The central properties, each quantified over random graphs, patterns
and view sets:

* the engines compute the unique *maximum* (bounded) simulation;
* Theorem 1: whenever ``Q ⊑ V``, MatchJoin over ``V(G)`` equals Match
  over ``G`` -- for plain, bounded, optimized and naive engines;
* Proposition 7 coverage is sound: every λ target's extension really
  contains the covered edge's matches;
* minimal subsets are minimal; greedy minimum subsets contain the query;
* condition implication is sound on concrete attribute values.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.graph import ANY, BoundedPattern, DataGraph
from repro.graph.conditions import Atom, AttributeCondition, implies
from repro.simulation import bounded_match, match
from repro.views import ViewDefinition, ViewSet

from helpers import (
    random_labeled_graph,
    random_pattern,
    reference_bounded_simulation,
    reference_simulation,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
seeds = st.integers(min_value=0, max_value=10_000)


def make_instance(seed: int, bounded: bool = False):
    rng = random.Random(seed)
    graph = random_labeled_graph(rng, rng.randint(4, 25), rng.randint(4, 70))
    base = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 7))
    if not bounded:
        return rng, graph, base
    pattern = BoundedPattern()
    for node in base.nodes():
        pattern.add_node(node, base.condition(node))
    for source, target in base.edges():
        pattern.add_edge(source, target, rng.choice([1, 2, 3, ANY]))
    return rng, graph, pattern


# ----------------------------------------------------------------------
# Engine maximality
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_match_equals_reference_fixpoint(seed):
    _, graph, pattern = make_instance(seed)
    expected = reference_simulation(pattern, graph)
    result = match(pattern, graph)
    if expected is None:
        assert not result
    else:
        assert result.node_matches == expected


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_bounded_match_equals_reference_fixpoint(seed):
    _, graph, pattern = make_instance(seed, bounded=True)
    expected = reference_bounded_simulation(pattern, graph)
    result = bounded_match(pattern, graph)
    if expected is None:
        assert not result
    else:
        assert result.node_matches == expected


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_match_result_is_simulation(seed):
    """Every returned relation actually satisfies the simulation
    conditions (the 'is a simulation' half of maximality)."""
    _, graph, pattern = make_instance(seed)
    result = match(pattern, graph)
    if not result:
        return
    for u in pattern.nodes():
        for v in result.node_matches[u]:
            assert pattern.condition(u).matches(graph.labels(v), graph.attrs(v))
            for u1 in pattern.successors(u):
                assert any(
                    w in result.node_matches[u1] for w in graph.successors(v)
                )


# ----------------------------------------------------------------------
# Theorem 1 end to end
# ----------------------------------------------------------------------
def edge_views(pattern, rng):
    views = ViewSet()
    for i, edge in enumerate(pattern.edges()):
        views.add(ViewDefinition(f"E{i}", pattern.subpattern([edge])))
    edges = pattern.edges()
    if len(edges) >= 2 and rng.random() < 0.5:
        views.add(ViewDefinition("PAIR", pattern.subpattern(rng.sample(edges, 2))))
    return views


@settings(max_examples=50, deadline=None)
@given(seed=seeds, optimized=st.booleans())
def test_theorem1_matchjoin_equals_match(seed, optimized):
    rng, graph, pattern = make_instance(seed)
    views = edge_views(pattern, rng)
    containment = contains(pattern, views)
    assert containment.holds
    views.materialize(graph)
    direct = match(pattern, graph)
    result = match_join(pattern, containment, views, optimized=optimized)
    assert result.edge_matches == direct.edge_matches


@settings(max_examples=35, deadline=None)
@given(seed=seeds, optimized=st.booleans())
def test_theorem8_bounded_matchjoin_equals_bmatch(seed, optimized):
    rng, graph, pattern = make_instance(seed, bounded=True)
    views = edge_views(pattern, rng)
    containment = bounded_contains(pattern, views)
    assert containment.holds
    views.materialize(graph)
    direct = bounded_match(pattern, graph)
    result = bounded_match_join(pattern, containment, views, optimized=optimized)
    assert result.edge_matches == direct.edge_matches


# ----------------------------------------------------------------------
# Proposition 7 coverage soundness
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_lambda_coverage_is_sound(seed):
    """For every λ entry (e -> view edge), every match of e in a random
    graph lies in that view edge's extension -- the defining property of
    pattern containment."""
    rng, graph, pattern = make_instance(seed)
    views = edge_views(pattern, rng)
    containment = contains(pattern, views)
    views.materialize(graph)
    direct = match(pattern, graph)
    if not direct:
        return
    for edge, refs in containment.mapping.items():
        union = set()
        for view_name, view_edge in refs:
            union |= views.extension(view_name).pairs_of(view_edge)
        assert direct.edge_matches[edge] <= union


# ----------------------------------------------------------------------
# minimal / minimum structure
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_minimal_subset_is_minimal(seed):
    rng, _, pattern = make_instance(seed)
    views = edge_views(pattern, rng)
    minimal = minimal_views(pattern, views)
    assert minimal.holds
    chosen = [v for v in views if v.name in minimal.views_used()]
    for leave_out in minimal.views_used():
        remaining = [v for v in chosen if v.name != leave_out]
        assert not contains(pattern, remaining).holds


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_minimum_contains_query(seed):
    rng, _, pattern = make_instance(seed)
    views = edge_views(pattern, rng)
    minimum = minimum_views(pattern, views)
    assert minimum.holds
    chosen = [v for v in views if v.name in minimum.views_used()]
    assert contains(pattern, chosen).holds


# ----------------------------------------------------------------------
# Serialization round trips
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_graph_json_round_trip(seed):
    from repro.graph.io import graph_from_json, graph_to_json

    rng, graph, _ = make_instance(seed)
    for node in list(graph.nodes())[:5]:
        graph.add_node(node, attrs={"score": rng.randint(0, 10)})
    back = graph_from_json(graph_to_json(graph))
    assert set(back.edges()) == set(graph.edges())
    assert all(back.labels(n) == graph.labels(n) for n in graph.nodes())
    assert all(back.attrs(n) == graph.attrs(n) for n in graph.nodes())


@settings(max_examples=40, deadline=None)
@given(seed=seeds, bounded=st.booleans())
def test_pattern_json_round_trip(seed, bounded):
    from repro.graph.io import pattern_from_json, pattern_to_json

    _, _, pattern = make_instance(seed, bounded=bounded)
    back = pattern_from_json(pattern_to_json(pattern))
    assert set(back.edges()) == set(pattern.edges())
    assert all(back.condition(n) == pattern.condition(n) for n in pattern.nodes())
    if bounded:
        assert back.bounds() == pattern.bounds()


# ----------------------------------------------------------------------
# Workload generator invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=seeds, bounded=st.booleans())
def test_query_from_views_always_contained(seed, bounded):
    from repro.datasets import generate_views, query_from_views

    labels = tuple(f"l{i}" for i in range(6))
    views = generate_views(labels, 10, seed=seed % 50, bounded=bounded)
    query = query_from_views(views, 4, 6, seed=seed)
    checker = bounded_contains if bounded else contains
    assert checker(query, views).holds


# ----------------------------------------------------------------------
# Condition implication soundness
# ----------------------------------------------------------------------
_ops = st.sampled_from(["==", "!=", "<=", ">=", "<", ">"])
_vals = st.integers(min_value=-5, max_value=5)


@settings(max_examples=200, deadline=None)
@given(op1=_ops, v1=_vals, op2=_ops, v2=_vals, probe=_vals)
def test_atom_implication_sound(op1, v1, op2, v2, probe):
    """If implies(a, b) then every attribute value satisfying a
    satisfies b."""
    a = AttributeCondition((Atom("x", op1, v1),))
    b = AttributeCondition((Atom("x", op2, v2),))
    if implies(a, b):
        attrs = {"x": probe}
        if a.matches(frozenset(), attrs):
            assert b.matches(frozenset(), attrs)
